"""Write-optimized in-memory row table (the paper's "real time store").

§2 "Real-time and Low-latency Writes": the row store avoids
CPU-intensive work on the write path — no index building, no
compression — and §3.1: all tenants share one huge table "organized
only by the timestamp, rather than separated by tenants, to improve
space efficiency and reduce random I/O accesses".

Rows are appended in arrival order; a per-memtable monotone sequence
number makes scans stable.  Because log timestamps are nearly sorted on
arrival, range scans use a sorted-view built lazily and invalidated on
append (cheap for the seal-then-convert life cycle the builder uses).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.common.errors import RowStoreError


class MemTable:
    """Append-only row buffer ordered by timestamp on scan."""

    def __init__(self, ts_column: str = "ts", tenant_column: str = "tenant_id") -> None:
        self._ts_column = ts_column
        self._tenant_column = tenant_column
        self._rows: list[dict] = []
        self._approx_bytes = 0
        self._sorted_view: list[tuple[int, int]] | None = None  # (ts, row_position)
        self._sealed = False

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def approx_bytes(self) -> int:
        """Rough payload size, used for flush thresholds."""
        return self._approx_bytes

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def ts_column(self) -> str:
        return self._ts_column

    @property
    def tenant_column(self) -> str:
        return self._tenant_column

    def append(self, row: dict) -> None:
        """Append one row; O(1), no index maintenance (write-optimized)."""
        if self._sealed:
            raise RowStoreError("cannot append to a sealed memtable")
        if self._ts_column not in row:
            raise RowStoreError(f"row missing timestamp column {self._ts_column!r}")
        if self._tenant_column not in row:
            raise RowStoreError(f"row missing tenant column {self._tenant_column!r}")
        self._rows.append(row)
        self._approx_bytes += _approx_row_bytes(row)
        self._sorted_view = None

    def append_many(self, rows: Iterable[dict]) -> int:
        """Append a batch with ONE sorted-view invalidation, not one per
        row.  Matches :meth:`append` semantics exactly: sealed-check up
        front, per-row validation, and on an invalid row the valid
        prefix before it is appended and the error raised.
        """
        if self._sealed:
            raise RowStoreError("cannot append to a sealed memtable")
        count = 0
        try:
            for row in rows:
                if self._ts_column not in row:
                    raise RowStoreError(
                        f"row missing timestamp column {self._ts_column!r}"
                    )
                if self._tenant_column not in row:
                    raise RowStoreError(
                        f"row missing tenant column {self._tenant_column!r}"
                    )
                self._rows.append(row)
                self._approx_bytes += _approx_row_bytes(row)
                count += 1
        finally:
            if count:
                self._sorted_view = None
        return count

    def seal(self) -> None:
        """Freeze the memtable; the data builder converts sealed tables."""
        self._sealed = True

    # -- scans -----------------------------------------------------------

    def _view(self) -> list[tuple[int, int]]:
        if self._sorted_view is None:
            self._sorted_view = sorted(
                (row[self._ts_column], position) for position, row in enumerate(self._rows)
            )
        return self._sorted_view

    def scan(
        self,
        min_ts: int | None = None,
        max_ts: int | None = None,
        tenant_id: int | None = None,
    ) -> Iterator[dict]:
        """Rows in ``[min_ts, max_ts]`` (inclusive), optionally one tenant.

        Rows are yielded in timestamp order (ties by arrival order).
        """
        view = self._view()
        keys = [ts for ts, _pos in view]
        lo = 0 if min_ts is None else bisect_left(keys, min_ts)
        hi = len(view) if max_ts is None else bisect_right(keys, max_ts)
        for ts, position in view[lo:hi]:
            row = self._rows[position]
            if tenant_id is None or row[self._tenant_column] == tenant_id:
                yield row

    def tenants(self) -> set[int]:
        """Distinct tenant ids present."""
        return {row[self._tenant_column] for row in self._rows}

    def ts_range(self) -> tuple[int, int] | None:
        """(min_ts, max_ts) across all rows, or None when empty."""
        if not self._rows:
            return None
        view = self._view()
        return view[0][0], view[-1][0]

    def rows_by_tenant(self) -> dict[int, list[dict]]:
        """Rows grouped by tenant, each group in timestamp order.

        This is the access pattern of the data builder's remote-archiving
        phase (§3.1: "the row-store table will be divided into separated
        columnar tables according to tenants").
        """
        grouped: dict[int, list[dict]] = {}
        for _ts, position in self._view():
            row = self._rows[position]
            grouped.setdefault(row[self._tenant_column], []).append(row)
        return grouped


def _approx_row_bytes(row: dict) -> int:
    total = 0
    for key, value in row.items():
        total += len(key)
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, (bytes, bytearray)):
            total += len(value)
        else:
            total += 8
    return total
