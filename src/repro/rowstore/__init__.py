"""Write-optimized row store (phase 1 of the two-phase write path)."""

from repro.rowstore.memtable import MemTable
from repro.rowstore.store import RowStore

__all__ = ["MemTable", "RowStore"]
