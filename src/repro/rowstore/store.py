"""RowStore: the local, write-optimized half of the two-phase write path.

Holds the active memtable plus a list of sealed memtables waiting for
the data builder.  Queries see *all* of them (real-time visibility, §2:
"LogStore supports low-latency writes and real-time data visibility"),
plus whatever has already been archived to OSS — the cluster layer
merges both sides.

Sealing policy mirrors an LSM flush: when the active memtable exceeds
``seal_bytes`` or ``seal_rows``, it is sealed and a new one starts.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import RowStoreError
from repro.rowstore.memtable import MemTable, _approx_row_bytes

DEFAULT_SEAL_ROWS = 100_000
DEFAULT_SEAL_BYTES = 64 * 1024 * 1024


class RowStore:
    """Active + sealed memtables for one shard."""

    def __init__(
        self,
        ts_column: str = "ts",
        tenant_column: str = "tenant_id",
        seal_rows: int = DEFAULT_SEAL_ROWS,
        seal_bytes: int = DEFAULT_SEAL_BYTES,
    ) -> None:
        if seal_rows <= 0 or seal_bytes <= 0:
            raise RowStoreError("seal thresholds must be positive")
        self._ts_column = ts_column
        self._tenant_column = tenant_column
        self._seal_rows = seal_rows
        self._seal_bytes = seal_bytes
        self._active = MemTable(ts_column, tenant_column)
        self._sealed: list[MemTable] = []
        self.total_rows_ingested = 0
        # Cumulative count of sealed memtables ever dropped (archived).
        # Part of the checkpoint state so replicated drain commands can
        # be applied idempotently by absolute target.
        self.sealed_dropped = 0

    @property
    def active(self) -> MemTable:
        return self._active

    @property
    def sealed_tables(self) -> list[MemTable]:
        return list(self._sealed)

    def append(self, row: dict) -> None:
        """Ingest one row; seals the active memtable when thresholds hit."""
        self._active.append(row)
        self.total_rows_ingested += 1
        if len(self._active) >= self._seal_rows or self._active.approx_bytes >= self._seal_bytes:
            self.seal_active()

    def append_many(self, rows: list[dict]) -> None:
        """Bulk ingest with chunks cut at the exact seal boundaries.

        Equivalent to per-row :meth:`append` — the active memtable seals
        after the same row it would have per-row — but each chunk pays
        one memtable call and one sorted-view invalidation instead of
        one per row.
        """
        i = 0
        n = len(rows)
        while i < n:
            budget_rows = self._seal_rows - len(self._active)
            budget_bytes = self._seal_bytes - self._active.approx_bytes
            # Grow the chunk until it contains the row that crosses a
            # threshold (that row still lands in this memtable, exactly
            # as the per-row path appends-then-seals).
            j = i
            acc = 0
            while j < n and (j - i) < budget_rows and acc < budget_bytes:
                acc += _approx_row_bytes(rows[j])
                j += 1
            before = len(self._active)
            try:
                self._active.append_many(rows[i:j])
            finally:
                # On an invalid row mid-chunk the memtable kept the
                # valid prefix; count it like per-row appends would.
                self.total_rows_ingested += len(self._active) - before
            if (
                len(self._active) >= self._seal_rows
                or self._active.approx_bytes >= self._seal_bytes
            ):
                self.seal_active()
            i = j

    def seal_active(self) -> MemTable | None:
        """Seal the active memtable (if non-empty); returns it."""
        if not len(self._active):
            return None
        table = self._active
        table.seal()
        self._sealed.append(table)
        self._active = MemTable(self._ts_column, self._tenant_column)
        return table

    def take_sealed(self) -> list[MemTable]:
        """Hand all sealed memtables to the data builder (removes them).

        The builder converts them to LogBlocks; after a successful upload
        the rows live on OSS and the local copy is dropped — this is the
        "packaged and flushed to OSS" path that also runs when a shard
        stops carrying a tenant after rebalancing (§4.1.5).
        """
        sealed = self._sealed
        self._sealed = []
        return sealed

    def restore_sealed(self, tables: list[MemTable]) -> None:
        """Return un-archived sealed memtables taken via :meth:`take_sealed`.

        Archiving can fail after the memtables left the store (OSS outage
        beyond the retry budget, builder crash); dropping them would lose
        acknowledged rows.  Restored tables go back at the *front* so a
        later retry archives them in their original seal order.
        """
        self._sealed = list(tables) + self._sealed

    def drop_sealed_prefix(self, count: int) -> None:
        """Discard the first ``count`` sealed memtables (they are on OSS).

        Replicated shards propose the drop as a Raft command after a
        successful archive, so every replica discards *the same* tables
        at *the same* log position — seal boundaries are deterministic
        functions of the applied batches, so the prefixes are identical.
        """
        if count < 0 or count > len(self._sealed):
            raise RowStoreError(
                f"cannot drop {count} sealed memtables, have {len(self._sealed)}"
            )
        del self._sealed[:count]
        self.sealed_dropped += count

    def row_count(self) -> int:
        """Rows currently visible locally (active + sealed)."""
        return len(self._active) + sum(len(t) for t in self._sealed)

    def approx_bytes(self) -> int:
        return self._active.approx_bytes + sum(t.approx_bytes for t in self._sealed)

    def scan(
        self,
        min_ts: int | None = None,
        max_ts: int | None = None,
        tenant_id: int | None = None,
    ) -> Iterator[dict]:
        """Scan sealed tables then the active one, each in ts order."""
        for table in self._sealed:
            yield from table.scan(min_ts, max_ts, tenant_id)
        yield from self._active.scan(min_ts, max_ts, tenant_id)

    def tenants(self) -> set[int]:
        found: set[int] = set()
        for table in self._sealed:
            found |= table.tenants()
        found |= self._active.tenants()
        return found

    # -- checkpoint state (Raft snapshot integration) ----------------------

    def serialize_state(self) -> bytes:
        """Snapshot of the locally held rows (for Raft checkpointing).

        Captures sealed + active rows and the ingest counter; archived
        rows live on OSS and are not part of local state.
        """
        import pickle

        sealed_rows = [list(table.scan()) for table in self._sealed]
        active_rows = list(self._active.scan())
        return pickle.dumps(
            (sealed_rows, active_rows, self.total_rows_ingested, self.sealed_dropped)
        )

    def install_state(self, state: bytes) -> None:
        """Replace local contents with a serialized snapshot, in place."""
        import pickle

        sealed_rows, active_rows, total, dropped = pickle.loads(state)
        self._sealed = []
        for rows in sealed_rows:
            table = MemTable(self._ts_column, self._tenant_column)
            table.append_many(rows)
            table.seal()
            self._sealed.append(table)
        self._active = MemTable(self._ts_column, self._tenant_column)
        self._active.append_many(active_rows)
        self.total_rows_ingested = total
        self.sealed_dropped = dropped
