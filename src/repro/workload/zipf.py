"""Zipfian tenant weights (§6.1).

"The tenant logs inserted is under the Zipfian distribution controlled
by the parameter θ ... the weight of tenant k is proportional to
(1/k)^θ.  When θ is higher, the workload of the tenant will be more
skewed.  If θ = 0, then it corresponds to a uniform distribution.  When
the parameter is set to θ = 0.99, the generated workload is similar to
the highly skewed data distribution in the production environment."
"""

from __future__ import annotations

import random

import numpy as np

from repro.common.errors import ConfigError


def zipf_weights(n_tenants: int, theta: float) -> np.ndarray:
    """Normalized weights; tenant rank k (1-based) gets (1/k)^θ / Z."""
    if n_tenants <= 0:
        raise ConfigError(f"n_tenants must be positive, got {n_tenants}")
    if theta < 0:
        raise ConfigError(f"theta must be non-negative, got {theta}")
    ranks = np.arange(1, n_tenants + 1, dtype=np.float64)
    raw = ranks ** (-theta)
    return raw / raw.sum()


def tenant_traffic(n_tenants: int, theta: float, total: float) -> dict[int, float]:
    """Per-tenant traffic (records/s) for an aggregate offered load."""
    if total < 0:
        raise ConfigError(f"total traffic must be non-negative, got {total}")
    weights = zipf_weights(n_tenants, theta)
    return {tenant_id: float(total * weights[tenant_id - 1]) for tenant_id in range(1, n_tenants + 1)}


class ZipfTenantSampler:
    """Draws tenant ids (1-based rank ids) with Zipfian probabilities.

    Deterministic for a fixed seed; sampling is O(log n) via the
    cumulative weight table.
    """

    def __init__(self, n_tenants: int, theta: float, seed: int = 0) -> None:
        self._weights = zipf_weights(n_tenants, theta)
        self._cumulative = np.cumsum(self._weights)
        self._rng = random.Random(seed)
        self.n_tenants = n_tenants
        self.theta = theta

    def sample(self) -> int:
        point = self._rng.random()
        return int(np.searchsorted(self._cumulative, point, side="right")) + 1

    def sample_batch(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def counts(self, total_rows: int) -> dict[int, int]:
        """Deterministic expected row counts per tenant (no sampling noise).

        Largest-remainder apportionment of ``total_rows`` over the
        weights; used to generate datasets whose rank plot is exactly
        the Figure 11 shape.
        """
        if total_rows < 0:
            raise ConfigError(f"total_rows must be non-negative, got {total_rows}")
        exact = self._weights * total_rows
        floors = np.floor(exact).astype(np.int64)
        remainder = int(total_rows - floors.sum())
        if remainder > 0:
            fractional = exact - floors
            top = np.argsort(-fractional)[:remainder]
            floors[top] += 1
        return {tenant_id: int(floors[tenant_id - 1]) for tenant_id in range(1, self.n_tenants + 1)}
