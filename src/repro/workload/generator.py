"""YCSB-style log record generation (§6.1) and the diurnal traffic curve.

Generates ``request_log`` rows with realistic field distributions:

* ``ip`` drawn from a small per-tenant pool (log sources are few);
* ``api`` from a per-tenant endpoint set;
* ``latency`` log-normal-ish with a heavy tail;
* ``fail`` rare, correlated with high latency;
* ``log`` a templated message with searchable tokens.

Also models the Figure 1 diurnal curve: total write throughput over a
day with working-hours peaks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.workload.zipf import ZipfTenantSampler

MICROS = 1_000_000

_STATUS_WORDS = ["ok", "ok", "ok", "ok", "slow", "retry", "error"]
_VERBS = ["GET", "POST", "PUT", "DELETE"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Dataset-shape parameters (defaults follow §6.1/§6.3)."""

    n_tenants: int = 1000
    theta: float = 0.99
    seed: int = 42
    ips_per_tenant: int = 8
    apis_per_tenant: int = 4
    error_rate: float = 0.02


class LogRecordGenerator:
    """Deterministic generator of request_log rows."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config if config is not None else WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self._sampler = ZipfTenantSampler(
            self.config.n_tenants, self.config.theta, seed=self.config.seed + 1
        )

    @property
    def sampler(self) -> ZipfTenantSampler:
        return self._sampler

    def _tenant_ip(self, tenant_id: int, rng: random.Random) -> str:
        host = rng.randrange(self.config.ips_per_tenant)
        return f"10.{(tenant_id >> 8) & 0xFF}.{tenant_id & 0xFF}.{host + 1}"

    def _tenant_api(self, tenant_id: int, rng: random.Random) -> str:
        endpoint = rng.randrange(self.config.apis_per_tenant)
        return f"/api/v1/t{tenant_id}/op{endpoint}"

    def record(self, tenant_id: int, ts_micros: int, rng: random.Random | None = None) -> dict:
        """One log row for a tenant at a timestamp."""
        rng = rng if rng is not None else self._rng
        latency = max(1, int(rng.lognormvariate(3.2, 0.9)))
        fail = rng.random() < self.config.error_rate or latency > 2000
        status = "error" if fail else rng.choice(_STATUS_WORDS)
        verb = rng.choice(_VERBS)
        api = self._tenant_api(tenant_id, rng)
        ip = self._tenant_ip(tenant_id, rng)
        rid = rng.randrange(1 << 30)
        return {
            "tenant_id": tenant_id,
            "ts": ts_micros,
            "ip": ip,
            "api": api,
            "latency": latency,
            "fail": fail,
            "log": (
                f"{verb} {api} rid_{rid} from {ip} took {latency}ms status {status}"
            ),
        }

    def stream(
        self,
        start_ts_micros: int,
        duration_s: float,
        records_per_second: float,
    ) -> Iterator[dict]:
        """Rows with Zipfian tenants, timestamps spread over the window."""
        total = int(duration_s * records_per_second)
        if total <= 0:
            return
        step = duration_s * MICROS / total
        for i in range(total):
            tenant_id = self._sampler.sample()
            ts = start_ts_micros + int(i * step)
            yield self.record(tenant_id, ts)

    def dataset(
        self,
        start_ts_micros: int,
        duration_s: float,
        total_rows: int,
    ) -> Iterator[dict]:
        """Deterministic per-tenant row counts (exact Figure 11 shape).

        Rows are interleaved across tenants in timestamp order, like the
        shared row-store table would see them.
        """
        counts = self._sampler.counts(total_rows)
        # Interleave by assigning each tenant's rows evenly spaced offsets,
        # then emitting in global timestamp order via a merge.
        import heapq

        heap: list[tuple[int, int, int]] = []  # (ts, tenant, remaining)
        for tenant_id, count in counts.items():
            if count > 0:
                spacing = duration_s * MICROS / count
                heapq.heappush(heap, (start_ts_micros + int(spacing / 2), tenant_id, count - 1))
        while heap:
            ts, tenant_id, remaining = heapq.heappop(heap)
            yield self.record(tenant_id, ts)
            if remaining > 0:
                spacing = duration_s * MICROS / (counts[tenant_id])
                heapq.heappush(heap, (ts + int(spacing), tenant_id, remaining - 1))


def diurnal_throughput(hour: float, peak: float = 50e6, trough_fraction: float = 0.4) -> float:
    """Figure 1 model: records/s over a 24-hour day.

    Working-hours hump peaking mid-day at ``peak``, overnight trough at
    ``trough_fraction * peak``.  A smooth double-cosine gives the broad
    plateau between ~9:00 and ~18:00 seen in the paper's Figure 1.
    """
    if not 0 <= hour <= 24:
        raise ValueError(f"hour must be in [0, 24], got {hour}")
    trough = peak * trough_fraction
    # Center activity at 13:00 with a wide working-hours plateau.
    phase = (hour - 13.0) / 24.0 * 2 * math.pi
    hump = 0.5 * (1 + math.cos(phase))
    plateau = hump ** 0.6  # flatten the top
    return trough + (peak - trough) * plateau


def diurnal_series(points_per_hour: int = 1, peak: float = 50e6) -> list[tuple[float, float]]:
    """The full Figure 1 series: (hour, throughput)."""
    if points_per_hour <= 0:
        raise ValueError("points_per_hour must be positive")
    series = []
    steps = 24 * points_per_hour
    for i in range(steps + 1):
        hour = i / points_per_hour
        series.append((hour, diurnal_throughput(hour, peak=peak)))
    return series
