"""Query-set generation for the §6.3 experiments.

"Our query set contains 6000 queries, and six queries with different
filtering predicates are generated for each tenant" — retrieval of a
single tenant's logs within a time range, with varying extra predicates.
The six templates vary selectivity: time-range-only, ip-equality,
latency threshold, failure filter, full-text match, and a combined
filter (the paper's §5.1 sample query shape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.planner import format_timestamp

MICROS = 1_000_000


@dataclass(frozen=True)
class QuerySpec:
    """One generated query with its provenance."""

    tenant_id: int
    template: str
    sql: str


TEMPLATE_NAMES = [
    "time_range",
    "ip_eq",
    "latency_ge",
    "fail_eq",
    "fulltext",
    "combined",
]


class QuerySetGenerator:
    """Generates the per-tenant six-template query set."""

    def __init__(
        self,
        table: str = "request_log",
        data_start_ts: int = 0,
        data_duration_s: float = 48 * 3600,
        seed: int = 0,
        ips_per_tenant: int = 8,
    ) -> None:
        self._table = table
        self._start = data_start_ts
        self._duration = data_duration_s
        self._rng = random.Random(seed)
        self._ips_per_tenant = ips_per_tenant

    def _random_window(self, max_fraction: float = 0.5) -> tuple[int, int]:
        """A random sub-window of the dataset's time span."""
        span = self._duration * MICROS
        width = int(span * self._rng.uniform(0.05, max_fraction))
        start = self._start + self._rng.randrange(max(1, int(span - width)))
        return start, start + width

    def _tenant_ip(self, tenant_id: int) -> str:
        host = self._rng.randrange(self._ips_per_tenant)
        return f"10.{(tenant_id >> 8) & 0xFF}.{tenant_id & 0xFF}.{host + 1}"

    def _time_clause(self, lo: int, hi: int) -> str:
        return (
            f"ts >= '{format_timestamp(lo)}' AND ts <= '{format_timestamp(hi)}'"
        )

    def queries_for_tenant(self, tenant_id: int) -> list[QuerySpec]:
        """The six templates instantiated for one tenant."""
        lo, hi = self._random_window()
        time_clause = self._time_clause(lo, hi)
        base = f"SELECT log FROM {self._table} WHERE tenant_id = {tenant_id} AND {time_clause}"
        specs = [
            QuerySpec(tenant_id, "time_range", base),
            QuerySpec(
                tenant_id,
                "ip_eq",
                f"{base} AND ip = '{self._tenant_ip(tenant_id)}'",
            ),
            QuerySpec(
                tenant_id,
                "latency_ge",
                f"{base} AND latency >= {self._rng.choice([100, 250, 500, 1000])}",
            ),
            QuerySpec(tenant_id, "fail_eq", f"{base} AND fail = 'true'"),
            QuerySpec(
                tenant_id,
                "fulltext",
                f"{base} AND MATCH(log, '{self._rng.choice(['error', 'retry', 'slow', 'status ok'])}')",
            ),
            QuerySpec(
                tenant_id,
                "combined",
                (
                    f"{base} AND ip = '{self._tenant_ip(tenant_id)}' "
                    f"AND latency >= 100 AND fail = 'false'"
                ),
            ),
        ]
        return specs

    def query_set(self, tenant_ids: list[int]) -> list[QuerySpec]:
        """Six queries per tenant, for the given tenants."""
        out: list[QuerySpec] = []
        for tenant_id in tenant_ids:
            out.extend(self.queries_for_tenant(tenant_id))
        return out
