"""Workload generation: Zipfian tenants, log records, query sets (§6.1)."""

from repro.workload.generator import (
    LogRecordGenerator,
    WorkloadConfig,
    diurnal_series,
    diurnal_throughput,
)
from repro.workload.queries import QuerySetGenerator, QuerySpec, TEMPLATE_NAMES
from repro.workload.zipf import ZipfTenantSampler, tenant_traffic, zipf_weights

__all__ = [
    "LogRecordGenerator",
    "WorkloadConfig",
    "diurnal_series",
    "diurnal_throughput",
    "QuerySetGenerator",
    "QuerySpec",
    "TEMPLATE_NAMES",
    "ZipfTenantSampler",
    "tenant_traffic",
    "zipf_weights",
]
