"""The data builder: phase-2 "remote archiving" of the hybrid write path.

§3.1: sealed row-store memtables are divided into per-tenant columnar
LogBlocks, packed into seekable files, uploaded to OSS, and registered
in the controller's LogBlock map.  This package is that conversion
pipeline plus its maintenance side:

* :mod:`repro.builder.builder` — :class:`DataBuilder` (the conversion
  itself) and :class:`BuildReport` (mergeable build/upload counters).
* :mod:`repro.builder.parallel` — the thread-pooled per-tenant build
  stage used when ``builder_threads > 1``.
* :mod:`repro.builder.compaction` — :class:`Compactor`, which merges a
  tenant's small LogBlocks into right-sized ones.
"""

from repro.builder.builder import BuildReport, DataBuilder, TenantBuildStats
from repro.builder.compaction import CompactionResult, Compactor
from repro.builder.parallel import run_build_tasks

__all__ = [
    "BuildReport",
    "DataBuilder",
    "TenantBuildStats",
    "CompactionResult",
    "Compactor",
    "run_build_tasks",
]
