"""Thread-pooled execution of per-tenant build tasks.

The CPU-heavy half of remote archiving — columnar encoding,
compression, index construction — is embarrassingly parallel across
tenants (each tenant's rows become independent LogBlocks).  The upload
and catalog-registration half stays serial in the caller so that the
resulting object store and LogBlock map are byte-identical regardless
of thread count or scheduling.

``run_build_tasks`` is deliberately tiny: it runs callables and returns
their results *in submission order*, which is what makes the parallel
build deterministically equivalent to the serial one.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def run_build_tasks(tasks: Sequence[Callable[[], T]], threads: int = 1) -> list[T]:
    """Execute ``tasks``; results come back in submission order.

    ``threads <= 1`` (or a single task) runs everything inline on the
    calling thread — the serial reference path.  With more threads a
    pool sized ``min(threads, len(tasks))`` is used.  The first task
    exception propagates to the caller either way.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if threads == 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=min(threads, len(tasks))) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]
