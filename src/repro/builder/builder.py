"""DataBuilder: sealed memtables → per-tenant LogBlocks on OSS (§3.1).

Phase 2 of the hybrid write path.  The row-store table — "organized
only by the timestamp, rather than separated by tenants" — is divided
per tenant, each tenant's rows are chunked into LogBlocks of at most
``target_rows`` rows (sorted by timestamp), encoded with
:class:`~repro.logblock.writer.LogBlockWriter`, uploaded under the
tenant's OSS directory, and registered in the catalog's LogBlock map so
brokers can find them.

Two halves, split for parallelism without nondeterminism:

* **build** (CPU: encoding, compression, index construction) fans out
  per tenant across ``builder_threads`` via
  :func:`repro.builder.parallel.run_build_tasks`;
* **upload + register** (I/O + metadata) stays serial in a fixed
  tenant order, so object names, catalog contents, and registration
  order are byte-identical whatever the thread count.

Uploads go through :class:`~repro.oss.retry.RetryingObjectStore`; how
often the retry layer had to intervene surfaces as
``BuildReport.upload_retries``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.builder.parallel import run_build_tasks
from repro.codec.registry import DEFAULT_CODEC
from repro.common.clock import Clock, VirtualClock
from repro.common.errors import BuildError
from repro.logblock.schema import TableSchema
from repro.logblock.writer import DEFAULT_BLOCK_ROWS, LogBlockWriter
from repro.meta.catalog import Catalog, LogBlockEntry
from repro.obs.context import Observability
from repro.oss.retry import (
    DEFAULT_BACKOFF_S,
    DEFAULT_MAX_ATTEMPTS,
    RetryingObjectStore,
)
from repro.rowstore.memtable import MemTable

DEFAULT_TARGET_ROWS = 200_000


@dataclass
class TenantBuildStats:
    """Per-tenant slice of a :class:`BuildReport` (the billing view)."""

    tenant_id: int
    blocks_written: int = 0
    rows_archived: int = 0
    bytes_uploaded: int = 0

    def merge(self, other: "TenantBuildStats") -> "TenantBuildStats":
        if other.tenant_id != self.tenant_id:
            raise BuildError(
                f"cannot merge stats of tenant {other.tenant_id} into {self.tenant_id}"
            )
        self.blocks_written += other.blocks_written
        self.rows_archived += other.rows_archived
        self.bytes_uploaded += other.bytes_uploaded
        return self


@dataclass
class BuildReport:
    """Mergeable counters for one or more archiving runs.

    Workers fill one report per :meth:`DataBuilder.archive_memtable`
    call; the controller merges worker reports into a cluster-wide one.
    ``entries`` lists every LogBlock registered, in registration order.
    """

    memtables_converted: int = 0
    blocks_written: int = 0
    rows_archived: int = 0
    bytes_uploaded: int = 0
    upload_retries: int = 0
    build_s: float = 0.0
    upload_s: float = 0.0
    per_tenant: dict[int, TenantBuildStats] = field(default_factory=dict)
    entries: list[LogBlockEntry] = field(default_factory=list)

    def tenant(self, tenant_id: int) -> TenantBuildStats:
        """Get-or-create the per-tenant slice."""
        stats = self.per_tenant.get(tenant_id)
        if stats is None:
            stats = TenantBuildStats(tenant_id)
            self.per_tenant[tenant_id] = stats
        return stats

    def merge(self, other: "BuildReport") -> "BuildReport":
        """Fold ``other`` into this report (in place); returns ``self``."""
        self.memtables_converted += other.memtables_converted
        self.blocks_written += other.blocks_written
        self.rows_archived += other.rows_archived
        self.bytes_uploaded += other.bytes_uploaded
        self.upload_retries += other.upload_retries
        self.build_s += other.build_s
        self.upload_s += other.upload_s
        for tenant_id, stats in other.per_tenant.items():
            self.tenant(tenant_id).merge(stats)
        self.entries.extend(other.entries)
        return self


@dataclass(frozen=True)
class _BuiltBlock:
    """One encoded-but-not-yet-uploaded LogBlock."""

    tenant_id: int
    path: str
    blob: bytes
    min_ts: int
    max_ts: int
    row_count: int
    # The writer's EncodeStats, carried out of the parallel build stage
    # and folded into the registry serially (registries are not assumed
    # thread-safe for interleaved label creation).
    encode_stats: object = None


def block_path(tenant_id: int, memtable_seq: int, chunk_idx: int, min_ts: int, max_ts: int) -> str:
    """Deterministic OSS key for one archived LogBlock.

    Stable under parallel builds (the sequence numbers are assigned
    before the fan-out) and matches the ``tenants/<id>/*.lgb`` layout
    the catalog-rebuild scan expects.
    """
    return (
        f"tenants/{tenant_id}/"
        f"mt{memtable_seq:06d}-{chunk_idx:04d}-{min_ts}-{max_ts}.lgb"
    )


class DataBuilder:
    """Converts sealed memtables into per-tenant LogBlocks on OSS."""

    def __init__(
        self,
        schema: TableSchema,
        oss,
        bucket: str,
        catalog: Catalog,
        codec: str = DEFAULT_CODEC,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        target_rows: int = DEFAULT_TARGET_ROWS,
        build_indexes: bool = True,
        builder_threads: int = 1,
        max_upload_attempts: int = DEFAULT_MAX_ATTEMPTS,
        upload_backoff_s: float = DEFAULT_BACKOFF_S,
        retry_clock: Clock | None = None,
        obs: Observability | None = None,
        use_vectorized_encode: bool = True,
    ) -> None:
        if target_rows <= 0:
            raise BuildError(f"target_rows must be positive, got {target_rows}")
        if builder_threads < 1:
            raise BuildError(f"builder_threads must be >= 1, got {builder_threads}")
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self._memtables_total = registry.counter(
            "logstore_builder_memtables_total", "Sealed memtables archived."
        )
        self._blocks_total = registry.counter(
            "logstore_builder_blocks_written_total", "LogBlocks written to OSS."
        )
        self._rows_total = registry.counter(
            "logstore_builder_rows_archived_total", "Rows archived to OSS."
        )
        self._bytes_total = registry.counter(
            "logstore_builder_bytes_uploaded_total", "LogBlock bytes uploaded."
        )
        self._orphans_recorded = registry.counter(
            "logstore_builder_orphans_recorded_total",
            "Uploaded-but-unregistered blocks left behind by failed archives.",
        )
        self._orphans_swept = registry.counter(
            "logstore_builder_orphans_swept_total",
            "Orphaned blocks later deleted by sweep_orphans().",
        )
        from repro.obs.recorders import EncodeModeRecorder

        self._encode_modes = EncodeModeRecorder(registry)
        self._schema = schema
        self._oss = oss
        self._bucket = bucket
        self._catalog = catalog
        self._codec = codec
        self._block_rows = block_rows
        self._target_rows = target_rows
        self._build_indexes = build_indexes
        self._vectorized_encode = use_vectorized_encode
        self._threads = builder_threads
        self._upload = RetryingObjectStore(
            oss,
            max_attempts=max_upload_attempts,
            backoff_s=upload_backoff_s,
            clock=retry_clock if retry_clock is not None else VirtualClock(),
        )
        self._memtable_seq = 0
        self._lock = threading.Lock()
        self._orphans: list[tuple[str, str]] = []

    @property
    def schema(self) -> TableSchema:
        """The schema blocks are written under.

        The catalog is the schema authority (§3: DDL goes through the
        controller), so archiving always uses its *live* schema — rows
        ingested before an additive DDL archive under the evolved
        schema, with the new columns as nulls.
        """
        return self._catalog.schema if self._catalog is not None else self._schema

    @property
    def builder_threads(self) -> int:
        return self._threads

    @property
    def upload_stats(self):
        """Cumulative :class:`~repro.oss.retry.RetryStats` of all uploads."""
        return self._upload.stats

    # -- the conversion ----------------------------------------------------

    def archive_memtable(self, memtable: MemTable, report: BuildReport | None = None) -> BuildReport:
        """Convert one sealed memtable; returns the (given) report.

        Splits the memtable per tenant, builds LogBlocks of at most
        ``target_rows`` timestamp-sorted rows each (possibly across
        ``builder_threads`` threads), uploads them, and registers a
        :class:`~repro.meta.catalog.LogBlockEntry` per block.  The
        whole call is serialized per builder so that concurrent workers
        sharing one builder still produce deterministic object names.
        """
        if not memtable.sealed:
            raise BuildError("cannot archive an unsealed memtable; seal it first")
        if report is None:
            report = BuildReport()
        with self._obs.tracer.span(
            "builder.archive", rows=len(memtable)
        ), self._lock:
            memtable_seq = self._memtable_seq
            self._memtable_seq += 1

            ts_column = memtable.ts_column
            groups = memtable.rows_by_tenant()
            tenant_order = sorted(groups)
            schema = self.schema  # live catalog schema, fixed for this memtable

            build_start = time.perf_counter()
            tasks = [
                self._tenant_build_task(
                    schema, tenant_id, groups[tenant_id], ts_column, memtable_seq
                )
                for tenant_id in tenant_order
            ]
            built_per_tenant = run_build_tasks(tasks, self._threads)
            report.build_s += time.perf_counter() - build_start

            upload_start = time.perf_counter()
            retries_before = self._upload.stats.retries
            all_built = [b for blocks in built_per_tenant for b in blocks]
            # Upload every block BEFORE registering any of them, so the
            # memtable archives all-or-nothing.  A failure mid-upload
            # leaves the catalog untouched; compensation deletes remove
            # the already-uploaded blocks (tracked as orphans when the
            # delete itself fails during an outage) and the caller can
            # retry the whole memtable without duplicating rows.
            uploaded: list[_BuiltBlock] = []
            try:
                for built in all_built:
                    self._catalog.ensure_tenant(built.tenant_id)
                    self._upload.put(self._bucket, built.path, built.blob)
                    uploaded.append(built)
            except BaseException:
                report.upload_retries += self._upload.stats.retries - retries_before
                report.upload_s += time.perf_counter() - upload_start
                # Include the in-flight block: a failed PUT can still
                # have left a torn partial object at its path.
                in_flight = all_built[len(uploaded) : len(uploaded) + 1]
                self._compensate(uploaded + in_flight)
                raise
            for built in all_built:
                self._register(built, report)
            report.upload_retries += self._upload.stats.retries - retries_before
            report.upload_s += time.perf_counter() - upload_start

            report.memtables_converted += 1
            self._memtables_total.add()
            for tenant_id, blocks in zip(tenant_order, built_per_tenant):
                self._obs.journal.emit(
                    "builder.archive",
                    f"memtable{memtable_seq}",
                    detail=f"blocks={len(blocks)} rows={len(groups[tenant_id])}",
                    tenant_id=tenant_id,
                )
        return report

    def _compensate(self, uploaded: list[_BuiltBlock]) -> None:
        """Best-effort deletion of uploaded-but-unregistered blocks."""
        from repro.common.errors import NoSuchKey

        for built in uploaded:
            try:
                self._oss.delete(self._bucket, built.path)
            except NoSuchKey:
                pass  # the failed PUT left nothing behind
            except Exception:
                self._orphans.append((self._bucket, built.path))
                self._orphans_recorded.add()

    @property
    def orphans(self) -> list[tuple[str, str]]:
        """(bucket, path) pairs whose compensation delete failed so far."""
        return list(self._orphans)

    def sweep_orphans(self) -> int:
        """Retry deleting orphaned blocks (call after the outage heals).

        Returns how many orphans were cleared.  An orphan that is
        already gone counts as cleared; one whose delete fails again
        stays queued for the next sweep.
        """
        from repro.common.errors import NoSuchKey

        remaining: list[tuple[str, str]] = []
        cleared = 0
        for bucket, path in self._orphans:
            try:
                self._oss.delete(bucket, path)
                cleared += 1
            except NoSuchKey:
                cleared += 1
            except Exception:
                remaining.append((bucket, path))
        self._orphans = remaining
        self._orphans_swept.add(cleared)
        return cleared

    def _tenant_build_task(
        self,
        schema: TableSchema,
        tenant_id: int,
        rows: list[dict],
        ts_column: str,
        memtable_seq: int,
    ):
        """A zero-argument task that encodes one tenant's LogBlocks."""

        def build() -> list[_BuiltBlock]:
            built: list[_BuiltBlock] = []
            for chunk_idx in range(0, len(rows), self._target_rows):
                chunk = rows[chunk_idx : chunk_idx + self._target_rows]
                writer = LogBlockWriter(
                    schema,
                    codec=self._codec,
                    block_rows=self._block_rows,
                    build_indexes=self._build_indexes,
                    vectorized=self._vectorized_encode,
                )
                writer.append_many(chunk)
                blob = writer.finish()
                # rows_by_tenant() yields timestamp order, so the chunk
                # bounds are its first/last rows.
                min_ts = int(chunk[0][ts_column])
                max_ts = int(chunk[-1][ts_column])
                built.append(
                    _BuiltBlock(
                        tenant_id=tenant_id,
                        path=block_path(
                            tenant_id,
                            memtable_seq,
                            chunk_idx // self._target_rows,
                            min_ts,
                            max_ts,
                        ),
                        blob=blob,
                        min_ts=min_ts,
                        max_ts=max_ts,
                        row_count=len(chunk),
                        encode_stats=writer.encode_stats,
                    )
                )
            return built

        return build

    def _register(self, built: _BuiltBlock, report: BuildReport) -> None:
        self._encode_modes.record(built.encode_stats)
        entry = LogBlockEntry(
            tenant_id=built.tenant_id,
            min_ts=built.min_ts,
            max_ts=built.max_ts,
            path=built.path,
            size_bytes=len(built.blob),
            row_count=built.row_count,
        )
        self._catalog.add_block(entry)
        report.blocks_written += 1
        report.rows_archived += built.row_count
        report.bytes_uploaded += len(built.blob)
        self._blocks_total.add()
        self._rows_total.add(built.row_count)
        self._bytes_total.add(len(built.blob))
        stats = report.tenant(built.tenant_id)
        stats.blocks_written += 1
        stats.rows_archived += built.row_count
        stats.bytes_uploaded += len(built.blob)
        report.entries.append(entry)
