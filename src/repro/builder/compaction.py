"""Background compaction: merge a tenant's small LogBlocks (§3.1).

Frequent archiving of a lightly loaded tenant produces many small
LogBlocks, each costing a catalog entry, an OSS object, and extra GET
round-trips at query time.  The compactor rewrites runs of small blocks
into right-sized ones: read the victims back, merge their rows by
timestamp, re-encode at ``target_rows`` per block, upload the
replacements, then delete the superseded objects and catalog entries.

Because LogBlocks are immutable and self-contained, compaction is
crash-safe by ordering alone: new blocks are uploaded and registered
before any old block is removed, so every intermediate state is
queryable (at worst with transiently duplicated rows mid-swap, the same
window any LSM compaction has).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.registry import DEFAULT_CODEC
from repro.common.clock import Clock, VirtualClock
from repro.common.errors import BuildError, NoSuchKey
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import TableSchema
from repro.logblock.writer import DEFAULT_BLOCK_ROWS, LogBlockWriter
from repro.meta.catalog import Catalog, LogBlockEntry
from repro.obs.context import Observability
from repro.oss.retry import (
    DEFAULT_BACKOFF_S,
    DEFAULT_MAX_ATTEMPTS,
    RetryingObjectStore,
)
from repro.tarpack.reader import PackReader


@dataclass
class CompactionResult:
    """What one :meth:`Compactor.compact_tenant` call did."""

    tenant_id: int
    blocks_before: int = 0
    blocks_after: int = 0
    rows_rewritten: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    upload_retries: int = 0

    @property
    def compacted(self) -> bool:
        return self.blocks_after > 0


def compacted_block_path(
    tenant_id: int, generation: int, chunk_idx: int, min_ts: int, max_ts: int
) -> str:
    """OSS key for a compaction output block (``tenants/<id>/*.lgb``)."""
    return (
        f"tenants/{tenant_id}/"
        f"cp{generation:06d}-{chunk_idx:04d}-{min_ts}-{max_ts}.lgb"
    )


class Compactor:
    """Merges one tenant's small LogBlocks into ``target_rows``-sized ones."""

    def __init__(
        self,
        schema: TableSchema,
        oss,
        bucket: str,
        catalog: Catalog,
        codec: str = DEFAULT_CODEC,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        small_threshold_rows: int = 10_000,
        target_rows: int = 200_000,
        build_indexes: bool = True,
        max_upload_attempts: int = DEFAULT_MAX_ATTEMPTS,
        upload_backoff_s: float = DEFAULT_BACKOFF_S,
        retry_clock: Clock | None = None,
        obs: Observability | None = None,
        use_vectorized_encode: bool = True,
    ) -> None:
        if small_threshold_rows <= 0:
            raise BuildError(
                f"small_threshold_rows must be positive, got {small_threshold_rows}"
            )
        if target_rows < small_threshold_rows:
            raise BuildError(
                f"target_rows ({target_rows}) must be >= small_threshold_rows "
                f"({small_threshold_rows}); compaction output would stay small"
            )
        self._schema = schema
        self._oss = oss
        self._bucket = bucket
        self._catalog = catalog
        self._codec = codec
        self._block_rows = block_rows
        self._small_threshold = small_threshold_rows
        self._target_rows = target_rows
        self._build_indexes = build_indexes
        self._upload = RetryingObjectStore(
            oss,
            max_attempts=max_upload_attempts,
            backoff_s=upload_backoff_s,
            clock=retry_clock if retry_clock is not None else VirtualClock(),
        )
        self._generation = 0
        self._orphans: list[tuple[str, str]] = []
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self._runs_total = registry.counter(
            "logstore_compaction_runs_total", "Compaction runs that merged blocks."
        )
        self._blocks_merged_total = registry.counter(
            "logstore_compaction_blocks_merged_total", "Small blocks retired."
        )
        self._rows_rewritten_total = registry.counter(
            "logstore_compaction_rows_rewritten_total", "Rows rewritten by compaction."
        )
        from repro.obs.recorders import EncodeModeRecorder

        self._vectorized_encode = use_vectorized_encode
        self._encode_modes = EncodeModeRecorder(registry)

    def candidates(self, tenant_id: int) -> list[LogBlockEntry]:
        """The tenant's blocks below the small-block threshold."""
        return [
            block
            for block in self._catalog.blocks_for(tenant_id)
            if block.row_count < self._small_threshold
        ]

    def compact_tenant(self, tenant_id: int) -> CompactionResult:
        """Merge the tenant's small blocks; no-op below two victims."""
        result = CompactionResult(tenant_id=tenant_id)
        victims = self.candidates(tenant_id)
        if len(victims) < 2:
            return result
        with self._obs.tracer.span(
            "builder.compact", tenant=tenant_id, victims=len(victims)
        ):
            self._compact(tenant_id, victims, result)
        self._runs_total.add()
        self._blocks_merged_total.add(result.blocks_before)
        self._rows_rewritten_total.add(result.rows_rewritten)
        if result.compacted:
            self._obs.journal.emit(
                "compactor.compact",
                f"tenant{tenant_id}",
                detail=f"blocks {result.blocks_before}->{result.blocks_after} "
                f"rows={result.rows_rewritten}",
                tenant_id=tenant_id,
            )
        return result

    def _compact(
        self, tenant_id: int, victims: list[LogBlockEntry], result: CompactionResult
    ) -> None:
        result.blocks_before = len(victims)
        result.bytes_before = sum(block.size_bytes for block in victims)
        retries_before = self._upload.stats.retries

        rows: list[dict] = []
        for block in victims:
            rows.extend(self._read_rows(block))
        ts_column = self._ts_column()
        rows.sort(key=lambda row: row[ts_column])

        generation = self._generation
        self._generation += 1
        built: list[tuple[str, bytes, LogBlockEntry]] = []
        for chunk_start in range(0, len(rows), self._target_rows):
            chunk = rows[chunk_start : chunk_start + self._target_rows]
            writer = LogBlockWriter(
                self._schema,
                codec=self._codec,
                block_rows=self._block_rows,
                build_indexes=self._build_indexes,
                vectorized=self._vectorized_encode,
            )
            writer.append_many(chunk)
            blob = writer.finish()
            self._encode_modes.record(writer.encode_stats)
            min_ts = int(chunk[0][ts_column])
            max_ts = int(chunk[-1][ts_column])
            path = compacted_block_path(
                tenant_id, generation, chunk_start // self._target_rows, min_ts, max_ts
            )
            entry = LogBlockEntry(
                tenant_id=tenant_id,
                min_ts=min_ts,
                max_ts=max_ts,
                path=path,
                size_bytes=len(blob),
                row_count=len(chunk),
            )
            built.append((path, blob, entry))

        # Upload every output before registering any: a failure mid-way
        # must leave the catalog exactly as it was (victims still live,
        # no half-registered outputs duplicating their rows).  Uploaded
        # outputs are compensation-deleted through the *raw* store, not
        # the retrying wrapper — during the outage that just failed the
        # upload, retried deletes would burn a full backoff budget per
        # path (matching DataBuilder._compensate); a delete that fails
        # is queued as an orphan for sweep_orphans() after heal.
        uploaded: list[str] = []
        try:
            for path, blob, _entry in built:
                self._upload.put(self._bucket, path, blob)
                uploaded.append(path)
        except BaseException:
            result.upload_retries = self._upload.stats.retries - retries_before
            # Include the in-flight path: a failed PUT can still have
            # left a torn partial object behind.
            in_flight = [p for p, _b, _e in built[len(uploaded) : len(uploaded) + 1]]
            for path in uploaded + in_flight:
                try:
                    self._oss.delete(self._bucket, path)
                except NoSuchKey:
                    pass  # the failed PUT left nothing behind
                except Exception:
                    self._orphans.append((self._bucket, path))
            raise
        for path, blob, entry in built:
            self._catalog.add_block(entry)
            result.bytes_after += len(blob)
            result.rows_rewritten += entry.row_count
        result.blocks_after = len(built)

        # New data is live; now retire the superseded blocks.  The map
        # entry is dropped even when the object delete fails (the rows
        # already live in the outputs; keeping the victim registered
        # would double-count them) — the object becomes an orphan and a
        # later sweep removes it.
        for block in victims:
            try:
                self._oss_delete(block.path)
            except NoSuchKey:
                pass  # object already gone; still drop the map entry
            except Exception:
                self._orphans.append((self._bucket, block.path))
            self._catalog.remove_block(block)
        result.upload_retries = self._upload.stats.retries - retries_before

    def _oss_delete(self, path: str) -> None:
        self._upload.delete(self._bucket, path)

    @property
    def orphans(self) -> list[tuple[str, str]]:
        """(bucket, path) pairs whose delete failed and awaits a sweep."""
        return list(self._orphans)

    def sweep_orphans(self) -> int:
        """Retry deleting orphaned objects; returns how many cleared."""
        remaining: list[tuple[str, str]] = []
        cleared = 0
        for bucket, path in self._orphans:
            try:
                self._upload.delete(bucket, path)
                cleared += 1
            except NoSuchKey:
                cleared += 1
            except Exception:
                remaining.append((bucket, path))
        self._orphans = remaining
        return cleared

    def compact_all(self) -> list[CompactionResult]:
        """Run :meth:`compact_tenant` for every registered tenant."""
        results = []
        for info in sorted(self._catalog.tenants(), key=lambda t: t.tenant_id):
            result = self.compact_tenant(info.tenant_id)
            if result.compacted:
                results.append(result)
        return results

    # -- helpers -----------------------------------------------------------

    def _ts_column(self) -> str:
        names = self._schema.column_names()
        if "ts" in names:
            return "ts"
        raise BuildError(f"schema {self._schema.name!r} has no 'ts' column to merge by")

    def _read_rows(self, block: LogBlockEntry) -> list[dict]:
        """Materialize every row of one LogBlock (all columns)."""
        reader = LogBlockReader(PackReader(self._upload, self._bucket, block.path))
        # Read under the block's own (self-contained) schema: blocks
        # written before an additive DDL lack the newest columns, and
        # the rewrite surfaces those as nulls.
        columns = {
            name: reader.read_column(name)
            for name in reader.meta().schema.column_names()
        }
        names = list(columns)
        return [
            {name: columns[name][i] for name in names}
            for i in range(reader.row_count)
        ]
