"""Raft consensus with LogStore's backpressure flow control (§3, §4.2)."""

from repro.raft.backpressure import BackpressureController, BoundedQueue
from repro.raft.group import RaftGroup
from repro.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from repro.raft.network import SimNetwork
from repro.raft.node import RaftNode
from repro.raft.state import PersistentState, Role

__all__ = [
    "BackpressureController",
    "BoundedQueue",
    "RaftGroup",
    "AppendEntries",
    "AppendEntriesReply",
    "LogEntry",
    "RequestVote",
    "RequestVoteReply",
    "SimNetwork",
    "RaftNode",
    "PersistentState",
    "Role",
]
