"""RaftGroup: a wired three-replica group as LogStore deploys it.

§3: "we use three replicas, of which two replicas have a complete
row-store, and the remaining one only contains WAL."  The group harness
creates the replicas over one simulated network, elects a leader by
advancing the clock, and exposes a convenience ``propose``/``await``
style API for the row store and tests.
"""

from __future__ import annotations

from typing import Callable

from repro.common.clock import VirtualClock
from repro.common.errors import NotLeaderError, RaftError
from repro.raft.messages import LogEntry
from repro.raft.network import SimNetwork
from repro.raft.node import RaftNode
from repro.wal.log import WriteAheadLog

DEFAULT_REPLICAS = 3


class RaftGroup:
    """A group of replicas sharing one clock and network."""

    def __init__(
        self,
        group_id: str,
        clock: VirtualClock,
        apply_factory: Callable[[str], Callable[[LogEntry], None] | None],
        n_replicas: int = DEFAULT_REPLICAS,
        wal_only_replicas: int = 1,
        network: SimNetwork | None = None,
        snapshot_factory: Callable[[str], tuple | None] | None = None,
        wal_factory: Callable[[str], WriteAheadLog] | None = None,
        seed: int = 0,
        tracer=None,
        journal=None,
    ) -> None:
        if n_replicas < 1:
            raise RaftError(f"need at least one replica, got {n_replicas}")
        if wal_only_replicas >= n_replicas:
            raise RaftError("at least one replica must keep a full store")
        self.group_id = group_id
        self._clock = clock
        self.network = network if network is not None else SimNetwork(clock, seed=seed)
        # Kept so crash recovery can rebuild a node (fresh state machine,
        # surviving WAL) with the same wiring the constructor used.
        self._apply_factory = apply_factory
        self._snapshot_factory = snapshot_factory
        self._wal_factory = wal_factory
        self._seed = seed
        self._tracer = tracer
        self._journal = journal
        node_ids = [f"{group_id}/r{i}" for i in range(n_replicas)]
        self._node_ids = node_ids
        self._wal_only_ids = set(node_ids[n_replicas - wal_only_replicas :])
        self.nodes: dict[str, RaftNode] = {}
        for node_id in node_ids:
            self.nodes[node_id] = self._build_node(node_id)

    def _build_node(self, node_id: str, wal: WriteAheadLog | None = None) -> RaftNode:
        # The *last* wal_only_replicas nodes are WAL-only.
        wal_only = node_id in self._wal_only_ids
        apply_cb = None if wal_only else self._apply_factory(node_id)
        provider = installer = None
        if not wal_only and self._snapshot_factory is not None:
            hooks = self._snapshot_factory(node_id)
            if hooks is not None:
                provider, installer = hooks
        if wal is None and self._wal_factory is not None:
            wal = self._wal_factory(node_id)
        # A WAL-only replica has no row store to serve from, so it
        # should almost never lead: give it a much longer election
        # timeout so a full replica wins every normal election.
        timeout_scale = 4.0 if wal_only else 1.0
        return RaftNode(
            node_id=node_id,
            peers=self._node_ids,
            clock=self._clock,
            network=self.network,
            apply_callback=apply_cb,
            snapshot_provider=provider,
            snapshot_installer=installer,
            wal=wal,
            election_timeout_s=0.15 * timeout_scale,
            seed=self._seed + self._node_ids.index(node_id),
            tracer=self._tracer,
            journal=self._journal,
        )

    # -- leadership -----------------------------------------------------

    def leader(self) -> RaftNode | None:
        leaders = [n for n in self.nodes.values() if n.is_leader and not n.stopped]
        if len(leaders) > 1:
            # Possible transiently across terms; prefer the highest term.
            leaders.sort(key=lambda n: n.persistent.current_term)
            return leaders[-1]
        return leaders[0] if leaders else None

    def wait_for_leader(self, timeout_s: float = 10.0) -> RaftNode:
        """Advance the clock until a leader exists."""
        deadline = self._clock.now() + timeout_s
        while self._clock.now() < deadline:
            node = self.leader()
            if node is not None:
                return node
            self._clock.advance(0.01)
        raise RaftError(f"no leader elected within {timeout_s}s in group {self.group_id}")

    # -- proposals -----------------------------------------------------

    def propose(self, command: bytes, settle_s: float = 0.25, ack: str = "all") -> int:
        """Propose on the current leader and advance until acknowledged.

        ``ack`` selects the durability bar to wait for: ``"all"`` (the
        conservative default — every live replica has committed) or
        ``"quorum"`` (majority commit, i.e. the leader's own commit
        index has advanced past the entry — the paper's cloud-native
        setting, one replication round-trip instead of a full fan-in).
        Convenience for tests/examples; the cluster layer pipelines
        :meth:`propose_async` + :meth:`settle_acked` instead.
        """
        leader = self.wait_for_leader()
        index = leader.propose(command)
        deadline = self._clock.now() + settle_s
        while self._clock.now() < deadline:
            if self.acked(index, ack):
                return index
            self._clock.advance(0.005)
        if leader.commit_index >= index:
            return index
        raise RaftError(f"entry {index} failed to commit within {settle_s}s")

    def propose_async(self, command: bytes) -> int:
        """Propose on the current leader *without* advancing the clock.

        Returns the entry's log index immediately; the caller tracks it
        in an in-flight window and later settles a whole wave at once
        (see :class:`~repro.raft.group_commit.ReplicationPipeline`).
        Raises :class:`NotLeaderError` / :class:`BackpressureError`
        exactly like :meth:`RaftNode.propose`.
        """
        leader = self.wait_for_leader()
        return leader.propose(command)

    def committed_everywhere(self, index: int) -> bool:
        """Whether every live replica has committed up to ``index``."""
        live = [n for n in self.nodes.values() if not n.stopped]
        return all(n.commit_index >= index for n in live)

    def committed_quorum(self, index: int) -> bool:
        """Whether a majority has durably committed up to ``index``.

        The leader only advances its own commit index once a majority
        of the group has persisted the entry (Raft §5.3), so quorum
        durability is exactly "some live leader has committed it".
        """
        leader = self.leader()
        return leader is not None and leader.commit_index >= index

    def acked(self, index: int, ack: str = "quorum") -> bool:
        """Whether ``index`` meets the ``ack`` durability bar."""
        if ack == "quorum":
            return self.committed_quorum(index)
        if ack == "all":
            return self.committed_everywhere(index)
        raise RaftError(f"unknown ack mode {ack!r}")

    def settle_acked(self, index: int, ack: str = "quorum", timeout_s: float = 5.0) -> None:
        """Advance the clock until ``index`` is acknowledged at ``ack``."""
        deadline = self._clock.now() + timeout_s
        while self._clock.now() < deadline:
            if self.acked(index, ack):
                return
            self._clock.advance(0.005)
        raise RaftError(
            f"entry {index} failed to reach {ack!r} ack within {timeout_s}s"
        )

    def settle(self, seconds: float = 0.5) -> None:
        """Advance the clock to let replication/elections quiesce."""
        self._clock.advance(seconds)

    # -- fault injection --------------------------------------------------

    def stop_node(self, node_id: str) -> None:
        self.nodes[node_id].stop()

    def restart_node(self, node_id: str) -> None:
        self.nodes[node_id].restart()

    def stop_leader(self) -> str:
        leader = self.wait_for_leader()
        leader.stop()
        return leader.node_id

    def crash_node(self, node_id: str) -> None:
        """Hard-crash a node: volatile state dies, the WAL survives.

        Unlike :meth:`stop_node` (a pause — the in-memory state machine
        is kept), a crash throws away everything but the WAL.  In-flight
        network messages addressed to the dead process are dropped, not
        delivered to its successor.
        """
        self.nodes[node_id].stop()
        self.network.crash(node_id)

    def recover_node(self, node_id: str) -> RaftNode:
        """Rebuild a crashed node from its surviving WAL.

        A fresh state machine (via the apply factory) and a fresh
        :class:`RaftNode` are constructed over the old node's WAL; Raft
        recovery replays the log/snapshot, so the node rejoins with
        exactly the state it had durably persisted before the crash.

        The WAL itself is re-opened over the surviving segment backend
        (the durable medium), exactly like a restarted process would —
        which re-runs torn-tail repair over whatever bytes the crash
        left behind.
        """
        old = self.nodes[node_id]
        if not old.stopped:
            raise RaftError(f"node {node_id} is not crashed")
        self.network.restart(node_id)
        wal = WriteAheadLog(old._wal.backend) if old._wal is not None else None
        node = self._build_node(node_id, wal=wal)
        self.nodes[node_id] = node
        return node

    # -- storage accounting ---------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the leader's log (the §3 periodic checkpoint task).

        Returns the snapshot index (0 when the leader has no provider).
        """
        leader = self.wait_for_leader()
        if leader._snapshot_provider is None:
            return 0
        return leader.take_snapshot()

    def wal_bytes(self) -> dict[str, int]:
        """Per-replica WAL size (shows the WAL-only replica cost saving)."""
        return {node_id: node._wal.total_bytes() for node_id, node in self.nodes.items()}

    def full_replicas(self) -> list[RaftNode]:
        return [n for n in self.nodes.values() if not n.is_wal_only]

    def wal_only_replicas(self) -> list[RaftNode]:
        return [n for n in self.nodes.values() if n.is_wal_only]
