"""Raft roles and persistent/volatile state containers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.raft.messages import LogEntry


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class PersistentState:
    """State that must survive restarts (§5.1 of the Raft paper).

    The in-memory ``log`` holds entries *after* the snapshot point:
    ``log[0]`` has index ``snapshot_index + 1``.  With no snapshot taken
    yet, ``snapshot_index == 0`` and the log is simply 1-indexed.
    """

    current_term: int = 0
    voted_for: str | None = None
    log: list[LogEntry] = field(default_factory=list)
    snapshot_index: int = 0
    snapshot_term: int = 0

    def last_log_index(self) -> int:
        return self.log[-1].index if self.log else self.snapshot_index

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else self.snapshot_term

    def entry_at(self, index: int) -> LogEntry | None:
        """Entry with the given 1-based index, or None.

        Indexes at or below the snapshot point return None — those
        entries have been compacted away.
        """
        position = index - self.snapshot_index - 1
        if 0 <= position < len(self.log):
            entry = self.log[position]
            if entry.index != index:
                raise AssertionError(f"log index invariant broken at {index}")
            return entry
        return None

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index``.

        Index 0 and the snapshot point have known terms; compacted
        interior indexes raise."""
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        entry = self.entry_at(index)
        if entry is None:
            raise IndexError(f"no log entry at index {index}")
        return entry.term

    def truncate_from(self, index: int) -> None:
        """Discard entries with index >= ``index`` (conflict resolution)."""
        position = index - self.snapshot_index - 1
        if position < 0:
            raise AssertionError(f"cannot truncate into the snapshot at {index}")
        del self.log[position:]

    def append(self, entry: LogEntry) -> None:
        expected = self.last_log_index() + 1
        if entry.index != expected:
            raise AssertionError(f"appending index {entry.index}, expected {expected}")
        self.log.append(entry)

    def entries_from(self, index: int, limit: int) -> tuple[LogEntry, ...]:
        """Up to ``limit`` entries starting at ``index`` (post-snapshot)."""
        position = index - self.snapshot_index - 1
        if position < 0:
            raise IndexError(f"index {index} is inside the snapshot")
        return tuple(self.log[position : position + limit])

    def compact_to(self, index: int, term: int) -> int:
        """Drop entries up to and including ``index``; returns count dropped."""
        position = index - self.snapshot_index
        if position <= 0:
            return 0
        dropped = min(position, len(self.log))
        del self.log[:dropped]
        self.snapshot_index = index
        self.snapshot_term = term
        return dropped

    def reset_to_snapshot(self, index: int, term: int) -> None:
        """Discard the whole log (InstallSnapshot on a diverged follower)."""
        self.log = []
        self.snapshot_index = index
        self.snapshot_term = term


@dataclass
class VolatileState:
    """State all servers keep in memory."""

    commit_index: int = 0
    last_applied: int = 0


@dataclass
class LeaderState:
    """Per-peer replication bookkeeping, reinitialized on election."""

    next_index: dict[str, int] = field(default_factory=dict)
    match_index: dict[str, int] = field(default_factory=dict)
