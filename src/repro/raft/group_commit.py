"""Group commit and pipelined replication for the write path (§3, §4.2).

The paper's headline write throughput comes from a write path that
batches aggressively and acknowledges at quorum.  Two cooperating
pieces implement that here:

* :class:`GroupCommitQueue` — a leader-side coalescing buffer.  Client
  batches admitted concurrently are folded into **one** proposal (one
  Raft entry, one WAL frame flush) when the group reaches a size/byte
  threshold or a linger deadline.  The §4.2 BFC throttle shrinks the
  effective group size under pressure, so an overloaded group commits
  smaller groups sooner instead of buffering more.

* :class:`ReplicationPipeline` — a bounded window of in-flight Raft
  proposals.  Instead of settling each proposal to commit before the
  next one starts (N replication round-trips for N groups), the shard
  keeps up to ``depth`` proposals outstanding and settles them as a
  wave, so N groups pay roughly one round-trip.  Settlement waits for
  the configured ack bar — ``"quorum"`` (majority commit, the paper's
  cloud-native setting) or ``"all"`` (every live replica).

Both are deterministic under the :class:`VirtualClock` simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.common.clock import VirtualClock
from repro.common.errors import BackpressureError, NotLeaderError, RaftError
from repro.metrics.stats import WritePathStats
from repro.obs.recorders import WritePathRecorder
from repro.obs.tracing import Tracer
from repro.raft.group import RaftGroup

_NOOP_TRACER = Tracer(None, enabled=False)

DEFAULT_GROUP_BATCHES = 8
DEFAULT_GROUP_BYTES = 1 * 1024 * 1024
DEFAULT_LINGER_S = 0.002
DEFAULT_PIPELINE_DEPTH = 8
DEFAULT_SETTLE_STEP_S = 0.005
DEFAULT_SETTLE_TIMEOUT_S = 10.0


class GroupCommitQueue:
    """Coalesces concurrently admitted batches into single proposals.

    ``flush_fn`` receives the list of pending batches and must make them
    durable as one unit (one Raft entry / one WAL flush).  ``size_of``
    estimates a batch's payload bytes for the byte threshold.  An
    optional ``admit`` hook runs on the candidate batch before it is
    accepted and raises :class:`BackpressureError` when the downstream
    queues are saturated (§4.2 — BFC gates admission, not just
    replication); a rejected batch is not buffered.  An optional
    ``throttle_fn`` (the leader's AIMD throttle, in (0, 1]) shrinks the
    effective group size while pressure is high.
    """

    def __init__(
        self,
        flush_fn: Callable[[list], None],
        clock: VirtualClock,
        max_batches: int = DEFAULT_GROUP_BATCHES,
        max_bytes: int = DEFAULT_GROUP_BYTES,
        linger_s: float = DEFAULT_LINGER_S,
        size_of: Callable[[object], int] | None = None,
        admit: Callable[[object], None] | None = None,
        throttle_fn: Callable[[], float] | None = None,
        recorder: WritePathRecorder | None = None,
        tracer: Tracer | None = None,
        span_attrs: dict | None = None,
    ) -> None:
        if max_batches < 1:
            raise ValueError(f"max_batches must be >= 1, got {max_batches}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if linger_s < 0:
            raise ValueError(f"linger_s must be non-negative, got {linger_s}")
        self._flush_fn = flush_fn
        self._clock = clock
        self._max_batches = max_batches
        self._max_bytes = max_bytes
        self._linger_s = linger_s
        self._size_of = size_of if size_of is not None else len
        self._admit = admit
        self._throttle_fn = throttle_fn
        self._recorder = recorder if recorder is not None else WritePathRecorder()
        self._tracer = tracer if tracer is not None else _NOOP_TRACER
        self._span_attrs = dict(span_attrs) if span_attrs else {}
        self._pending: list = []
        self._pending_bytes = 0
        self._generation = 0  # invalidates linger timers after a flush

    @property
    def stats(self) -> WritePathStats:
        """Typed view over the recorder's registry children."""
        return self._recorder.view()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def effective_max_batches(self) -> int:
        """Group-size ceiling after the BFC throttle (never below 1)."""
        if self._throttle_fn is None:
            return self._max_batches
        throttle = self._throttle_fn()
        return max(1, int(self._max_batches * throttle))

    def offer(self, batch) -> None:
        """Admit one batch; flushes when a group threshold is reached.

        Raises :class:`BackpressureError` only from the admission gate,
        in which case the batch was NOT buffered and the caller must
        back off and retry.  Once admitted a batch is never lost: if a
        threshold-triggered flush hits replication backpressure the
        group simply stays pending and is retried on a later
        offer/linger/flush.
        """
        if self._admit is not None:
            self._admit(batch)
        if not self._pending:
            self._generation += 1
            if self._linger_s > 0:
                generation = self._generation
                self._clock.call_later(
                    self._linger_s, lambda: self._on_linger(generation)
                )
        self._pending.append(batch)
        self._pending_bytes += self._size_of(batch)
        if (
            len(self._pending) >= self.effective_max_batches()
            or self._pending_bytes >= self._max_bytes
        ):
            try:
                self.flush()
            except BackpressureError:
                pass  # group re-stashed; admission keeps gating callers

    def flush(self) -> bool:
        """Commit the pending group as one unit; True when one flushed.

        On :class:`BackpressureError` from ``flush_fn`` the group is
        kept pending (nothing is lost) and the error propagates.
        """
        if not self._pending:
            return False
        batches = self._pending
        nbytes = self._pending_bytes
        self._pending = []
        self._pending_bytes = 0
        self._generation += 1
        with self._tracer.span(
            "group_commit", batches=len(batches), bytes=nbytes, **self._span_attrs
        ):
            try:
                self._flush_fn(batches)
            except BackpressureError:
                # Re-stash at the front so ordering survives the retry.
                self._pending = batches + self._pending
                self._pending_bytes += nbytes
                raise
        self._recorder.groups_committed.add()
        self._recorder.batches_coalesced.add(len(batches))
        self._recorder.bytes_committed.add(nbytes)
        self._recorder.group_sizes.observe(len(batches))
        return True

    def _on_linger(self, generation: int) -> None:
        if generation != self._generation or not self._pending:
            return
        try:
            self.flush()
        except BackpressureError:
            # The linger timer must not blow up a clock.advance; the
            # group stays pending and retries at the next offer/flush.
            pass


@dataclass
class _Inflight:
    """One proposed-but-not-yet-acknowledged group."""

    index: int
    command: bytes
    submitted_at: float


class ReplicationPipeline:
    """Bounded window of in-flight proposals against one Raft group.

    ``submit`` proposes without settling; when the window is full it
    first settles the oldest proposal.  ``settle`` drains the whole
    window — the write wave's barrier.  A leader crash mid-window is
    handled by re-proposing any group whose entry was displaced from
    the new leader's log (detected by comparing the command at the
    proposed index), so admitted groups are never lost.
    """

    def __init__(
        self,
        group: RaftGroup,
        clock: VirtualClock,
        depth: int = DEFAULT_PIPELINE_DEPTH,
        ack: str = "quorum",
        settle_step_s: float = DEFAULT_SETTLE_STEP_S,
        settle_timeout_s: float = DEFAULT_SETTLE_TIMEOUT_S,
        recorder: WritePathRecorder | None = None,
        tracer: Tracer | None = None,
        span_attrs: dict | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        if ack not in ("quorum", "all"):
            raise RaftError(f"unknown ack mode {ack!r}")
        self._group = group
        self._clock = clock
        self._depth = depth
        self._ack = ack
        self._step = settle_step_s
        self._timeout = settle_timeout_s
        self._recorder = recorder if recorder is not None else WritePathRecorder()
        self._tracer = tracer if tracer is not None else _NOOP_TRACER
        self._span_attrs = dict(span_attrs) if span_attrs else {}
        self._inflight: deque[_Inflight] = deque()

    @property
    def stats(self) -> WritePathStats:
        """Typed view over the recorder's registry children."""
        return self._recorder.view()

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def ack(self) -> str:
        return self._ack

    def submit(self, command: bytes) -> int:
        """Propose ``command``; settles the oldest first if the window is full.

        Raises :class:`BackpressureError` when the leader's sync queue
        rejects the proposal (the §4.2 signal to slow down).
        """
        while len(self._inflight) >= self._depth:
            self._settle_oldest()
        deadline = self._clock.now() + self._timeout
        with self._tracer.span(
            "raft.replicate", bytes=len(command), ack=self._ack, **self._span_attrs
        ) as span:
            while True:
                try:
                    index = self._group.propose_async(command)
                    break
                except NotLeaderError:
                    # Election in flight: wait it out.  Backpressure, by
                    # contrast, propagates immediately — it is flow control.
                    if self._clock.now() >= deadline:
                        raise
                    self._clock.advance(self._step)
            span.set(index=index)
        self._inflight.append(_Inflight(index, command, self._clock.now()))
        self._recorder.inflight_peak.set_max(len(self._inflight))
        return index

    def settle(self) -> None:
        """Drain the in-flight window (the write wave's barrier)."""
        while self._inflight:
            self._settle_oldest()

    def _settle_oldest(self) -> None:
        inflight = self._inflight[0]
        deadline = self._clock.now() + self._timeout
        while self._clock.now() < deadline:
            leader = self._group.leader()
            if leader is None:
                self._clock.advance(self._step)
                continue
            if inflight.index <= leader.persistent.snapshot_index:
                # Compacted away by a checkpoint — only committed,
                # applied entries are ever compacted, so it is durable.
                self._acked(inflight)
                return
            entry = leader.persistent.entry_at(inflight.index)
            if entry is None or entry.command != inflight.command:
                # Leadership changed and our entry did not survive onto
                # the new leader's timeline: re-propose it (at-least-once;
                # the displaced copy was never committed, so no duplicate).
                self._repropose(inflight)
                continue
            if self._group.acked(inflight.index, self._ack):
                self._acked(inflight)
                return
            self._clock.advance(self._step)
        raise RaftError(
            f"group at index {inflight.index} failed to reach "
            f"{self._ack!r} ack within {self._timeout}s"
        )

    def _acked(self, inflight: _Inflight) -> None:
        self._inflight.popleft()
        self._recorder.commit_latency.observe(self._clock.now() - inflight.submitted_at)

    def _repropose(self, inflight: _Inflight) -> None:
        try:
            inflight.index = self._group.propose_async(inflight.command)
            self._recorder.reproposals.add()
        except (BackpressureError, NotLeaderError):
            # Leader busy or still electing: give the cluster time and
            # let the settle loop retry.
            self._clock.advance(self._step)
