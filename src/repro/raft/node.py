"""A Raft replica with LogStore's backpressure integration (§3, §4.2).

Features implemented:

* leader election with randomized timeouts, pre-vote-free standard Raft;
* log replication with conflict rewind (`next_index` backoff);
* commit advancement restricted to current-term entries (Raft §5.4.2);
* durable WAL of entries and term/vote changes, with recovery;
* *WAL-only replica* mode: the paper keeps a complete row store on two
  replicas and only the WAL on the third ("a trade-off between storage
  cost and availability") — a WAL-only node persists and acks entries
  but has no apply callback;
* BFC queues: ``sync_queue`` for entries awaiting replication and
  ``apply_queue`` for committed entries awaiting application; when the
  apply queue saturates, followers flag ``backpressured`` in replies and
  the leader's :class:`BackpressureController` throttles producers.

The node is event-driven: timers run on a :class:`VirtualClock`, and
messages arrive through a :class:`SimNetwork`.
"""

from __future__ import annotations

import pickle
import random
import zlib
from typing import Callable

from repro.common.clock import VirtualClock
from repro.common.errors import BackpressureError, NotLeaderError, RaftError
from repro.raft.backpressure import BackpressureController, BoundedQueue
from repro.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from repro.raft.network import SimNetwork
from repro.raft.state import LeaderState, PersistentState, Role, VolatileState
from repro.wal.log import WriteAheadLog
from repro.wal.record import WalEntryEncoder

# WAL entry kinds private to raft
_WAL_KIND_ENTRY = 10
_WAL_KIND_TERM = 11
_WAL_KIND_SNAPSHOT = 12

# Barrier entry a new leader appends when it inherits an uncommitted
# tail from prior terms.  §5.4.2 forbids committing prior-term entries
# by counting replicas; committing one entry of the *current* term
# commits the whole prefix.  Never handed to the apply callback.
NOOP_COMMAND = b"\x00raft-noop"

DEFAULT_ELECTION_TIMEOUT_S = 0.15
DEFAULT_HEARTBEAT_INTERVAL_S = 0.03
DEFAULT_MAX_ENTRIES_PER_APPEND = 64


class RaftNode:
    """One replica of a Raft group."""

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        clock: VirtualClock,
        network: SimNetwork,
        apply_callback: Callable[[LogEntry], None] | None = None,
        snapshot_provider: Callable[[], bytes] | None = None,
        snapshot_installer: Callable[[bytes], None] | None = None,
        wal: WriteAheadLog | None = None,
        election_timeout_s: float = DEFAULT_ELECTION_TIMEOUT_S,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        apply_queue_items: int = 1024,
        apply_queue_bytes: int = 64 * 1024 * 1024,
        sync_queue_items: int = 4096,
        sync_queue_bytes: int = 256 * 1024 * 1024,
        seed: int = 0,
        tracer=None,
        journal=None,
    ) -> None:
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self._clock = clock
        self._network = network
        self._apply = apply_callback
        self._tracer = tracer
        self._journal = journal
        self._snapshot_provider = snapshot_provider
        self._snapshot_installer = snapshot_installer
        self._latest_snapshot_state: bytes = b""
        self._wal = wal if wal is not None else WriteAheadLog()
        self._election_timeout = election_timeout_s
        self._heartbeat_interval = heartbeat_interval_s
        # zlib.crc32, not hash(): string hashing is salted per process
        # and would make election timing nondeterministic across runs.
        self._rng = random.Random(zlib.crc32(f"{seed}:{node_id}".encode()))

        self.persistent = PersistentState()
        self.volatile = VolatileState()
        self.leader_state = LeaderState()
        self.role = Role.FOLLOWER
        self.leader_id: str | None = None
        self._stopped = False
        self._timer_generation = 0

        # §4.2: the two queues added to Raft's blocking points.
        self.sync_queue: BoundedQueue[LogEntry] = BoundedQueue(
            f"{node_id}.sync_queue", sync_queue_items, sync_queue_bytes
        )
        self.apply_queue: BoundedQueue[LogEntry] = BoundedQueue(
            f"{node_id}.apply_queue", apply_queue_items, apply_queue_bytes
        )
        self.backpressure = BackpressureController([self.sync_queue, self.apply_queue])

        self._recover_from_wal()
        network.register(node_id, self._on_message)
        self._reset_election_timer()

    # -- convenience -------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    @property
    def stopped(self) -> bool:
        """True while the node is offline (crash fault injection)."""
        return self._stopped

    @property
    def is_wal_only(self) -> bool:
        """True for the storage-saving replica that never applies."""
        return self._apply is None

    @property
    def commit_index(self) -> int:
        return self.volatile.commit_index

    @property
    def last_applied(self) -> int:
        return self.volatile.last_applied

    def stop(self) -> None:
        """Take the node offline (crash simulation)."""
        self._stopped = True
        self._network.unregister(self.node_id)

    def restart(self) -> None:
        """Bring a stopped node back (state machine NOT rewound here;
        callers recreate the node from its WAL for true crash recovery)."""
        if not self._stopped:
            return
        self._stopped = False
        self._network.register(self.node_id, self._on_message)
        self._become_follower(self.persistent.current_term, None)

    # -- durability -------------------------------------------------------

    def _persist_term_vote(self) -> None:
        body = pickle.dumps((self.persistent.current_term, self.persistent.voted_for))
        self._wal.append(_WAL_KIND_TERM, body)

    def _persist_entry(self, entry: LogEntry) -> None:
        body = pickle.dumps(entry)
        if self._tracer is not None:
            with self._tracer.span(
                "wal.flush", node=self.node_id, entries=1, bytes=len(body)
            ):
                self._wal.append(_WAL_KIND_ENTRY, body)
            return
        self._wal.append(_WAL_KIND_ENTRY, body)

    def _persist_entries(self, entries: list[LogEntry]) -> None:
        """Durably record a batch of entries with one coalesced WAL flush."""
        if not entries:
            return
        frames = [(_WAL_KIND_ENTRY, pickle.dumps(entry)) for entry in entries]
        if self._tracer is not None:
            with self._tracer.span(
                "wal.flush",
                node=self.node_id,
                entries=len(frames),
                bytes=sum(len(body) for _, body in frames),
            ):
                self._wal.append_many(frames)
            return
        self._wal.append_many(frames)

    def _recover_from_wal(self) -> None:
        """Rebuild persistent state from the WAL (idempotent on fresh WAL)."""
        entries: dict[int, LogEntry] = {}
        snapshot_index = 0
        snapshot_term = 0
        snapshot_state = b""
        for record in self._wal.replay():
            if record.kind == _WAL_KIND_TERM:
                term, voted_for = pickle.loads(record.body)
                self.persistent.current_term = term
                self.persistent.voted_for = voted_for
            elif record.kind == _WAL_KIND_ENTRY:
                entry: LogEntry = pickle.loads(record.body)
                # A later record for the same index supersedes (conflict
                # truncation rewrites suffixes).
                entries[entry.index] = entry
                for stale in [i for i in entries if i > entry.index]:
                    if entries[stale].term < entry.term:
                        del entries[stale]
            elif record.kind == _WAL_KIND_SNAPSHOT:
                snapshot_index, snapshot_term, snapshot_state = pickle.loads(record.body)
                entries = {i: e for i, e in entries.items() if i > snapshot_index}
        self.persistent.snapshot_index = snapshot_index
        self.persistent.snapshot_term = snapshot_term
        self.persistent.log = [entries[i] for i in sorted(entries)]
        # Drop any gap-suffix (can occur if truncation removed a prefix).
        compact: list[LogEntry] = []
        for position, entry in enumerate(
            self.persistent.log, start=snapshot_index + 1
        ):
            if entry.index != position:
                break
            compact.append(entry)
        self.persistent.log = compact
        if snapshot_index > 0:
            self._latest_snapshot_state = snapshot_state
            if self._snapshot_installer is not None:
                self._snapshot_installer(snapshot_state)
            self.volatile.commit_index = snapshot_index
            self.volatile.last_applied = snapshot_index

    # -- timers ------------------------------------------------------------

    def _reset_election_timer(self) -> None:
        self._timer_generation += 1
        generation = self._timer_generation
        timeout = self._election_timeout * (1.0 + self._rng.random())
        self._clock.call_later(timeout, lambda: self._on_election_timeout(generation))

    def _on_election_timeout(self, generation: int) -> None:
        if self._stopped or generation != self._timer_generation:
            return
        if self.role is not Role.LEADER:
            self._start_election()
        self._reset_election_timer()

    def _schedule_heartbeat(self) -> None:
        generation = self._timer_generation
        self._clock.call_later(self._heartbeat_interval, lambda: self._on_heartbeat(generation))

    def _on_heartbeat(self, generation: int) -> None:
        if self._stopped or generation != self._timer_generation:
            return
        if self.role is Role.LEADER:
            self._broadcast_append_entries()
            self._schedule_heartbeat()

    # -- role transitions ---------------------------------------------------

    def _become_follower(self, term: int, leader_id: str | None) -> None:
        changed = term != self.persistent.current_term
        self.persistent.current_term = term
        if changed:
            self.persistent.voted_for = None
            self._persist_term_vote()
        self.role = Role.FOLLOWER
        self.leader_id = leader_id
        self._reset_election_timer()

    def _start_election(self) -> None:
        self.role = Role.CANDIDATE
        self.persistent.current_term += 1
        self.persistent.voted_for = self.node_id
        self._persist_term_vote()
        self.leader_id = None
        self._votes = {self.node_id}
        request = RequestVote(
            term=self.persistent.current_term,
            candidate_id=self.node_id,
            last_log_index=self.persistent.last_log_index(),
            last_log_term=self.persistent.last_log_term(),
        )
        if not self.peers:  # single-node group elects itself immediately
            self._become_leader()
            return
        for peer in self.peers:
            self._network.send(self.node_id, peer, request)

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.node_id
        if self._journal is not None:
            self._journal.emit(
                "raft.leader_elected",
                self.node_id,
                detail=f"term={self.persistent.current_term}",
            )
        last = self.persistent.last_log_index()
        self.leader_state = LeaderState(
            next_index={peer: last + 1 for peer in self.peers},
            match_index={peer: 0 for peer in self.peers},
        )
        self._timer_generation += 1  # cancel follower election timer
        if last > self.volatile.commit_index:
            # Uncommitted tail inherited from prior terms: §5.4.2 blocks
            # committing it by counting, so seed one no-op entry of the
            # new term — committing it commits everything before it.
            entry = LogEntry(
                term=self.persistent.current_term,
                index=last + 1,
                command=NOOP_COMMAND,
            )
            try:
                self.sync_queue.push(entry)
            except BackpressureError:
                self.backpressure.update()
            else:
                self.persistent.append(entry)
                self._persist_entry(entry)
        self._broadcast_append_entries()
        if not self.peers:
            self._advance_commit_index()
        self._schedule_heartbeat()
        self._reset_election_timer_as_leader()

    def _reset_election_timer_as_leader(self) -> None:
        # Leaders do not run election timers; the generation bump above
        # suffices. Method kept for symmetry/clarity.
        return

    # -- client API -------------------------------------------------------

    def propose(self, command: bytes) -> int:
        """Leader-only: replicate ``command``; returns its log index.

        Raises :class:`NotLeaderError` on a follower and
        :class:`BackpressureError` when the sync queue is saturated
        (§4.2 — the caller must slow down).
        """
        if self._stopped:
            raise NotLeaderError("node is stopped", None)
        if self.role is not Role.LEADER:
            raise NotLeaderError(f"{self.node_id} is not the leader", self.leader_id)
        entry = LogEntry(
            term=self.persistent.current_term,
            index=self.persistent.last_log_index() + 1,
            command=command,
        )
        try:
            self.sync_queue.push(entry)
        except BackpressureError:
            # §4.2: a rejection is the BFC signal — decay the producer
            # throttle immediately so upstream slows down.
            self.backpressure.update()
            raise
        self.persistent.append(entry)
        self._persist_entry(entry)
        self._broadcast_append_entries()
        if not self.peers:
            self._advance_commit_index()
        return entry.index

    def propose_many(self, commands: list[bytes]) -> list[int]:
        """Leader-only: replicate a batch of commands as consecutive entries.

        The pipelined variant of :meth:`propose`: admission is
        all-or-nothing against the sync queue (a rejection never leaves
        a half-admitted group), the WAL write is one coalesced frame
        flush (:meth:`WriteAheadLog.append_many`), and the whole group
        goes out in one ``AppendEntries`` broadcast.
        """
        if self._stopped:
            raise NotLeaderError("node is stopped", None)
        if self.role is not Role.LEADER:
            raise NotLeaderError(f"{self.node_id} is not the leader", self.leader_id)
        if not commands:
            return []
        total_bytes = sum(len(command) for command in commands)
        if not self.sync_queue.can_accept(len(commands), total_bytes):
            self.sync_queue.stats.rejected += 1
            self.backpressure.update()
            raise BackpressureError(
                f"queue {self.sync_queue.name!r} cannot admit group of "
                f"{len(commands)} entries / {total_bytes} bytes"
            )
        entries = []
        next_index = self.persistent.last_log_index() + 1
        for offset, command in enumerate(commands):
            entries.append(
                LogEntry(
                    term=self.persistent.current_term,
                    index=next_index + offset,
                    command=command,
                )
            )
        for entry in entries:
            self.sync_queue.push(entry)
            self.persistent.append(entry)
        self._persist_entries(entries)
        self._broadcast_append_entries()
        if not self.peers:
            self._advance_commit_index()
        return [entry.index for entry in entries]

    def throttle(self) -> float:
        """Current BFC throttle in (0, 1] — fraction of nominal rate."""
        return self.backpressure.update()

    # -- snapshotting (LogStore's periodic checkpointing, §3) ----------------

    def take_snapshot(self) -> int:
        """Compact the log at ``last_applied``; returns the new snapshot index.

        Requires a ``snapshot_provider`` (the state machine's serializer).
        The snapshot record is persisted, then WAL segments that only
        contain compacted history are truncated — the actual disk-space
        reclamation of the checkpoint task.
        """
        if self._snapshot_provider is None:
            raise RaftError(f"{self.node_id} has no snapshot provider")
        index = self.volatile.last_applied
        if index <= self.persistent.snapshot_index:
            return self.persistent.snapshot_index  # nothing new to compact
        term = self.persistent.term_at(index)
        state = self._snapshot_provider()
        self._latest_snapshot_state = state
        self.persistent.compact_to(index, term)
        marker_seq = self._wal.append(
            _WAL_KIND_SNAPSHOT, pickle.dumps((index, term, state))
        )
        # Re-persist the live tail (entries past the snapshot) *after*
        # the marker so truncating older segments cannot drop them.
        self._persist_entries(list(self.persistent.log))
        self._wal.truncate_before(marker_seq)
        return index

    def _send_install_snapshot(self, peer: str) -> None:
        message = InstallSnapshot(
            term=self.persistent.current_term,
            leader_id=self.node_id,
            last_included_index=self.persistent.snapshot_index,
            last_included_term=self.persistent.snapshot_term,
            state=self._latest_snapshot_state,
        )
        self._network.send(self.node_id, peer, message)

    def _handle_install_snapshot(self, msg: InstallSnapshot) -> None:
        if msg.term > self.persistent.current_term:
            self._become_follower(msg.term, msg.leader_id)
        if msg.term < self.persistent.current_term:
            reply = InstallSnapshotReply(
                term=self.persistent.current_term,
                follower_id=self.node_id,
                last_included_index=msg.last_included_index,
                success=False,
            )
            self._network.send(self.node_id, msg.leader_id, reply)
            return
        self.role = Role.FOLLOWER
        self.leader_id = msg.leader_id
        self._reset_election_timer()
        if msg.last_included_index > self.persistent.snapshot_index:
            existing = self.persistent.entry_at(msg.last_included_index)
            if existing is not None and existing.term == msg.last_included_term:
                # Snapshot covers a prefix we already have: just compact.
                self.persistent.compact_to(msg.last_included_index, msg.last_included_term)
            else:
                self.persistent.reset_to_snapshot(
                    msg.last_included_index, msg.last_included_term
                )
            self._latest_snapshot_state = msg.state
            if self._snapshot_installer is not None:
                self._snapshot_installer(msg.state)
            self.apply_queue.drain()
            self.volatile.commit_index = max(
                self.volatile.commit_index, msg.last_included_index
            )
            self.volatile.last_applied = msg.last_included_index
            marker_seq = self._wal.append(
                _WAL_KIND_SNAPSHOT,
                pickle.dumps((msg.last_included_index, msg.last_included_term, msg.state)),
            )
            self._wal.truncate_before(marker_seq)
        reply = InstallSnapshotReply(
            term=self.persistent.current_term,
            follower_id=self.node_id,
            last_included_index=msg.last_included_index,
            success=True,
        )
        self._network.send(self.node_id, msg.leader_id, reply)

    def _handle_install_snapshot_reply(self, msg: InstallSnapshotReply) -> None:
        if msg.term > self.persistent.current_term:
            self._become_follower(msg.term, None)
            return
        if self.role is not Role.LEADER or not msg.success:
            return
        self.leader_state.match_index[msg.follower_id] = max(
            self.leader_state.match_index.get(msg.follower_id, 0),
            msg.last_included_index,
        )
        self.leader_state.next_index[msg.follower_id] = msg.last_included_index + 1
        if self.leader_state.next_index[msg.follower_id] <= self.persistent.last_log_index():
            self._send_append_entries(msg.follower_id)

    # -- replication --------------------------------------------------------

    def _broadcast_append_entries(self) -> None:
        for peer in self.peers:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: str) -> None:
        next_index = self.leader_state.next_index.get(peer, 1)
        if next_index <= self.persistent.snapshot_index:
            # The entries this follower needs were compacted away by a
            # checkpoint: ship the snapshot instead.
            self._send_install_snapshot(peer)
            return
        prev_index = next_index - 1
        prev_term = self.persistent.term_at(prev_index) if prev_index > 0 else 0
        entries = self.persistent.entries_from(next_index, DEFAULT_MAX_ENTRIES_PER_APPEND)
        message = AppendEntries(
            term=self.persistent.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=entries,
            leader_commit=self.volatile.commit_index,
        )
        self._network.send(self.node_id, peer, message)

    # -- message dispatch ---------------------------------------------------

    def _on_message(self, source: str, message: object) -> None:
        if self._stopped:
            return
        if isinstance(message, RequestVote):
            self._handle_request_vote(message)
        elif isinstance(message, RequestVoteReply):
            self._handle_vote_reply(message)
        elif isinstance(message, AppendEntries):
            self._handle_append_entries(message)
        elif isinstance(message, AppendEntriesReply):
            self._handle_append_reply(message)
        elif isinstance(message, InstallSnapshot):
            self._handle_install_snapshot(message)
        elif isinstance(message, InstallSnapshotReply):
            self._handle_install_snapshot_reply(message)

    def _handle_request_vote(self, msg: RequestVote) -> None:
        if msg.term > self.persistent.current_term:
            self._become_follower(msg.term, None)
        granted = False
        if msg.term == self.persistent.current_term:
            not_voted = self.persistent.voted_for in (None, msg.candidate_id)
            log_ok = (msg.last_log_term, msg.last_log_index) >= (
                self.persistent.last_log_term(),
                self.persistent.last_log_index(),
            )
            if not_voted and log_ok:
                granted = True
                self.persistent.voted_for = msg.candidate_id
                self._persist_term_vote()
                self._reset_election_timer()
        reply = RequestVoteReply(
            term=self.persistent.current_term, voter_id=self.node_id, vote_granted=granted
        )
        self._network.send(self.node_id, msg.candidate_id, reply)

    def _handle_vote_reply(self, msg: RequestVoteReply) -> None:
        if msg.term > self.persistent.current_term:
            self._become_follower(msg.term, None)
            return
        if self.role is not Role.CANDIDATE or msg.term != self.persistent.current_term:
            return
        if msg.vote_granted:
            self._votes.add(msg.voter_id)
            if len(self._votes) * 2 > len(self.peers) + 1:
                self._become_leader()

    def _handle_append_entries(self, msg: AppendEntries) -> None:
        if msg.term > self.persistent.current_term:
            self._become_follower(msg.term, msg.leader_id)
        if msg.term < self.persistent.current_term:
            self._reply_append(msg.leader_id, success=False, match_index=0)
            return
        # Valid leader for our term.
        self.role = Role.FOLLOWER
        self.leader_id = msg.leader_id
        self._reset_election_timer()

        if msg.prev_log_index < self.persistent.snapshot_index:
            # Everything at or before our snapshot is committed state;
            # tell the leader where we actually are.
            self._reply_append(
                msg.leader_id, success=True, match_index=self.persistent.snapshot_index
            )
            return

        prev_ok = (
            msg.prev_log_index == 0
            or msg.prev_log_index == self.persistent.snapshot_index
            or (
                msg.prev_log_index <= self.persistent.last_log_index()
                and self.persistent.term_at(msg.prev_log_index) == msg.prev_log_term
            )
        )
        if not prev_ok:
            hint = min(msg.prev_log_index - 1, self.persistent.last_log_index())
            self._reply_append(msg.leader_id, success=False, match_index=hint)
            return

        # §4.2 BFC: refuse new entries while the apply queue is saturated.
        backpressured = False
        new_entries = [
            e for e in msg.entries if e.index > self.persistent.snapshot_index
        ]
        accepted: list[LogEntry] = []
        for entry in new_entries:
            existing = self.persistent.entry_at(entry.index)
            if existing is not None:
                if existing.term != entry.term:
                    self.persistent.truncate_from(entry.index)
                else:
                    continue  # duplicate of what we already have
            if self.apply_queue.saturation >= 1.0 and not self.is_wal_only:
                backpressured = True
                break
            self.persistent.append(entry)
            accepted.append(entry)
        # One coalesced WAL flush for the whole accepted run (§3 group
        # commit: followers pay one fsync per AppendEntries, not per entry).
        self._persist_entries(accepted)

        match = min(
            self.persistent.last_log_index(),
            msg.prev_log_index + len(new_entries) if not backpressured
            else self.persistent.last_log_index(),
        )
        if msg.leader_commit > self.volatile.commit_index:
            self.volatile.commit_index = min(msg.leader_commit, self.persistent.last_log_index())
            self._enqueue_committed()
        self._reply_append(
            msg.leader_id, success=True, match_index=match, backpressured=backpressured
        )
        self._drain_apply_queue()

    def _reply_append(
        self, leader: str, success: bool, match_index: int, backpressured: bool = False
    ) -> None:
        reply = AppendEntriesReply(
            term=self.persistent.current_term,
            follower_id=self.node_id,
            success=success,
            match_index=match_index,
            backpressured=backpressured,
        )
        self._network.send(self.node_id, leader, reply)

    def _handle_append_reply(self, msg: AppendEntriesReply) -> None:
        if msg.term > self.persistent.current_term:
            self._become_follower(msg.term, None)
            return
        if self.role is not Role.LEADER or msg.term != self.persistent.current_term:
            return
        if msg.backpressured:
            was_throttled = self.backpressure.throttle < 1.0
            self.backpressure.penalize()
            if not was_throttled and self._journal is not None:
                # Journal the *transition* into throttling, not every
                # penalized round trip — one trip event per episode.
                self._journal.emit(
                    "raft.backpressure.trip",
                    self.node_id,
                    detail=f"follower={msg.follower_id} "
                    f"throttle={self.backpressure.throttle:.3f}",
                )
        elif msg.success:
            # Calm round trip: let the throttle recover from local state.
            self.backpressure.update()
        if msg.success:
            self.leader_state.match_index[msg.follower_id] = max(
                self.leader_state.match_index.get(msg.follower_id, 0), msg.match_index
            )
            self.leader_state.next_index[msg.follower_id] = (
                self.leader_state.match_index[msg.follower_id] + 1
            )
            self._advance_commit_index()
            if self.leader_state.next_index[msg.follower_id] <= self.persistent.last_log_index():
                self._send_append_entries(msg.follower_id)
        else:
            rewind = max(1, min(msg.match_index + 1, self.leader_state.next_index.get(msg.follower_id, 1) - 1))
            self.leader_state.next_index[msg.follower_id] = rewind
            self._send_append_entries(msg.follower_id)

    def _advance_commit_index(self) -> None:
        last = self.persistent.last_log_index()
        if self.peers:
            # Highest index replicated on a majority: the leader always
            # counts itself, so we need the p-th largest peer match_index
            # where 1 + p is a majority of the full group.
            n_nodes = len(self.peers) + 1
            peers_needed = (n_nodes // 2 + 1) - 1
            matches = sorted(self.leader_state.match_index.values(), reverse=True)
            if peers_needed > len(matches):
                return
            candidate = min(last, matches[peers_needed - 1]) if peers_needed else last
        else:
            candidate = last
        if candidate <= self.volatile.commit_index:
            return
        # §5.4.2: only an entry from the current term commits by counting.
        if self.persistent.term_at(candidate) != self.persistent.current_term:
            return
        self.volatile.commit_index = candidate
        self._enqueue_committed()
        self._drain_apply_queue()

    # -- applying -------------------------------------------------------

    def _enqueue_committed(self) -> None:
        """Move newly committed entries from the log to the apply queue."""
        while self.volatile.last_applied + len(self.apply_queue) < self.volatile.commit_index:
            index = self.volatile.last_applied + len(self.apply_queue) + 1
            entry = self.persistent.entry_at(index)
            if entry is None:
                break
            try:
                self.apply_queue.push(entry)
            except BackpressureError:
                break
        # Remove replicated entries from the leader's sync queue.
        while len(self.sync_queue) and self.sync_queue.peek().index <= self.volatile.commit_index:
            self.sync_queue.pop()

    def _drain_apply_queue(self, limit: int | None = None) -> None:
        """Apply committed entries to the local state machine in order."""
        while len(self.apply_queue) and (limit is None or limit > 0):
            entry = self.apply_queue.peek()
            if entry.index != self.volatile.last_applied + 1:
                # Stale or out-of-order (can happen after leadership churn);
                # drop anything at-or-below last_applied, otherwise wait.
                if entry.index <= self.volatile.last_applied:
                    self.apply_queue.pop()
                    continue
                break
            self.apply_queue.pop()
            if self._apply is not None and entry.command != NOOP_COMMAND:
                self._apply(entry)
            self.volatile.last_applied = entry.index
            if limit is not None:
                limit -= 1
