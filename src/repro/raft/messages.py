"""Raft RPC message types (Ongaro & Ousterhout, used by LogStore §3).

Messages are plain dataclasses delivered over the simulated network.
``LogEntry.command`` carries opaque bytes — in LogStore these are the
serialized batches of log records appended to the row store.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry."""

    term: int
    index: int
    command: bytes


@dataclass(frozen=True)
class RequestVote:
    """Candidate → peers: ask for a vote in ``term``."""

    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class RequestVoteReply:
    """Peer → candidate."""

    term: int
    voter_id: str
    vote_granted: bool


@dataclass(frozen=True)
class AppendEntries:
    """Leader → follower: heartbeat / replicate entries."""

    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...] = field(default_factory=tuple)
    leader_commit: int = 0


@dataclass(frozen=True)
class InstallSnapshot:
    """Leader → lagging follower: replace its log prefix with a snapshot.

    Sent when the follower's ``next_index`` has been compacted away on
    the leader (LogStore's periodic checkpointing truncates WALs, §3).
    ``state`` is the opaque serialized state machine at
    ``last_included_index``.
    """

    term: int
    leader_id: str
    last_included_index: int
    last_included_term: int
    state: bytes


@dataclass(frozen=True)
class InstallSnapshotReply:
    """Follower → leader."""

    term: int
    follower_id: str
    last_included_index: int
    success: bool


@dataclass(frozen=True)
class AppendEntriesReply:
    """Follower → leader."""

    term: int
    follower_id: str
    success: bool
    # Index of the last log entry the follower matches up to (on success),
    # or a hint for the leader to rewind next_index (on failure).
    match_index: int = 0
    # True when the follower rejected because its apply/sync queues are
    # saturated — the leader's backpressure controller slows producers
    # instead of retrying immediately (§4.2 Raft-with-BFC).
    backpressured: bool = False
