"""Backpressure Flow Control (BFC) — §4.2 of the paper.

LogStore monitors the buffer queues sitting between components and, when
a queue exceeds its limits, rejects new work so the slowdown propagates
upstream until it throttles the client: "BFC will gradually limit the
productivity of upstream messages, and eventually limit the write
throughput of requests issued by the client."

Two limits are monitored per queue, exactly as the paper notes:
*"we monitor both the number and size of pending requests, because …
processing a small number of massive inputs can also cause the system
to overload."*

The Raft integration adds two such queues per replica: ``sync_queue``
(entries awaiting durable replication) and ``apply_queue`` (committed
entries awaiting application to local storage).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.common.errors import BackpressureError

T = TypeVar("T")


@dataclass
class QueueStats:
    """Counters exposed to the monitor and the benches."""

    enqueued: int = 0
    dequeued: int = 0
    rejected: int = 0
    peak_items: int = 0
    peak_bytes: int = 0


class BoundedQueue(Generic[T]):
    """FIFO queue bounded by item count *and* total payload bytes.

    ``push`` raises :class:`BackpressureError` when either limit would be
    exceeded — the caller (Raft leader, broker, OSS uploader) treats that
    as a signal to slow its producer rather than as a fatal error.
    """

    def __init__(
        self,
        name: str,
        max_items: int,
        max_bytes: int,
        size_of: Callable[[T], int] | None = None,
    ) -> None:
        if max_items <= 0:
            raise ValueError(f"max_items must be positive, got {max_items}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.name = name
        self._max_items = max_items
        self._max_bytes = max_bytes
        self._size_of = size_of if size_of is not None else _default_size
        self._items: deque[T] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    @property
    def max_items(self) -> int:
        return self._max_items

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def would_accept(self, item: T) -> bool:
        """Whether ``push(item)`` would succeed right now."""
        size = self._size_of(item)
        return len(self._items) < self._max_items and self._bytes + size <= self._max_bytes

    def can_accept(self, count: int, nbytes: int) -> bool:
        """Whether ``count`` items totalling ``nbytes`` would all fit.

        The group-commit admission check: a leader proposing a batch of
        entries verifies capacity for the whole group up front so a
        rejection never leaves a half-admitted group behind.
        """
        return (
            len(self._items) + count <= self._max_items
            and self._bytes + nbytes <= self._max_bytes
        )

    def push(self, item: T) -> None:
        """Enqueue or raise :class:`BackpressureError`."""
        size = self._size_of(item)
        if len(self._items) >= self._max_items or self._bytes + size > self._max_bytes:
            self.stats.rejected += 1
            raise BackpressureError(
                f"queue {self.name!r} full: "
                f"{len(self._items)}/{self._max_items} items, "
                f"{self._bytes + size}/{self._max_bytes} bytes"
            )
        self._items.append(item)
        self._bytes += size
        self.stats.enqueued += 1
        self.stats.peak_items = max(self.stats.peak_items, len(self._items))
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._bytes)

    def pop(self) -> T:
        """Dequeue the oldest item (raises IndexError when empty)."""
        item = self._items.popleft()
        self._bytes -= self._size_of(item)
        self.stats.dequeued += 1
        return item

    def peek(self) -> T:
        return self._items[0]

    def drain(self, limit: int | None = None) -> list[T]:
        """Pop up to ``limit`` items (all, when None)."""
        out: list[T] = []
        while self._items and (limit is None or len(out) < limit):
            out.append(self.pop())
        return out

    @property
    def saturation(self) -> float:
        """How full the queue is, 0..1 (max of item and byte pressure)."""
        return max(len(self._items) / self._max_items, self._bytes / self._max_bytes)


def _default_size(item) -> int:
    if isinstance(item, (bytes, bytearray)):
        return len(item)
    command = getattr(item, "command", None)
    if isinstance(command, (bytes, bytearray)):
        return len(command)
    return 1


class BackpressureController:
    """Adaptive producer rate limiter driven by queue saturation.

    Models the paper's "gradually limit the productivity of upstream
    messages": the permitted production rate decays multiplicatively
    while any monitored queue is above the high watermark, and recovers
    additively when all are below the low watermark (AIMD, as used by
    streaming systems the paper cites — Heron/Flink).
    """

    def __init__(
        self,
        queues: list[BoundedQueue],
        high_watermark: float = 0.8,
        low_watermark: float = 0.5,
        decay: float = 0.5,
        recovery: float = 0.1,
    ) -> None:
        if not 0 < low_watermark < high_watermark <= 1:
            raise ValueError("need 0 < low_watermark < high_watermark <= 1")
        if not 0 < decay < 1:
            raise ValueError("decay must be in (0, 1)")
        if recovery <= 0:
            raise ValueError("recovery must be positive")
        self._queues = list(queues)
        self._high = high_watermark
        self._low = low_watermark
        self._decay = decay
        self._recovery = recovery
        self._throttle = 1.0  # fraction of nominal rate currently allowed

    @property
    def throttle(self) -> float:
        """Allowed fraction of the nominal producer rate, in (0, 1]."""
        return self._throttle

    def add_queue(self, queue: BoundedQueue) -> None:
        self._queues.append(queue)

    def worst_saturation(self) -> float:
        return max((queue.saturation for queue in self._queues), default=0.0)

    def update(self) -> float:
        """Re-evaluate queue pressure; returns the new throttle."""
        saturation = self.worst_saturation()
        if saturation >= self._high:
            self._throttle = max(0.01, self._throttle * self._decay)
        elif saturation <= self._low:
            self._throttle = min(1.0, self._throttle + self._recovery)
        return self._throttle

    def penalize(self) -> float:
        """Multiplicative decay for *remote* pressure signals.

        A follower's ``backpressured`` reply reports saturation the
        leader's own queues cannot see; :meth:`update` would read the
        calm local queues and recover instead.  Recovery still goes
        through :meth:`update` once the remote pressure stops arriving.
        """
        self._throttle = max(0.01, self._throttle * self._decay)
        return self._throttle
