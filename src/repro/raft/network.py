"""Simulated network for Raft replicas.

Delivers messages between registered nodes through the virtual clock
with a configurable base delay and jitter.  Supports dropped messages
and partitions for fault-injection tests.  Determinism: all randomness
comes from one seeded RNG, and delivery order for equal deadlines is
FIFO (the clock breaks ties by insertion order).
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.common.clock import VirtualClock


class MessageHandler(Protocol):
    def __call__(self, source: str, message: object) -> None: ...


class SimNetwork:
    """In-process message bus with delay, loss and partition injection."""

    def __init__(
        self,
        clock: VirtualClock,
        base_delay_s: float = 0.001,
        jitter_s: float = 0.0005,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if base_delay_s < 0 or jitter_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= drop_probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self._clock = clock
        self._base_delay = base_delay_s
        self._jitter = jitter_s
        self._drop_probability = drop_probability
        self._rng = random.Random(seed)
        self._handlers: dict[str, MessageHandler] = {}
        self._partitions: set[frozenset[str]] = set()
        self.messages_sent = 0
        self.messages_dropped = 0

    def register(self, node_id: str, handler: MessageHandler) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node already registered: {node_id}")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    # -- fault injection -----------------------------------------------------

    def partition(self, node_a: str, node_b: str) -> None:
        """Block traffic (both directions) between two nodes."""
        self._partitions.add(frozenset((node_a, node_b)))

    def heal(self, node_a: str, node_b: str) -> None:
        self._partitions.discard(frozenset((node_a, node_b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def isolate(self, node_id: str) -> None:
        """Partition a node from every other registered node."""
        for other in self._handlers:
            if other != node_id:
                self.partition(node_id, other)

    def set_drop_probability(self, probability: float) -> None:
        if not 0 <= probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self._drop_probability = probability

    # -- sending ---------------------------------------------------------

    def send(self, source: str, destination: str, message: object) -> None:
        """Queue a message for delayed delivery (may be dropped)."""
        self.messages_sent += 1
        if frozenset((source, destination)) in self._partitions:
            self.messages_dropped += 1
            return
        if self._drop_probability and self._rng.random() < self._drop_probability:
            self.messages_dropped += 1
            return
        delay = self._base_delay + self._rng.random() * self._jitter
        self._clock.call_later(delay, lambda: self._deliver(source, destination, message))

    def _deliver(self, source: str, destination: str, message: object) -> None:
        # Re-check the partition at delivery time: a partition created
        # while the message was in flight swallows it, like a real cut link.
        if frozenset((source, destination)) in self._partitions:
            self.messages_dropped += 1
            return
        handler = self._handlers.get(destination)
        if handler is not None:
            handler(source, message)

