"""Simulated network for Raft replicas.

Delivers messages between registered nodes through the virtual clock
with a configurable base delay and jitter.  Supports dropped messages,
symmetric and one-directional partitions, and node crash/restart for
fault-injection tests.  Determinism: all randomness comes from one
seeded RNG, and delivery order for equal deadlines is FIFO (the clock
breaks ties by insertion order).
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.common.clock import VirtualClock


class MessageHandler(Protocol):
    def __call__(self, source: str, message: object) -> None: ...


class SimNetwork:
    """In-process message bus with delay, loss and partition injection."""

    def __init__(
        self,
        clock: VirtualClock,
        base_delay_s: float = 0.001,
        jitter_s: float = 0.0005,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if base_delay_s < 0 or jitter_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= drop_probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self._clock = clock
        self._base_delay = base_delay_s
        self._jitter = jitter_s
        self._drop_probability = drop_probability
        self._rng = random.Random(seed)
        self._handlers: dict[str, MessageHandler] = {}
        self._partitions: set[frozenset[str]] = set()
        self._one_way_partitions: set[tuple[str, str]] = set()
        self._down: set[str] = set()
        # Incremented on every crash/restart; a message captured under an
        # old incarnation is dropped at delivery, so nothing sent to the
        # pre-crash process reaches the restarted one.
        self._incarnations: dict[str, int] = {}
        self.messages_sent = 0
        self.messages_dropped = 0

    def register(self, node_id: str, handler: MessageHandler) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node already registered: {node_id}")
        self._handlers[node_id] = handler
        self._incarnations.setdefault(node_id, 0)

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    # -- fault injection -----------------------------------------------------

    def partition(self, node_a: str, node_b: str) -> None:
        """Block traffic (both directions) between two nodes."""
        self._partitions.add(frozenset((node_a, node_b)))

    def partition_one_way(self, source: str, destination: str) -> None:
        """Block traffic from ``source`` to ``destination`` only.

        The reverse direction keeps flowing — the classic asymmetric
        failure where a node can hear the cluster but not be heard
        (or vice versa), which exercises different Raft paths than a
        clean symmetric cut.
        """
        self._one_way_partitions.add((source, destination))

    def heal(self, node_a: str, node_b: str) -> None:
        self._partitions.discard(frozenset((node_a, node_b)))
        self._one_way_partitions.discard((node_a, node_b))
        self._one_way_partitions.discard((node_b, node_a))

    def heal_one_way(self, source: str, destination: str) -> None:
        self._one_way_partitions.discard((source, destination))

    def heal_all(self) -> None:
        self._partitions.clear()
        self._one_way_partitions.clear()

    def isolate(self, node_id: str) -> None:
        """Partition a node from every other registered node."""
        for other in self._handlers:
            if other != node_id:
                self.partition(node_id, other)

    def crash(self, node_id: str) -> None:
        """Mark a node dead: it neither sends nor receives.

        Messages already in flight toward it are dropped at delivery
        time (they were addressed to the dead process), and messages it
        queued before crashing still arrive — they were already on the
        wire.  Restart bumps the incarnation, so even a message that
        would be delivered after :meth:`restart` is discarded rather
        than handed to the new process.
        """
        self._down.add(node_id)
        self._incarnations[node_id] = self._incarnations.get(node_id, 0) + 1

    def restart(self, node_id: str) -> None:
        """Bring a crashed node back; stale in-flight messages stay dead."""
        self._down.discard(node_id)
        self._incarnations[node_id] = self._incarnations.get(node_id, 0) + 1

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    def set_drop_probability(self, probability: float) -> None:
        if not 0 <= probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self._drop_probability = probability

    # -- sending ---------------------------------------------------------

    def _blocked(self, source: str, destination: str) -> bool:
        if frozenset((source, destination)) in self._partitions:
            return True
        return (source, destination) in self._one_way_partitions

    def send(self, source: str, destination: str, message: object) -> None:
        """Queue a message for delayed delivery (may be dropped)."""
        self.messages_sent += 1
        if source in self._down or destination in self._down:
            self.messages_dropped += 1
            return
        if self._blocked(source, destination):
            self.messages_dropped += 1
            return
        if self._drop_probability and self._rng.random() < self._drop_probability:
            self.messages_dropped += 1
            return
        delay = self._base_delay + self._rng.random() * self._jitter
        incarnation = self._incarnations.get(destination, 0)
        self._clock.call_later(
            delay, lambda: self._deliver(source, destination, message, incarnation)
        )

    def _deliver(
        self, source: str, destination: str, message: object, incarnation: int = -1
    ) -> None:
        # Re-check faults at delivery time: a partition or crash that
        # happened while the message was in flight swallows it, like a
        # real cut link.  An incarnation mismatch means the destination
        # crashed (and maybe restarted) since the send — the message was
        # addressed to a process that no longer exists.
        if self._blocked(source, destination) or destination in self._down:
            self.messages_dropped += 1
            return
        if incarnation >= 0 and incarnation != self._incarnations.get(destination, 0):
            self.messages_dropped += 1
            return
        handler = self._handlers.get(destination)
        if handler is not None:
            handler(source, message)
