"""A packed bitset used for row-id sets and null masks.

The LogBlock column blocks store a bitset per block (the paper's layout
part 5 stores "the bitset and compressed data"); query execution merges
per-predicate row-id sets with bitwise AND/OR.  Backing storage is a
numpy ``uint8`` array so that the logical operations are vectorized.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import SerializationError


class Bitset:
    """Fixed-size bitset over row ids ``[0, size)``."""

    __slots__ = ("_size", "_words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"bitset size must be non-negative, got {size}")
        self._size = size
        nwords = (size + 7) // 8
        if words is None:
            self._words = np.zeros(nwords, dtype=np.uint8)
        else:
            if len(words) != nwords:
                raise ValueError(f"expected {nwords} words for size {size}, got {len(words)}")
            self._words = words.astype(np.uint8, copy=True)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "Bitset":
        """Build a bitset with the given positions set."""
        bits = cls(size)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size:
            if idx.min() < 0 or idx.max() >= size:
                raise IndexError("bit index out of range")
            np.bitwise_or.at(bits._words, idx // 8, np.uint8(1) << (idx % 8).astype(np.uint8))
        return bits

    @classmethod
    def full(cls, size: int) -> "Bitset":
        """A bitset with every position set."""
        bits = cls(size)
        bits._words[:] = 0xFF
        bits._mask_tail()
        return bits

    @classmethod
    def from_bool_array(cls, mask: np.ndarray) -> "Bitset":
        """Build from a boolean numpy array (one element per row)."""
        mask = np.asarray(mask, dtype=bool)
        bits = cls(len(mask))
        if len(mask):
            bits._words = np.packbits(mask, bitorder="little")
        return bits

    # -- element access ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def get(self, index: int) -> bool:
        """Whether bit ``index`` is set."""
        self._check(index)
        return bool(self._words[index // 8] & (1 << (index % 8)))

    def set(self, index: int) -> None:
        """Set bit ``index``."""
        self._check(index)
        self._words[index // 8] |= np.uint8(1 << (index % 8))

    def clear(self, index: int) -> None:
        """Clear bit ``index``."""
        self._check(index)
        self._words[index // 8] &= np.uint8(~(1 << (index % 8)) & 0xFF)

    def _check(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range [0, {self._size})")

    def _mask_tail(self) -> None:
        """Zero any padding bits past ``size`` in the last word."""
        extra = self._size % 8
        if extra and len(self._words):
            self._words[-1] &= np.uint8((1 << extra) - 1)

    # -- set algebra -------------------------------------------------------

    def _require_same_size(self, other: "Bitset") -> None:
        if self._size != other._size:
            raise ValueError(f"bitset size mismatch: {self._size} vs {other._size}")

    def __and__(self, other: "Bitset") -> "Bitset":
        self._require_same_size(other)
        return Bitset(self._size, self._words & other._words)

    def __or__(self, other: "Bitset") -> "Bitset":
        self._require_same_size(other)
        return Bitset(self._size, self._words | other._words)

    def __xor__(self, other: "Bitset") -> "Bitset":
        self._require_same_size(other)
        return Bitset(self._size, self._words ^ other._words)

    def __invert__(self) -> "Bitset":
        inverted = Bitset(self._size, ~self._words)
        inverted._mask_tail()
        return inverted

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._size == other._size and bool(np.array_equal(self._words, other._words))

    def __hash__(self) -> int:  # bitsets are mutable; keep them unhashable
        raise TypeError("Bitset is unhashable")

    # -- queries -----------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count)."""
        return int(np.unpackbits(self._words, bitorder="little").sum())

    def any(self) -> bool:
        """Whether any bit is set."""
        return bool(self._words.any())

    def indices(self) -> np.ndarray:
        """Sorted array of set positions."""
        if not self._size:
            return np.empty(0, dtype=np.int64)
        unpacked = np.unpackbits(self._words, bitorder="little")[: self._size]
        return np.flatnonzero(unpacked).astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())

    def to_bool_array(self) -> np.ndarray:
        """Boolean numpy array, one element per row."""
        if not self._size:
            return np.empty(0, dtype=bool)
        return np.unpackbits(self._words, bitorder="little")[: self._size].astype(bool)

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize as ``size:uint32le`` followed by the packed words."""
        header = int(self._size).to_bytes(4, "little")
        return header + self._words.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitset":
        """Inverse of :meth:`to_bytes`."""
        if len(data) < 4:
            raise SerializationError("bitset payload shorter than header")
        size = int.from_bytes(data[:4], "little")
        nwords = (size + 7) // 8
        if len(data) != 4 + nwords:
            raise SerializationError(
                f"bitset payload length {len(data)} does not match size {size}"
            )
        words = np.frombuffer(data, dtype=np.uint8, count=nwords, offset=4)
        return cls(size, words.copy())

    def __repr__(self) -> str:
        return f"Bitset(size={self._size}, set={self.count()})"
