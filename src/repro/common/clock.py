"""Clock abstractions: wall clock and a deterministic virtual clock.

The paper's evaluation numbers (latency, throughput) are properties of a
cluster — round trips to object storage, records per second per worker —
not of the Python interpreter.  Benches therefore run against a
:class:`VirtualClock`: components *charge* simulated durations to the clock
instead of sleeping, which keeps the full figure suite deterministic and
fast while preserving the relative relationships the paper reports.

Production-style usage can pass a :class:`WallClock` instead; every
component in the package takes the clock as a constructor argument.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Protocol


class Clock(Protocol):
    """Minimal clock interface shared by wall and virtual clocks."""

    def now(self) -> float:
        """Current time in (possibly simulated) seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds`` (blocking for a wall clock)."""
        ...


class WallClock:
    """Real time, for interactive use of the library."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """A deterministic, manually advanced clock with a timer wheel.

    ``sleep`` advances time instantly.  ``call_at``/``call_later`` schedule
    callbacks that fire when :meth:`advance` (or a ``sleep`` passing their
    deadline) reaches them — enough to drive the Raft election timers and
    the periodic balancer loop in simulation.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._counter = itertools.count()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self.advance(seconds)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        heapq.heappush(self._timers, (when, next(self._counter), callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback)

    def advance(self, seconds: float) -> None:
        """Move time forward, firing any timers that come due, in order."""
        if seconds < 0:
            raise ValueError(f"cannot advance backwards: {seconds}")
        deadline = self._now + seconds
        while self._timers and self._timers[0][0] <= deadline:
            when, _, callback = heapq.heappop(self._timers)
            self._now = when
            callback()
        self._now = deadline

    def pending_timers(self) -> int:
        """Number of timers not yet fired (useful in tests)."""
        return len(self._timers)

    def deferred(self) -> "DeferredCharges":
        """Collect ``sleep`` charges instead of advancing time.

        Used to model concurrent work: run each task under its own
        ``deferred()`` block, then ``sleep(max(totals))`` — the tasks'
        durations overlap instead of serializing.  Nesting is allowed;
        charges land in the innermost active collector.
        """
        return DeferredCharges(self)


class DeferredCharges:
    """Context manager that captures a VirtualClock's sleeps."""

    def __init__(self, clock: "VirtualClock") -> None:
        self._clock = clock
        self.total = 0.0
        self._saved_sleep: Callable[[float], None] | None = None

    def __enter__(self) -> "DeferredCharges":
        self._saved_sleep = self._clock.sleep

        def collect(seconds: float) -> None:
            if seconds < 0:
                raise ValueError(f"cannot sleep a negative duration: {seconds}")
            self.total += seconds

        self._clock.sleep = collect  # type: ignore[method-assign]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._saved_sleep is not None
        self._clock.sleep = self._saved_sleep  # type: ignore[method-assign]
