"""Small shared helpers: percentiles, formatting, chunking."""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` for ``q`` in [0, 100].

    Implemented locally (rather than via numpy) so latency summaries work
    on plain lists collected incrementally by the metrics module.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for single-element input."""
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def human_bytes(size: float) -> str:
    """Format a byte count like ``1.5 MiB``."""
    if size < 0:
        raise ValueError(f"negative size: {size}")
    units = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
    value = float(size)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def human_count(count: float) -> str:
    """Format a count like ``1.5M`` / ``3.2k``."""
    if count < 0:
        raise ValueError(f"negative count: {count}")
    if count >= 1_000_000_000:
        return f"{count / 1_000_000_000:.1f}B"
    if count >= 1_000_000:
        return f"{count / 1_000_000:.1f}M"
    if count >= 1_000:
        return f"{count / 1_000:.1f}k"
    return str(int(count))


def wave_elapsed(durations: Sequence[float], width: int) -> float:
    """Elapsed time of ``width``-wide concurrent waves over ``durations``.

    The deferred-clock overlap model shared by the prefetching executor
    and the broker's write fan-out: tasks run ``width`` at a time and
    each wave costs its slowest member, so K parallel tasks pay the
    slowest, not the sum.
    """
    if width < 1:
        raise ValueError(f"wave width must be >= 1, got {width}")
    ordered = sorted(durations, reverse=True)
    return sum(ordered[i] for i in range(0, len(ordered), width))


def chunked(items: Iterable[T], size: int) -> Iterator[list[T]]:
    """Yield successive lists of up to ``size`` items."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    batch: list[T] = []
    for item in items:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def merge_ranges(ranges: Iterable[tuple[int, int]], gap: int = 0) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent ``(start, end)`` half-open byte ranges.

    Ranges closer than ``gap`` bytes apart are coalesced too — the parallel
    prefetcher uses this to merge nearly-contiguous block reads into one
    object-store request, as §5.2 of the paper describes ("repeated data
    block read IO requests will be merged").
    """
    if gap < 0:
        raise ValueError(f"gap must be non-negative, got {gap}")
    ordered = sorted(ranges)
    merged: list[tuple[int, int]] = []
    for start, end in ordered:
        if end < start:
            raise ValueError(f"invalid range ({start}, {end})")
        if merged and start <= merged[-1][1] + gap:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
