"""Exception hierarchy for the LogStore reproduction.

Every error raised by this package derives from :class:`LogStoreError`, so
callers can catch one base class at API boundaries.  Subsystems define
narrower classes here (rather than locally) so that cross-module code can
depend on them without import cycles.
"""

from __future__ import annotations


class LogStoreError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(LogStoreError):
    """An invalid configuration value was supplied."""


class SchemaError(LogStoreError):
    """A table schema is malformed or a row does not match its schema."""


class CodecError(LogStoreError):
    """An unknown compression codec was requested or (de)compression failed."""


class SerializationError(LogStoreError):
    """A binary structure could not be encoded or decoded."""


class CorruptionError(SerializationError):
    """Stored bytes fail a checksum or structural validation."""


class ObjectStoreError(LogStoreError):
    """Base class for simulated cloud object storage errors."""


class NoSuchKey(ObjectStoreError):
    """The requested object key does not exist in the bucket."""


class NoSuchBucket(ObjectStoreError):
    """The requested bucket does not exist."""


class ObjectAlreadyExists(ObjectStoreError):
    """An immutable object would be overwritten."""


class InvalidRange(ObjectStoreError):
    """A ranged read asked for bytes outside the object."""


class TransientStoreError(ObjectStoreError):
    """A retryable object-store failure (5xx, throttle, connection reset)."""


class WalError(LogStoreError):
    """Write-ahead-log failure (corrupt record, bad sequence, ...)."""


class RaftError(LogStoreError):
    """Raft protocol violation or unusable state."""


class NotLeaderError(RaftError):
    """A write was submitted to a replica that is not the leader.

    Carries the id of the current leader when known so routers can retry.
    """

    def __init__(self, message: str, leader_id: str | None = None) -> None:
        super().__init__(message)
        self.leader_id = leader_id


class BackpressureError(LogStoreError):
    """A bounded queue rejected work because backpressure flow control fired."""


class RowStoreError(LogStoreError):
    """Row store failure (sealed segment mutation, bad scan range, ...)."""


class BuildError(LogStoreError):
    """Data-builder failure (unsealed memtable, bad build parameters)."""


class CatalogError(LogStoreError):
    """Metadata catalog failure (unknown tenant, conflicting registration)."""


class TenantNotFound(CatalogError):
    """The named tenant is not registered in the catalog."""


class QueryError(LogStoreError):
    """Query planning or execution failure."""


class SqlParseError(QueryError):
    """The SQL text could not be parsed by the minimal dialect.

    ``position`` is the character offset into the statement where the
    parser gave up (``None`` when no offset applies, e.g. truncated
    input); the message embeds a caret-context snippet pointing at it.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class AuthError(QueryError):
    """A statement was rejected by tenant authentication/authorization.

    Raised when a session presents a bad token, or when a statement
    scoped to one tenant tries to touch another tenant's data.
    """


class FlowError(LogStoreError):
    """Traffic-control failure (infeasible balance plan, bad graph)."""


class CapacityExceeded(FlowError):
    """Aggregate demand exceeds cluster capacity even after scaling."""


class ClusterError(LogStoreError):
    """Cluster wiring or lifecycle failure."""


class ShardNotFound(ClusterError):
    """The routing table referenced a shard that does not exist."""


class WorkerNotFound(ClusterError):
    """A shard placement referenced a worker that does not exist."""


class ChaosError(LogStoreError):
    """Chaos-run harness failure (unknown scenario, bad fault plan)."""


class InvariantViolationError(ChaosError):
    """A chaos run's post-heal invariant check found violations."""


class LifecycleError(LogStoreError):
    """Data-lifecycle failure (retention policy, expiry, offboarding)."""
