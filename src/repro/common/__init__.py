"""Shared utilities: errors, clocks, binary encoding, bitsets."""

from repro.common.bitset import Bitset
from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.clock import Clock, VirtualClock, WallClock
from repro.common.errors import LogStoreError

__all__ = [
    "Bitset",
    "BinaryReader",
    "BinaryWriter",
    "Clock",
    "VirtualClock",
    "WallClock",
    "LogStoreError",
]
