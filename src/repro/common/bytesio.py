"""Little binary writer/reader helpers used by all on-disk formats.

Every serialized structure in the package (WAL records, LogBlock parts,
tar manifests) is written through :class:`BinaryWriter` and parsed with
:class:`BinaryReader`, which centralizes endianness, length-prefixing and
bounds checking.
"""

from __future__ import annotations

import struct

from repro.common.errors import SerializationError
from repro.common.varint import decode_uvarint, encode_uvarint


class BinaryWriter:
    """Appends primitive values to a growable byte buffer."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def offset(self) -> int:
        """Current write position (== bytes written so far)."""
        return len(self._buf)

    def write_bytes(self, data: bytes) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf += struct.pack("<B", value)

    def write_u16(self, value: int) -> None:
        self._buf += struct.pack("<H", value)

    def write_u32(self, value: int) -> None:
        self._buf += struct.pack("<I", value)

    def write_u64(self, value: int) -> None:
        self._buf += struct.pack("<Q", value)

    def write_i64(self, value: int) -> None:
        self._buf += struct.pack("<q", value)

    def write_f64(self, value: float) -> None:
        self._buf += struct.pack("<d", value)

    def write_uvarint(self, value: int) -> None:
        self._buf += encode_uvarint(value)

    def write_len_prefixed(self, data: bytes) -> None:
        """Write a uvarint length then the raw bytes."""
        self.write_uvarint(len(data))
        self._buf += data

    def write_str(self, text: str) -> None:
        """Write a UTF-8 string with a uvarint length prefix."""
        self.write_len_prefixed(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class BinaryReader:
    """Sequential reader over a byte buffer with bounds checking."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def offset(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= len(self._data):
            raise SerializationError(f"seek to {offset} outside buffer of {len(self._data)}")
        self._pos = offset

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise SerializationError(
                f"read of {count} bytes at {self._pos} overruns buffer of {len(self._data)}"
            )
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return out

    def _unpack(self, fmt: str, size: int):
        return struct.unpack(fmt, self.read_bytes(size))[0]

    def read_u8(self) -> int:
        return self._unpack("<B", 1)

    def read_u16(self) -> int:
        return self._unpack("<H", 2)

    def read_u32(self) -> int:
        return self._unpack("<I", 4)

    def read_u64(self) -> int:
        return self._unpack("<Q", 8)

    def read_i64(self) -> int:
        return self._unpack("<q", 8)

    def read_f64(self) -> float:
        return self._unpack("<d", 8)

    def read_uvarint(self) -> int:
        value, self._pos = decode_uvarint(self._data, self._pos)
        return value

    def read_len_prefixed(self) -> bytes:
        length = self.read_uvarint()
        return self.read_bytes(length)

    def read_str(self) -> str:
        return self.read_len_prefixed().decode("utf-8")
