"""LEB128 variable-length integers and zigzag encoding.

LogBlock column blocks store row counts, offsets and deltas as varints to
keep the metadata sections compact, mirroring what ORC/Parquet-style
formats (and the paper's LogBlock) do.
"""

from __future__ import annotations

from repro.common.errors import SerializationError

_MAX_VARINT_BYTES = 10  # enough for any unsigned 64-bit value


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128 bytes."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an unsigned LEB128 integer.

    Returns ``(value, new_offset)`` where ``new_offset`` points just past
    the varint.
    """
    result = 0
    shift = 0
    pos = offset
    for _ in range(_MAX_VARINT_BYTES):
        if pos >= len(data):
            raise SerializationError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise SerializationError("uvarint longer than 10 bytes")


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one with small magnitudes small."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer via zigzag + unsigned LEB128."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a signed integer encoded by :func:`encode_svarint`."""
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos


def encode_uvarint_list(values: list[int]) -> bytes:
    """Encode a length-prefixed list of unsigned varints."""
    out = bytearray(encode_uvarint(len(values)))
    for value in values:
        out += encode_uvarint(value)
    return bytes(out)


def decode_uvarint_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a list written by :func:`encode_uvarint_list`."""
    count, pos = decode_uvarint(data, offset)
    values = []
    for _ in range(count):
        value, pos = decode_uvarint(data, pos)
        values.append(value)
    return values, pos
