"""LogBlock inspection CLI.

Dump the structure of a packed LogBlock file (as produced by the data
builder and stored on OSS / a LocalFsObjectStore directory):

    python -m repro.tools.inspect path/to/block.lgb
    python -m repro.tools.inspect --members path/to/block.lgb
    python -m repro.tools.inspect --column ip --limit 5 path/to/block.lgb

Because LogBlocks are self-contained (§3.2), everything — schema, row
counts, per-column SMAs, index sizes — is recoverable from the file
alone, with no catalog access.
"""

from __future__ import annotations

import argparse
import sys

from repro.codec import get_codec
from repro.common.utils import human_bytes
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import IndexType
from repro.tarpack.reader import PackReader


class _FileRangeReader:
    """RangeReader over one local file (bucket/key are ignored)."""

    def __init__(self, path: str) -> None:
        self._path = path

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        with open(self._path, "rb") as handle:
            handle.seek(start)
            data = handle.read(length)
        if len(data) != length:
            # PackReader probes with a fixed head chunk; emulate the
            # object-store behaviour for short files.
            from repro.common.errors import InvalidRange

            raise InvalidRange(f"range [{start}, {start + length}) beyond end of file")
        return data


def open_block(path: str) -> LogBlockReader:
    """A reader over a LogBlock file on the local filesystem."""
    return LogBlockReader(PackReader(_FileRangeReader(path), "-", path))


def _print_summary(reader: LogBlockReader, out) -> None:
    meta = reader.meta()
    schema = meta.schema
    codec = get_codec(meta.codec_id)
    print(f"table:        {schema.name}", file=out)
    print(f"rows:         {meta.row_count}", file=out)
    print(f"column blocks: {meta.n_blocks} x <= {meta.block_rows} rows", file=out)
    print(f"codec:        {codec.name}", file=out)
    print(file=out)
    header = f"{'column':<12} {'type':<10} {'index':<9} {'index size':>11} {'min':>24} {'max':>24}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for column in schema.columns:
        sma = meta.column_sma(column.name)
        index_size = meta.index_sizes.get(column.name, 0)
        index_name = column.index.name.lower() if column.index is not IndexType.NONE else "-"

        def fmt(value):
            if value is None:
                return "null"
            text = str(value)
            return text if len(text) <= 24 else text[:21] + "..."

        print(
            f"{column.name:<12} {column.ctype.name.lower():<10} {index_name:<9} "
            f"{human_bytes(index_size):>11} {fmt(sma.min_value):>24} {fmt(sma.max_value):>24}",
            file=out,
        )


def _print_members(reader: LogBlockReader, out) -> None:
    manifest = reader.pack.manifest()
    print(f"{'member':<20} {'offset':>10} {'size':>12}", file=out)
    for entry in manifest.entries():
        print(f"{entry.name:<20} {entry.offset:>10} {human_bytes(entry.length):>12}", file=out)


def _print_column(reader: LogBlockReader, column: str, limit: int, out) -> None:
    values = reader.read_column(column)
    for value in values[:limit]:
        print(value, file=out)
    if len(values) > limit:
        print(f"... ({len(values) - limit} more)", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect", description="Inspect a packed LogBlock file."
    )
    parser.add_argument("path", help="path to a .lgb pack file")
    parser.add_argument(
        "--members", action="store_true", help="list the pack's members instead"
    )
    parser.add_argument("--column", help="dump the values of one column")
    parser.add_argument(
        "--limit", type=int, default=20, help="max values to dump with --column"
    )
    args = parser.parse_args(argv)

    try:
        reader = open_block(args.path)
        if args.members:
            _print_members(reader, out)
        elif args.column:
            _print_column(reader, args.column, args.limit, out)
        else:
            _print_summary(reader, out)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except Exception as exc:  # CLI boundary: fold errors to exit codes
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
