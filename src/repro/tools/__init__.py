"""Operational tooling: LogBlock inspection CLI."""

from repro.tools.inspect import main as inspect_main, open_block

__all__ = ["inspect_main", "open_block"]
