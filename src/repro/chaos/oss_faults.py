"""Object-store fault injector.

:class:`ChaosObjectStore` wraps a raw backend and sits *under* the
cluster's :class:`~repro.oss.metered.MeteredObjectStore` (pass it as
``LogStore.create(backend=...)``), so the whole store stack above —
metering, retry layers, builder, compactor, caches — sees its faults
exactly where a real object store would produce them.

Fault modes (all deterministic: one seeded RNG, virtual-clock time):

* **outage** — every call raises :class:`TransientStoreError` until
  healed (a full OSS brownout);
* **error rate** — each call fails independently with probability p
  (sustained flakiness / throttling storms);
* **throttle every N** — every Nth call fails (deterministic rate
  limiting);
* **latency spike** — each call charges extra seconds to the clock
  before executing (degraded-but-working OSS);
* **torn upload** — the next PUT writes a prefix of the object's bytes
  into the backend and then fails, leaving a partial object behind —
  the nastiest real-world failure, because the retry then collides
  with the damaged object.

Injected faults are recorded to the run's event trace; normal
passthrough calls are not (they would bloat the trace without adding
information — workload ops are traced at the workload layer).
"""

from __future__ import annotations

import random

from repro.chaos.events import EventTrace
from repro.common.clock import Clock
from repro.common.errors import TransientStoreError
from repro.oss.store import ObjectStat, ObjectStore


class ChaosObjectStore:
    """Fault-injecting object store for chaos runs."""

    def __init__(
        self,
        inner: ObjectStore,
        clock: Clock,
        trace: EventTrace | None = None,
        seed: int = 0,
    ) -> None:
        self._inner = inner
        self._clock = clock
        self._trace = trace if trace is not None else EventTrace()
        self._rng = random.Random(seed)
        self._outage = False
        self._error_rate = 0.0
        self._throttle_every = 0
        self._latency_s = 0.0
        self._torn_puts = 0
        self._torn_fraction = 0.5
        self._calls = 0
        self.faults_injected = 0

    @property
    def inner(self) -> ObjectStore:
        return self._inner

    # -- fault controls --------------------------------------------------

    def _note(self, kind: str, detail: str = "") -> None:
        self._trace.record(self._clock.now(), kind, "oss", detail)

    def begin_outage(self) -> None:
        self._outage = True
        self._note("fault.oss.outage.begin")

    def end_outage(self) -> None:
        self._outage = False
        self._note("fault.oss.outage.end")

    def set_error_rate(self, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise ValueError(f"error rate must be in [0, 1], got {rate}")
        self._error_rate = rate
        self._note("fault.oss.error_rate", f"rate={rate}")

    def set_throttle_every(self, n: int) -> None:
        """Fail every ``n``-th call (0 disables)."""
        self._throttle_every = n
        self._note("fault.oss.throttle", f"every={n}")

    def set_latency_spike(self, seconds: float) -> None:
        self._latency_s = seconds
        self._note("fault.oss.latency", f"seconds={seconds}")

    def tear_next_puts(self, count: int = 1, fraction: float = 0.5) -> None:
        """Make the next ``count`` PUTs upload partially and fail."""
        if not 0 <= fraction < 1:
            raise ValueError(f"torn fraction must be in [0, 1), got {fraction}")
        self._torn_puts += count
        self._torn_fraction = fraction
        self._note("fault.oss.tear_arm", f"count={count} fraction={fraction}")

    def heal(self) -> None:
        """Clear every active fault mode."""
        self._outage = False
        self._error_rate = 0.0
        self._throttle_every = 0
        self._latency_s = 0.0
        self._torn_puts = 0
        self._note("fault.oss.heal")

    # -- fault evaluation ------------------------------------------------

    def _before(self, operation: str, key: str = "") -> None:
        self._calls += 1
        if self._latency_s:
            self._clock.sleep(self._latency_s)
        if self._outage:
            self._fail(operation, key, "outage")
        if self._throttle_every and self._calls % self._throttle_every == 0:
            self._fail(operation, key, "throttled")
        if self._error_rate and self._rng.random() < self._error_rate:
            self._fail(operation, key, "error")

    def _fail(self, operation: str, key: str, why: str) -> None:
        self.faults_injected += 1
        self._trace.record(
            self._clock.now(), f"fault.oss.{why}", "oss", f"{operation} {key}".strip()
        )
        raise TransientStoreError(f"injected OSS {why} in {operation} {key}")

    # -- ObjectStore interface -------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        self._before("create_bucket")
        self._inner.create_bucket(bucket)

    def delete_bucket(self, bucket: str) -> None:
        self._before("delete_bucket")
        self._inner.delete_bucket(bucket)

    def put(self, bucket: str, key: str, data: bytes) -> None:
        self._before("put", key)
        if self._torn_puts > 0:
            self._torn_puts -= 1
            torn = data[: int(len(data) * self._torn_fraction)]
            self._inner.put(bucket, key, torn)
            self.faults_injected += 1
            self._trace.record(
                self._clock.now(),
                "fault.oss.torn_put",
                "oss",
                f"{key} kept={len(torn)}/{len(data)}",
            )
            raise TransientStoreError(f"injected torn upload of {key}")
        self._inner.put(bucket, key, data)

    def get(self, bucket: str, key: str) -> bytes:
        self._before("get", key)
        return self._inner.get(bucket, key)

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        self._before("get_range", key)
        return self._inner.get_range(bucket, key, start, length)

    def head(self, bucket: str, key: str) -> ObjectStat:
        self._before("head", key)
        return self._inner.head(bucket, key)

    def exists(self, bucket: str, key: str) -> bool:
        self._before("exists", key)
        return self._inner.exists(bucket, key)

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        self._before("list", prefix)
        return self._inner.list(bucket, prefix)

    def delete(self, bucket: str, key: str) -> None:
        self._before("delete", key)
        self._inner.delete(bucket, key)
