"""WAL fault injector: failed fsyncs, torn tails, checksum damage.

:class:`FaultySegmentBackend` wraps any
:class:`~repro.wal.log.SegmentBackend` and is handed to shards / Raft
replicas through ``LogStoreConfig.wal_backend_factory``.  Because the
backend object *survives* a simulated process crash (it is the durable
medium), the chaos runner keeps a registry of them and rebuilds crashed
components over the same backend — recovery then runs against whatever
damaged bytes the faults left behind.

Fault modes:

* **failed append** — the next append raises without writing anything:
  an fsync failure.  The write was never acknowledged, so recovery must
  simply not contain it.
* **torn append** — the next append persists only a prefix of its bytes
  and then raises: a crash mid-fsync.  Recovery must cut the torn tail
  and keep the longest valid frame prefix.
* **tail corruption** (:meth:`corrupt_tail`) — flip a byte inside the
  final frame of the last segment: a partial sector overwrite.  The
  frame's CRC no longer matches, and recovery must treat it as a torn
  tail (the bytes were never acknowledged as a complete flush).
"""

from __future__ import annotations

from repro.chaos.events import EventTrace
from repro.common.errors import WalError
from repro.wal.log import MemorySegmentBackend, SegmentBackend


class FaultySegmentBackend:
    """Fault-injecting wrapper around a WAL segment backend."""

    def __init__(
        self,
        name: str,
        inner: SegmentBackend | None = None,
        clock=None,
        trace: EventTrace | None = None,
    ) -> None:
        self.name = name
        self._inner = inner if inner is not None else MemorySegmentBackend()
        self._clock = clock
        self._trace = trace
        self._fail_appends = 0
        self._tear_appends = 0
        self._tear_fraction = 0.5
        self.appends_failed = 0
        self.appends_torn = 0

    @property
    def inner(self) -> SegmentBackend:
        return self._inner

    def _note(self, kind: str, detail: str = "") -> None:
        if self._trace is not None and self._clock is not None:
            self._trace.record(self._clock.now(), kind, self.name, detail)

    # -- fault controls --------------------------------------------------

    def fail_next_appends(self, count: int = 1) -> None:
        """Next ``count`` appends raise without persisting (fsync fails)."""
        self._fail_appends += count
        self._note("fault.wal.fail_arm", f"count={count}")

    def tear_next_appends(self, count: int = 1, fraction: float = 0.5) -> None:
        """Next ``count`` appends persist a prefix, then raise (torn)."""
        if not 0 <= fraction < 1:
            raise ValueError(f"torn fraction must be in [0, 1), got {fraction}")
        self._tear_appends += count
        self._tear_fraction = fraction
        self._note("fault.wal.tear_arm", f"count={count} fraction={fraction}")

    def corrupt_tail(self) -> bool:
        """Flip one byte in the last segment's final bytes.

        Returns False when there is nothing to corrupt.  The flipped
        byte lands far enough from the end to sit inside the final
        frame's payload (the last byte of a frame is payload unless the
        payload is empty).
        """
        segments = self._inner.segments()
        if not segments:
            return False
        last = segments[-1]
        data = bytearray(self._inner.read(last))
        if not data:
            return False
        data[-1] ^= 0xFF
        self._inner.delete(last)
        self._inner.append(last, bytes(data))
        self._note("fault.wal.corrupt_tail", f"segment={last}")
        return True

    def heal(self) -> None:
        self._fail_appends = 0
        self._tear_appends = 0
        self._note("fault.wal.heal")

    # -- SegmentBackend interface ----------------------------------------

    def append(self, segment_id: int, data: bytes) -> None:
        if self._fail_appends > 0:
            self._fail_appends -= 1
            self.appends_failed += 1
            self._note("fault.wal.append_failed", f"segment={segment_id} bytes={len(data)}")
            raise WalError(f"injected fsync failure on {self.name} segment {segment_id}")
        if self._tear_appends > 0:
            self._tear_appends -= 1
            self.appends_torn += 1
            kept = data[: int(len(data) * self._tear_fraction)]
            self._inner.append(segment_id, kept)
            self._note(
                "fault.wal.append_torn",
                f"segment={segment_id} kept={len(kept)}/{len(data)}",
            )
            raise WalError(f"injected torn append on {self.name} segment {segment_id}")
        self._inner.append(segment_id, data)

    def read(self, segment_id: int) -> bytes:
        return self._inner.read(segment_id)

    def segments(self) -> list[int]:
        return self._inner.segments()

    def delete(self, segment_id: int) -> None:
        self._inner.delete(segment_id)
