"""Deterministic event traces for chaos runs.

Every fault injection, workload op, and lifecycle step of a chaos run
is recorded as a :class:`ChaosEvent` with its virtual-clock timestamp.
Since the whole simulation is deterministic, re-running the same
``(scenario, seed)`` must reproduce the trace byte for byte — the
digest is the cheap way to assert that, and the dump is what CI uploads
when a run fails.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class ChaosEvent:
    """One timestamped occurrence in a chaos run."""

    at: float  # virtual-clock seconds
    kind: str  # dotted category, e.g. "fault.oss.outage.begin"
    target: str  # what it hit, e.g. "oss", "shard0/r1", "tenant:3"
    detail: str = ""

    def format(self) -> str:
        line = f"t={self.at:.9f} {self.kind} {self.target}"
        return f"{line} {self.detail}" if self.detail else line


class EventTrace:
    """Append-only, replay-comparable record of a chaos run."""

    def __init__(self) -> None:
        self._events: list[ChaosEvent] = []

    def record(self, at: float, kind: str, target: str, detail: str = "") -> ChaosEvent:
        event = ChaosEvent(at=at, kind=kind, target=target, detail=detail)
        self._events.append(event)
        return event

    @property
    def events(self) -> list[ChaosEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def kinds(self) -> dict[str, int]:
        """Event count per kind (summary view)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_lines(self) -> list[str]:
        return [event.format() for event in self._events]

    def dump(self) -> str:
        return "\n".join(self.to_lines()) + ("\n" if self._events else "")

    def digest(self) -> str:
        """SHA-256 over the dump; equal digests ⇔ byte-identical traces."""
        return hashlib.sha256(self.dump().encode()).hexdigest()
