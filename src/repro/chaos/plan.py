"""Fault schedules: hand-written plans and the seeded Nemesis.

A :class:`FaultPlan` is an ordered list of ``(virtual time, action)``
pairs.  The chaos runner pumps it between workload steps: whenever the
virtual clock passes an action's time, the action fires.  Scenario
bodies either call injector controls directly (for precisely staged
failures) or build a plan — usually via :class:`Nemesis`, which samples
a random-but-seeded schedule from a palette of faults, so one scenario
covers combinations nobody thought to write down while staying fully
replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class FaultAction:
    """One scheduled fault (ordered by time, then insertion)."""

    at: float
    seq: int
    name: str = field(compare=False)
    apply: Callable[[], None] = field(compare=False)


class FaultPlan:
    """A time-ordered schedule of fault actions."""

    def __init__(self) -> None:
        self._actions: list[FaultAction] = []
        self._seq = 0

    def add(self, at: float, name: str, apply: Callable[[], None]) -> None:
        self._actions.append(FaultAction(at=at, seq=self._seq, name=name, apply=apply))
        self._seq += 1
        self._actions.sort()

    def __len__(self) -> int:
        return len(self._actions)

    @property
    def exhausted(self) -> bool:
        return not self._actions

    def next_at(self) -> float | None:
        return self._actions[0].at if self._actions else None

    def pop_due(self, now: float) -> list[FaultAction]:
        """Remove and return every action scheduled at or before ``now``."""
        due: list[FaultAction] = []
        while self._actions and self._actions[0].at <= now:
            due.append(self._actions.pop(0))
        return due


class Nemesis:
    """Seeded random fault scheduler over a context's injectors.

    Given a :class:`~repro.chaos.runner.ChaosContext`, builds a
    :class:`FaultPlan` by repeatedly sampling a fault from the palette
    at exponentially spaced times.  Faults with a duration (outages,
    partitions, crashes) get a matching heal/recover action a short
    hold later, so the system keeps making progress mid-run; whatever
    is still broken when the schedule ends is cleared by the runner's
    final heal phase.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        # At most one WAL corruption per plan: Raft (correctly) cannot
        # survive disk corruption on a majority, so corrupting several
        # replicas could lose quorum-acked entries by design.
        self._wal_corrupted = False

    def build_plan(
        self,
        ctx,
        duration_s: float,
        mean_gap_s: float = 2.0,
        mean_hold_s: float = 1.5,
    ) -> FaultPlan:
        plan = FaultPlan()
        rng = self._rng
        t = ctx.clock.now()
        end = t + duration_s
        while True:
            t += rng.expovariate(1.0 / mean_gap_s)
            if t >= end:
                break
            hold = min(rng.expovariate(1.0 / mean_hold_s), end - t)
            self._sample_fault(ctx, plan, t, hold)
        return plan

    def _sample_fault(self, ctx, plan: FaultPlan, t: float, hold: float) -> None:
        rng = self._rng
        choices = ["oss_outage", "oss_errors", "oss_latency", "oss_torn_put"]
        if ctx.raft_shards():
            choices += ["partition", "one_way_partition", "crash_replica"]
            if not self._wal_corrupted:
                choices.append("wal_corrupt")
        kind = rng.choice(choices)
        if kind == "oss_outage":
            plan.add(t, "oss_outage.begin", ctx.chaos_oss.begin_outage)
            plan.add(t + hold, "oss_outage.end", ctx.chaos_oss.end_outage)
        elif kind == "oss_errors":
            rate = 0.1 + rng.random() * 0.4
            plan.add(t, "oss_errors.begin", lambda r=rate: ctx.chaos_oss.set_error_rate(r))
            plan.add(t + hold, "oss_errors.end", lambda: ctx.chaos_oss.set_error_rate(0.0))
        elif kind == "oss_latency":
            spike = 0.01 + rng.random() * 0.05
            plan.add(t, "oss_latency.begin", lambda s=spike: ctx.chaos_oss.set_latency_spike(s))
            plan.add(t + hold, "oss_latency.end", lambda: ctx.chaos_oss.set_latency_spike(0.0))
        elif kind == "oss_torn_put":
            count = rng.randint(1, 2)
            fraction = 0.25 + rng.random() * 0.5
            plan.add(
                t,
                "oss_torn_put",
                lambda c=count, f=fraction: ctx.chaos_oss.tear_next_puts(c, f),
            )
        elif kind == "wal_corrupt":
            # Damage at rest: crash a replica, flip a byte in its WAL
            # tail, recover — recovery re-opens the log and must repair
            # the tail.  (A live torn append on a Raft replica would be
            # a process panic, which "crash_replica" already models.)
            shards = ctx.raft_shards()
            if not shards:
                return
            self._wal_corrupted = True
            shard = rng.choice(shards)
            node_id = rng.choice(shard.raft._node_ids)
            plan.add(t, "wal_corrupt.crash", lambda s=shard, n=node_id: ctx.crash_replica(s, n))
            plan.add(
                t + 0.05,
                "wal_corrupt.tail",
                lambda n=node_id: ctx.corrupt_wal_tail(n),
            )
            plan.add(
                t + max(hold, 0.1),
                "wal_corrupt.recover",
                lambda s=shard, n=node_id: ctx.recover_replica(s, n),
            )
        elif kind == "partition":
            shard = rng.choice(ctx.raft_shards())
            a, b = rng.sample(shard.raft._node_ids, 2)
            plan.add(t, "partition.begin", lambda s=shard, x=a, y=b: ctx.partition(s, x, y))
            plan.add(t + hold, "partition.end", lambda s=shard, x=a, y=b: ctx.heal_partition(s, x, y))
        elif kind == "one_way_partition":
            shard = rng.choice(ctx.raft_shards())
            a, b = rng.sample(shard.raft._node_ids, 2)
            plan.add(
                t,
                "one_way_partition.begin",
                lambda s=shard, x=a, y=b: ctx.partition_one_way(s, x, y),
            )
            plan.add(
                t + hold,
                "one_way_partition.end",
                lambda s=shard, x=a, y=b: ctx.heal_partition(s, x, y),
            )
        elif kind == "crash_replica":
            shard = rng.choice(ctx.raft_shards())
            node_id = rng.choice(shard.raft._node_ids)
            plan.add(t, "crash_replica", lambda s=shard, n=node_id: ctx.crash_replica(s, n))
            plan.add(
                t + hold,
                "recover_replica",
                lambda s=shard, n=node_id: ctx.recover_replica(s, n),
            )
