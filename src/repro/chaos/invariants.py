"""Post-heal invariant checks for chaos runs.

After the fault schedule ends and the cluster heals, these checks
assert the promises LogStore makes to clients and to itself:

* **durability / read-your-writes** — every acknowledged row is
  readable, exactly once.  Rows from indeterminate batches (the write
  call raised) may appear at most once.  No phantom rows exist that no
  client ever submitted.
* **replica consistency** — full replicas that have applied the same
  log prefix hold byte-identical row-store state.
* **catalog/OSS agreement** — every catalog LogBlock entry points at an
  existing object, no two entries share a path, and no ``.lgb`` object
  exists on OSS that the catalog (or the orphan queues awaiting a
  sweep) does not account for.

Checks are read-only: they query through the normal broker path and
inspect metadata, so a passing run proves the *user-visible* system,
not internal bookkeeping.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.common.errors import ClusterError, InvariantViolationError


@dataclass(frozen=True)
class InvariantViolation:
    """One broken promise, with enough detail to debug the run."""

    invariant: str
    target: str
    detail: str

    def format(self) -> str:
        return f"[{self.invariant}] {self.target}: {self.detail}"


class InvariantChecker:
    """Checks a healed cluster against the run's write ledger."""

    def __init__(
        self,
        store,
        ledger,
        trace=None,
        table: str | None = None,
        expiry_cutoffs: dict[int, int] | None = None,
        offboarded: set[int] | None = None,
    ) -> None:
        self._store = store
        self._ledger = ledger
        self._trace = trace
        # Probe the table the workload actually wrote; key columns come
        # from the ledger so both sides always agree on row identity.
        self._table = table if table is not None else store.catalog.schema.name
        # Lifecycle context: acked rows older than a tenant's recorded
        # expiry cutoff are *allowed* to be gone; offboarded tenants
        # must be gone entirely (checked in check_lifecycle, excluded
        # from durability).
        self._expiry_cutoffs = expiry_cutoffs or {}
        self._offboarded = offboarded or set()

    # -- individual checks ----------------------------------------------

    def check_durability(self) -> list[InvariantViolation]:
        """Acked rows appear exactly once; indeterminate at most once.

        Lifecycle carve-outs: offboarded tenants are checked for
        *absence* in check_lifecycle instead, and acked rows whose
        timestamp predates the tenant's expiry cutoff may legitimately
        be gone (block-level retention) — but never duplicated.
        """
        violations: list[InvariantViolation] = []
        key_columns = self._ledger.key_columns
        select = ", ".join(key_columns)
        for tenant_id in self._ledger.tenants():
            if tenant_id in self._offboarded:
                continue
            result = self._store.query(
                f"SELECT {select} FROM {self._table} WHERE tenant_id = {tenant_id}"
            )
            observed = Counter(self._ledger.row_key(row) for row in result.rows)
            acked = self._ledger.acked_keys(tenant_id)
            indeterminate = self._ledger.indeterminate_keys(tenant_id)
            target = f"tenant:{tenant_id}"
            cutoff = self._expiry_cutoffs.get(tenant_id)
            acked_ts = self._ledger.acked_ts.get(tenant_id, {})

            def expirable(key: str) -> bool:
                if cutoff is None:
                    return False
                ts = acked_ts.get(key)
                return ts is not None and ts < cutoff

            lost = [
                key for key in acked if observed[key] == 0 and not expirable(key)
            ]
            if lost:
                violations.append(
                    InvariantViolation(
                        "no_acked_write_lost",
                        target,
                        f"{len(lost)} acked rows missing, first: {lost[0]!r}",
                    )
                )
            duplicated = [key for key, count in observed.items() if count > 1]
            if duplicated:
                violations.append(
                    InvariantViolation(
                        "no_duplicate_rows",
                        target,
                        f"{len(duplicated)} rows visible more than once, "
                        f"first: {duplicated[0]!r} x{observed[duplicated[0]]}",
                    )
                )
            phantoms = [
                key for key in observed if key not in acked and key not in indeterminate
            ]
            if phantoms:
                violations.append(
                    InvariantViolation(
                        "no_phantom_rows",
                        target,
                        f"{len(phantoms)} rows no client submitted, "
                        f"first: {phantoms[0]!r}",
                    )
                )
        return violations

    def check_replica_consistency(self) -> list[InvariantViolation]:
        """Caught-up full replicas hold byte-identical stores."""
        violations: list[InvariantViolation] = []
        for worker in self._store.workers.values():
            for shard in worker.shards.values():
                try:
                    shard.verify_raft_consistency()
                except ClusterError as exc:
                    violations.append(
                        InvariantViolation(
                            "replicas_byte_identical", f"shard:{shard.shard_id}", str(exc)
                        )
                    )
        return violations

    def check_catalog_oss_agreement(self) -> list[InvariantViolation]:
        """The LogBlock map and the bucket tell the same story."""
        violations: list[InvariantViolation] = []
        bucket = self._store.config.bucket
        entries = self._store.catalog.all_blocks()
        paths = Counter(entry.path for entry in entries)
        duplicates = [path for path, count in paths.items() if count > 1]
        if duplicates:
            violations.append(
                InvariantViolation(
                    "no_duplicate_blocks",
                    "catalog",
                    f"{len(duplicates)} paths registered twice, first: {duplicates[0]}",
                )
            )
        # A hot entry's backing object is its path; a cold entry's is
        # the tar-packed segment it lives in (shared with siblings).
        object_paths = {entry.object_path for entry in entries}
        stored = {
            stat.key
            for stat in self._store.oss.list(bucket, "tenants/")
            if stat.key.endswith((".lgb", ".seg"))
        }
        dangling = sorted(object_paths - stored)
        if dangling:
            violations.append(
                InvariantViolation(
                    "no_dangling_blocks",
                    "catalog",
                    f"{len(dangling)} catalog entries without an object, "
                    f"first: {dangling[0]}",
                )
            )
        # Orphans still queued for a sweep are accounted for, not leaked.
        pending = {path for _bucket, path in self._store.builder.orphans}
        compactor = getattr(self._store, "compactor", None)
        if compactor is not None:
            pending |= {path for _bucket, path in compactor.orphans}
        lifecycle = getattr(self._store, "lifecycle", None)
        if lifecycle is not None:
            pending |= {path for _bucket, path in lifecycle.sweeper.orphans}
            pending |= {path for _bucket, path in lifecycle.cold.orphans}
        unaccounted = sorted(stored - object_paths - pending)
        if unaccounted:
            violations.append(
                InvariantViolation(
                    "no_orphan_objects",
                    "oss",
                    f"{len(unaccounted)} objects not in the catalog, "
                    f"first: {unaccounted[0]}",
                )
            )
        return violations

    def check_lifecycle(self) -> list[InvariantViolation]:
        """Retention converged and offboarding left zero residue.

        * **expiry_converged** — after healing, no catalog block whose
          ``max_ts`` predates the tenant's recorded cutoff remains:
          every crash-interrupted sweep finished exactly once on replay.
        * **offboard_zero_residue** — an offboarded tenant has nothing
          left in the catalog, nothing under its OSS prefix, and a live
          query returns zero rows.
        """
        violations: list[InvariantViolation] = []
        from repro.common.errors import TenantNotFound

        catalog = self._store.catalog
        for tenant_id in sorted(self._expiry_cutoffs):
            cutoff = self._expiry_cutoffs[tenant_id]
            try:
                info = catalog.tenant(tenant_id)
            except TenantNotFound:
                continue
            leftovers = [b for b in info.blocks if b.max_ts < cutoff]
            if leftovers:
                violations.append(
                    InvariantViolation(
                        "expiry_converged",
                        f"tenant:{tenant_id}",
                        f"{len(leftovers)} expired blocks survived healing, "
                        f"first: {leftovers[0].path}",
                    )
                )
        lifecycle = getattr(self._store, "lifecycle", None)
        for tenant_id in sorted(self._offboarded):
            residue = (
                lifecycle.offboarder.verify_residue(tenant_id)
                if lifecycle is not None
                else []
            )
            if residue:
                violations.append(
                    InvariantViolation(
                        "offboard_zero_residue",
                        f"tenant:{tenant_id}",
                        f"{len(residue)} leftovers, first: {residue[0]}",
                    )
                )
            result = self._store.query(
                f"SELECT COUNT(*) FROM {self._table} WHERE tenant_id = {tenant_id}"
            )
            remaining = int(result.rows[0]["COUNT(*)"]) if result.rows else 0
            if remaining:
                violations.append(
                    InvariantViolation(
                        "offboard_zero_rows",
                        f"tenant:{tenant_id}",
                        f"query still returns {remaining} rows",
                    )
                )
        return violations

    # -- aggregation -----------------------------------------------------

    def check_all(self) -> list[InvariantViolation]:
        violations = (
            self.check_durability()
            + self.check_replica_consistency()
            + self.check_catalog_oss_agreement()
            + self.check_lifecycle()
        )
        if self._trace is not None:
            clock = self._store.clock
            if violations:
                for violation in violations:
                    self._trace.record(
                        clock.now(),
                        "invariant.violated",
                        violation.target,
                        f"{violation.invariant}: {violation.detail}",
                    )
            else:
                self._trace.record(clock.now(), "invariant.ok", "cluster")
        return violations

    def assert_ok(self) -> None:
        violations = self.check_all()
        if violations:
            lines = "\n".join(violation.format() for violation in violations)
            raise InvariantViolationError(
                f"{len(violations)} invariant violation(s):\n{lines}"
            )
