"""The write ledger: ground truth for durability invariants.

The chaos workload records every batch it submits with the outcome the
*client* observed:

* **acked** — the write call returned: the cluster promised durability
  at the configured ack level.  Every acked row must survive any fault
  schedule, and must appear exactly once.
* **indeterminate** — the write call raised: the client cannot know
  whether the batch (or part of it — the broker admits per shard) took
  effect.  Each indeterminate row may appear zero or one time, never
  twice.

Rows are identified by ``key_columns`` — ``("log",)`` for the classic
request-log workloads (the workload makes ``log`` globally unique per
run), or e.g. ``("run_id", "version")`` for versioned-table sessions,
where exactly-once visibility means no duplicate ``(key, version)``
pair ever becomes readable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class WriteLedger:
    """Per-tenant acked / indeterminate row keys."""

    acked: dict[int, list[str]] = field(default_factory=dict)
    indeterminate: dict[int, list[str]] = field(default_factory=dict)
    key_columns: tuple[str, ...] = ("log",)
    # Row timestamps of acked rows (key → ts), kept so lifecycle-aware
    # durability checks can tell retention-expired rows (allowed to be
    # gone) from lost ones (never allowed).
    acked_ts: dict[int, dict[str, int]] = field(default_factory=dict)

    def row_key(self, row: dict) -> str:
        return "@".join(str(row[column]) for column in self.key_columns)

    def record_acked(self, tenant_id: int, rows: list[dict]) -> None:
        self.acked.setdefault(tenant_id, []).extend(self.row_key(row) for row in rows)
        ts_map = self.acked_ts.setdefault(tenant_id, {})
        for row in rows:
            ts = row.get("ts")
            if isinstance(ts, int):
                ts_map[self.row_key(row)] = ts

    def record_indeterminate(self, tenant_id: int, rows: list[dict]) -> None:
        self.indeterminate.setdefault(tenant_id, []).extend(
            self.row_key(row) for row in rows
        )

    def tenants(self) -> list[int]:
        return sorted(set(self.acked) | set(self.indeterminate))

    def acked_count(self) -> int:
        return sum(len(keys) for keys in self.acked.values())

    def indeterminate_count(self) -> int:
        return sum(len(keys) for keys in self.indeterminate.values())

    def acked_keys(self, tenant_id: int) -> Counter:
        return Counter(self.acked.get(tenant_id, ()))

    def indeterminate_keys(self, tenant_id: int) -> set[str]:
        return set(self.indeterminate.get(tenant_id, ()))
