"""Chaos smoke harness: ``python -m repro.chaos.smoke``.

Runs a matrix of scenarios × seeds, prints one summary per run, and
exits non-zero if any invariant was violated.  With ``--trace-dir``
every run's event trace is written to
``<dir>/<scenario>-seed<seed>.trace`` — in CI those files are uploaded
as artifacts when the job fails, turning a red build into an exact
repro recipe (re-run the same scenario and seed locally).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.chaos.runner import ChaosRunner
from repro.chaos.scenarios import SCENARIOS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos.smoke", description="Run chaos scenarios and check invariants."
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--seeds", default="0,1", help="comma-separated seeds (default: 0,1)"
    )
    parser.add_argument(
        "--trace-dir", default=None, help="write each run's event trace here"
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name}: {SCENARIOS[name].description}")
        return 0

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]

    trace_dir = None
    if args.trace_dir:
        trace_dir = pathlib.Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)

    failures = 0
    for name in names:
        for seed in seeds:
            result = ChaosRunner(name, seed=seed).run()
            print(result.summary())
            if trace_dir is not None:
                path = trace_dir / f"{name}-seed{seed}.trace"
                path.write_text(result.trace.dump())
            if not result.ok:
                failures += 1
    print(f"\n{len(names) * len(seeds)} run(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
