"""The scenario library: staged failures the paper's design must survive.

Each scenario is a workload interleaved with faults on the virtual
clock.  Bodies only *stage* trouble — they never assert.  The runner
heals everything afterwards and the invariant checker decides whether
the cluster kept its promises.  Bodies therefore swallow the
exceptions a real client would see (recording them in the ledger as
indeterminate) and keep going: chaos runs measure what survives, not
what raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.builder.compaction import Compactor
from repro.chaos.plan import Nemesis
from repro.chaos.runner import ChaosContext

_RAFT = dict(use_raft=True, replicas=3, wal_only_replicas=1)


@dataclass(frozen=True)
class Scenario:
    """A named, configured, replayable failure story."""

    name: str
    description: str
    body: Callable[[ChaosContext], None]
    config: dict = field(default_factory=dict)
    # What the durability probe looks at: the table the workload wrote
    # (None = the store's current schema) and the columns that identify
    # a row in the ledger.  Classic request-log workloads key on the
    # globally unique ``log`` string; versioned-table sessions key on
    # ``(run_id, version)`` so exactly-once means no duplicate version.
    probe_table: str | None = None
    probe_key_columns: tuple[str, ...] = ("log",)


def _make_compactor(ctx: ChaosContext) -> Compactor:
    """Build a compactor over the store's (fault-injected) OSS and
    attach it so the invariant checker accounts for its orphans."""
    store = ctx.store
    compactor = Compactor(
        store.schema,
        store.oss,
        store.config.bucket,
        store.catalog,
        codec=store.config.codec,
        block_rows=store.config.block_rows,
        small_threshold_rows=500,
        target_rows=1_000,
        retry_clock=ctx.clock,
        obs=store.obs,
        use_vectorized_encode=store.config.use_vectorized_encode,
    )
    store.compactor = compactor
    return compactor


# -- staged scenarios ------------------------------------------------------


def _leader_crash_mid_pipeline(ctx: ChaosContext) -> None:
    """Kill a shard leader while writes are streaming; keep writing
    through the election; archive after the new leader settles."""
    for _ in range(4):
        ctx.write_batch(1)
        ctx.write_batch(2)
        ctx.advance(0.05)
    shard = ctx.raft_shards()[0]
    ctx.crash_leader(shard)
    for _ in range(8):
        ctx.write_batch(1)
        ctx.write_batch(2)
        ctx.advance(0.25)
    ctx.archive()


def _partition_during_archiving(ctx: ChaosContext) -> None:
    """Cut a leader off from one follower right as sealed memtables
    are being drained to OSS; the drain proposal must still commit
    through the surviving quorum (or defer, never double-archive)."""
    for _ in range(12):
        ctx.write_batch(1)
        ctx.advance(0.05)
    shard = ctx.raft_shards()[0]
    leader = shard.raft.leader()
    followers = [n for n in shard.raft._node_ids if leader is None or n != leader.node_id]
    if leader is not None:
        ctx.partition(shard, leader.node_id, followers[0])
    ctx.archive()
    for _ in range(4):
        ctx.write_batch(1)
        ctx.advance(0.25)
    ctx.archive()


def _asymmetric_partition_ingest(ctx: ChaosContext) -> None:
    """One-way partition: the leader's messages stop reaching a
    follower while the follower's still arrive.  The starved follower
    calls elections and destabilises the term; acked writes must
    survive the churn."""
    for _ in range(4):
        ctx.write_batch(1)
        ctx.advance(0.05)
    shard = ctx.raft_shards()[0]
    leader = shard.raft.leader()
    if leader is not None:
        victim = next(n for n in shard.raft._node_ids if n != leader.node_id)
        ctx.partition_one_way(shard, leader.node_id, victim)
    for _ in range(10):
        ctx.write_batch(1)
        ctx.advance(0.25)


def _oss_brownout_during_compaction(ctx: ChaosContext) -> None:
    """OSS goes flaky mid-compaction: the run must either finish
    atomically after retries or compensate — never register half the
    output chunks."""
    for _ in range(10):
        ctx.write_batch(1, 60)
        ctx.advance(0.05)
    ctx.archive()
    compactor = _make_compactor(ctx)
    ctx.chaos_oss.set_error_rate(0.55)
    ctx.chaos_oss.tear_next_puts(2, 0.4)
    try:
        compactor.compact_all()
        ctx.trace.record(ctx.clock.now(), "workload.compact.ok", "compactor")
    except Exception as exc:
        ctx.trace.record(
            ctx.clock.now(), "workload.compact.failed", "compactor", type(exc).__name__
        )
    ctx.chaos_oss.heal()
    try:
        compactor.compact_all()
        ctx.trace.record(ctx.clock.now(), "workload.compact.ok", "compactor")
    except Exception as exc:
        ctx.trace.record(
            ctx.clock.now(), "workload.compact.retry_failed", "compactor", type(exc).__name__
        )


def _torn_upload_retry_storm(ctx: ChaosContext) -> None:
    """Several uploads tear mid-PUT under sustained flakiness; the
    retrying uploader must repair the partial objects byte-for-byte."""
    for _ in range(8):
        ctx.write_batch(1, 60)
        ctx.write_batch(2, 60)
        ctx.advance(0.05)
    ctx.chaos_oss.tear_next_puts(3, 0.4)
    ctx.chaos_oss.set_error_rate(0.25)
    ctx.archive()
    ctx.chaos_oss.heal()
    ctx.archive()


def _crash_during_recovery(ctx: ChaosContext) -> None:
    """Crash a follower, recover it, and kill the leader while the
    recovered node is still catching up — the worst-timed double
    failure a three-replica group can survive."""
    shard = ctx.raft_shards()[0]
    follower = next(
        n for n in shard.raft._node_ids if n != shard.raft.leader().node_id
    )
    for _ in range(4):
        ctx.write_batch(1)
        ctx.advance(0.05)
    ctx.crash_replica(shard, follower)
    for _ in range(6):
        ctx.write_batch(1)
        ctx.advance(0.1)
    ctx.recover_replica(shard, follower)
    ctx.crash_leader(shard)
    for _ in range(8):
        ctx.write_batch(1)
        ctx.advance(0.25)


def _oss_outage_archive_retry(ctx: ChaosContext) -> None:
    """A full OSS brownout while the builder archives: every sealed
    memtable must survive in the shard and archive cleanly after the
    outage ends."""
    for _ in range(12):
        ctx.write_batch(1, 60)
        ctx.advance(0.05)
    ctx.chaos_oss.begin_outage()
    ctx.archive()  # fails; sealed memtables must be preserved
    for _ in range(4):
        ctx.write_batch(1, 60)
        ctx.advance(0.05)
    ctx.chaos_oss.end_outage()
    ctx.archive()


def _wal_torn_tail_crash(ctx: ChaosContext) -> None:
    """A plain (non-Raft) shard dies mid-fsync, leaving a torn WAL
    tail; the rebuilt shard must recover exactly the acked prefix."""
    shard = ctx.shards()[0]
    backend = ctx.wal_backends[f"shard{shard.shard_id}"]
    # Find a tenant routed to this shard so the torn append hits it.
    tenant = 1
    for candidate in range(1, 17):
        ctx.write_batch(candidate, 20)
        if backend.inner.segments():
            tenant = candidate
            break
    for _ in range(6):
        ctx.write_batch(tenant, 40)
        ctx.advance(0.02)
    backend.tear_next_appends(1, 0.5)
    ctx.write_batch(tenant, 40)  # fails mid-append: indeterminate
    ctx.crash_and_rebuild_plain_shard(shard)
    for _ in range(4):
        ctx.write_batch(tenant, 40)
        ctx.advance(0.02)
    ctx.archive()


def _session_insert_crash(ctx: ChaosContext) -> None:
    """Kill the Raft leader while a SQL session streams versioned
    INSERTs into an append-only table.  Every acked ``(run_id,
    version)`` pair must be readable exactly once after healing —
    INSERT-as-UPDATE never loses an acked version and never makes one
    visible twice."""
    store = ctx.store
    session = store.connect(1, store.issue_token(1))
    session.execute(
        "CREATE TABLE workflow_runs ("
        "run_id STRING, status STRING, payload STRING, VERSION BY run_id)"
    )
    single = session.prepare(
        "INSERT INTO workflow_runs (run_id, status, payload) VALUES (?, ?, ?)"
    )
    pair = session.prepare(
        "INSERT INTO workflow_runs (run_id, status, payload)"
        " VALUES (?, ?, ?), (?, ?, ?)"
    )

    def run_params(seq: int) -> tuple:
        run_id = f"run:{seq % 24}"
        status = "running" if seq % 3 else "succeeded"
        return (run_id, status, f"payload:{ctx.scenario}:{ctx.seed}:{seq}")

    def insert(statement, params, label: str) -> None:
        try:
            result = statement.execute(params)
        except Exception as exc:
            # The session stamps rows (versions included) before the
            # put, so the client knows exactly which rows are in limbo.
            ctx.ledger.record_indeterminate(1, session.last_insert_rows)
            ctx.trace.record(
                ctx.clock.now(),
                "workload.insert.failed",
                "session",
                f"{label} {type(exc).__name__}",
            )
        else:
            ctx.ledger.record_acked(1, result.rows)
            ctx.trace.record(
                ctx.clock.now(),
                "workload.insert.ok",
                "session",
                f"{label} rows={result.rows_inserted}",
            )

    seq = 0
    for _ in range(12):
        insert(single, run_params(seq), f"seq={seq}")
        seq += 1
        insert(pair, run_params(seq) + run_params(seq + 1), f"seq={seq},{seq + 1}")
        seq += 2
        ctx.advance(0.02)
    for shard in ctx.raft_shards():
        ctx.crash_leader(shard)
    for _ in range(10):
        insert(single, run_params(seq), f"seq={seq}")
        seq += 1
        insert(pair, run_params(seq) + run_params(seq + 1), f"seq={seq},{seq + 1}")
        seq += 2
        ctx.advance(0.25)
    ctx.archive()
    for _ in range(4):
        insert(single, run_params(seq), f"seq={seq}")
        seq += 1
        ctx.advance(0.05)


def _lifecycle_crash_sweep_offboard(ctx: ChaosContext) -> None:
    """OSS faults tear through an expiry sweep and a tenant offboard
    while other tenants keep writing, and a shard crashes mid-storm.

    Tenant 1 carries a retention policy (cold after 30m, expire after
    1h), tenant 2 is offboarded mid-fault, tenant 3 is the control with
    no policy.  The checker must find: no acked unexpired row lost,
    expiry converged exactly once after healing, and zero residue —
    catalog, OSS prefix, or query-visible — for the offboarded tenant.
    """
    store = ctx.store
    for tenant in (1, 2, 3):
        store.register_tenant(tenant)
    store.set_retention(1, ttl="1h", cold_age="30m")
    for _ in range(8):
        for tenant in (1, 2, 3):
            ctx.write_batch(tenant, 40)
        ctx.advance(0.05)
    ctx.archive()
    # Rows carry ts = BASE + seq µs-steps; lifecycle "now" values below
    # place the cold and expiry cutoffs *inside* the written range, so
    # newer tenant-1 rows must survive both transitions.
    base = 1_605_052_800_000_000
    half_hour_us = 1_800_000_000
    hour_us = 3_600_000_000
    ctx.cold_repack(base + 500_000 + half_hour_us)  # cold cutoff: seq < 500
    for tenant in (1, 3):
        ctx.write_batch(tenant, 40)
    ctx.archive()
    ctx.chaos_oss.set_error_rate(0.6)
    ctx.sweep_lifecycle(base + 800_000 + hour_us)  # expiry cutoff: seq < 800
    ctx.crash_and_rebuild_plain_shard(ctx.shards()[0])
    for _ in range(4):
        ctx.write_batch(3, 40)
        ctx.advance(0.1)
    ctx.offboard_tenant(2)  # export + delete, mid-fault
    for _ in range(3):
        ctx.write_batch(1, 40)
        ctx.write_batch(3, 40)
        ctx.advance(0.1)
    ctx.sweep_lifecycle(base + 800_000 + hour_us)  # retry still under fire


def _random_mixed(ctx: ChaosContext) -> None:
    """Nemesis: a seeded random storm of OSS, WAL, and network faults
    over a steady multi-tenant workload."""
    plan = Nemesis(ctx.rng).build_plan(ctx, duration_s=15.0, mean_gap_s=1.5, mean_hold_s=1.0)
    tenants = [1, 2, 3]
    step = 0
    while step < 60 or not plan.exhausted:
        ctx.pump_plan(plan)
        ctx.write_batch(tenants[step % len(tenants)], 40)
        if step % 10 == 9:
            ctx.archive()
        ctx.advance(0.25)
        step += 1
        if step > 400:
            break


SCENARIOS: dict[str, Scenario] = {
    spec.name: spec
    for spec in [
        Scenario(
            "leader_crash_mid_pipeline",
            "Shard leader crashes during streaming ingest; election mid-stream.",
            _leader_crash_mid_pipeline,
            config=dict(_RAFT),
        ),
        Scenario(
            "partition_during_archiving",
            "Leader partitioned from a follower while draining memtables to OSS.",
            _partition_during_archiving,
            config=dict(_RAFT),
        ),
        Scenario(
            "asymmetric_partition_ingest",
            "One-way partition starves a follower of heartbeats during ingest.",
            _asymmetric_partition_ingest,
            config=dict(_RAFT),
        ),
        Scenario(
            "oss_brownout_during_compaction",
            "OSS errors + torn uploads while the compactor rewrites blocks.",
            _oss_brownout_during_compaction,
        ),
        Scenario(
            "torn_upload_retry_storm",
            "Archive uploads tear mid-PUT under sustained OSS flakiness.",
            _torn_upload_retry_storm,
        ),
        Scenario(
            "crash_during_recovery",
            "Leader crashes while a recovered follower is still catching up.",
            _crash_during_recovery,
            config=dict(_RAFT),
        ),
        Scenario(
            "oss_outage_archive_retry",
            "Full OSS outage during archiving; memtables must survive and retry.",
            _oss_outage_archive_retry,
            config=dict(_RAFT),
        ),
        Scenario(
            "wal_torn_tail_crash",
            "Plain shard crashes mid-fsync with a torn WAL tail; rebuild recovers.",
            _wal_torn_tail_crash,
        ),
        Scenario(
            "session_insert_crash",
            "Raft leader crashes while a SQL session streams versioned INSERTs.",
            _session_insert_crash,
            config=dict(_RAFT),
            probe_table="workflow_runs",
            probe_key_columns=("run_id", "version"),
        ),
        Scenario(
            "lifecycle_crash_sweep_offboard",
            "OSS faults + a shard crash interrupt an expiry sweep and a tenant offboard.",
            _lifecycle_crash_sweep_offboard,
        ),
        Scenario(
            "random_mixed",
            "Seeded Nemesis storm: mixed OSS/WAL/network faults over steady load.",
            _random_mixed,
            config=dict(_RAFT),
        ),
    ]
}
