"""The chaos harness: build a cluster, hurt it, heal it, check it.

A run is fully described by ``(scenario, seed)``.  The runner derives
every random stream from that pair, drives all time through one
:class:`~repro.common.clock.VirtualClock`, and records everything that
happens to an :class:`~repro.chaos.events.EventTrace` — so re-running
the same pair reproduces the same trace byte for byte, and a failure
in CI is a repro recipe, not an anecdote.

Lifecycle::

    runner = ChaosRunner("leader_crash_mid_pipeline", seed=3)
    result = runner.run()
    assert result.ok, result.summary()

``run()`` builds the cluster with fault injectors planted at every
seam (OSS backend, WAL segment backends, Raft network), executes the
scenario body (workload interleaved with faults), heals everything,
quiesces, and hands the healed cluster to the
:class:`~repro.chaos.invariants.InvariantChecker`.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.chaos.events import EventTrace
from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.chaos.ledger import WriteLedger
from repro.chaos.oss_faults import ChaosObjectStore
from repro.chaos.wal_faults import FaultySegmentBackend
from repro.cluster.config import small_test_config
from repro.cluster.logstore import LogStore
from repro.common.clock import VirtualClock
from repro.common.errors import ChaosError, InvariantViolationError
from repro.obs.events import EventJournal
from repro.oss.store import InMemoryObjectStore

# Timestamp base for workload rows (microseconds): 2020-11-11 00:00:00,
# matching the rest of the test suite's data.
_BASE_TS = 1_605_052_800_000_000


def derive_seed(scenario: str, seed: int) -> int:
    """The master RNG seed for a run — stable across processes."""
    return zlib.crc32(f"{scenario}:{seed}".encode())


class ChaosContext:
    """Everything a scenario body needs: the cluster, the injectors,
    the workload helpers, and the bookkeeping that keeps the run
    deterministic and checkable."""

    def __init__(
        self,
        scenario: str,
        seed: int,
        store: LogStore,
        chaos_oss: ChaosObjectStore,
        wal_backends: dict[str, FaultySegmentBackend],
        trace: EventTrace,
        rng: random.Random,
        ledger_key_columns: tuple[str, ...] = ("log",),
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.store = store
        self.chaos_oss = chaos_oss
        self.wal_backends = wal_backends
        self.trace = trace
        self.rng = rng
        self.clock = store.clock
        self.ledger = WriteLedger(key_columns=ledger_key_columns)
        self.crashed: list[tuple[object, str]] = []  # (shard, node_id)
        self._batch_seq = 0
        # Lifecycle bookkeeping for the invariant checker: the highest
        # expiry cutoff each tenant was swept at (rows older than it
        # are *allowed* to be gone) and the tenants offboarded mid-run
        # (all their rows must be gone).
        self.expiry_cutoffs: dict[int, int] = {}
        self.offboarded: set[int] = set()
        self._lifecycle_now_ts: int | None = None

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        """Record to the chaos trace AND the cluster's event journal.

        The trace is the chaos harness's own byte-stable transcript; the
        journal is the cluster-wide operator view.  Mirroring the fault
        and workload events into the journal lets ``_system.events``
        show chaos injections next to seals/elections, and lets the
        determinism tests compare whole journals across same-seed runs.
        """
        self.trace.record(self.clock.now(), kind, target, detail)
        self.store.obs.journal.emit(f"chaos.{kind}", target, detail=detail)

    # -- topology --------------------------------------------------------

    def shards(self) -> list:
        result = []
        for worker in self.store.workers.values():
            result.extend(worker.shards.values())
        result.sort(key=lambda s: s.shard_id)
        return result

    def raft_shards(self) -> list:
        return [s for s in self.shards() if s.raft is not None]

    def wal_backend_names(self) -> list[str]:
        return sorted(self.wal_backends)

    # -- workload --------------------------------------------------------

    def make_rows(self, tenant_id: int, count: int) -> list[dict]:
        """Deterministic rows with globally unique ``log`` keys."""
        rows = []
        for _ in range(count):
            seq = self._batch_seq
            self._batch_seq += 1
            rows.append(
                {
                    "tenant_id": tenant_id,
                    "ts": _BASE_TS + seq * 1_000,
                    "ip": f"10.0.0.{seq % 16}",
                    "api": f"/api/v{seq % 3}",
                    "latency": (seq * 37) % 500 + 1,
                    "fail": seq % 19 == 0,
                    "log": f"rid:{self.scenario}:{self.seed}:{tenant_id}:{seq}",
                }
            )
        return rows

    def write_batch(self, tenant_id: int, count: int = 50) -> bool:
        """Submit one batch; record the client-visible outcome."""
        rows = self.make_rows(tenant_id, count)
        try:
            self.store.put(tenant_id, rows)
        except Exception as exc:
            self.ledger.record_indeterminate(tenant_id, rows)
            self._record(
                "workload.put.failed",
                f"tenant:{tenant_id}",
                f"rows={count} {type(exc).__name__}",
            )
            return False
        self.ledger.record_acked(tenant_id, rows)
        self._record("workload.put.ok", f"tenant:{tenant_id}", f"rows={count}")
        return True

    def archive(self) -> bool:
        """One background archive pass; failures are survivable."""
        try:
            report = self.store.run_background_tasks()
        except Exception as exc:
            self._record("workload.archive.failed", "builder", type(exc).__name__)
            return False
        self._record(
            "workload.archive.ok", "builder", f"blocks={report.blocks_written}"
        )
        return True

    def advance(self, seconds: float) -> None:
        self.clock.advance(seconds)

    # -- lifecycle workload (sweeps / repacks / offboarding under fire) --

    def sweep_lifecycle(self, now_ts: int) -> bool:
        """One expiry sweep at ``now_ts``; survivable under faults.

        Records each retention-bearing tenant's cutoff so the checker
        knows which acked rows became expiry-eligible.
        """
        for info in self.store.catalog.tenants():
            if info.retention_s is None:
                continue
            cutoff = self.store.catalog.retention_cutoff(now_ts, info.retention_s)
            previous = self.expiry_cutoffs.get(info.tenant_id)
            if previous is None or cutoff > previous:
                self.expiry_cutoffs[info.tenant_id] = cutoff
        if self._lifecycle_now_ts is None or now_ts > self._lifecycle_now_ts:
            self._lifecycle_now_ts = now_ts
        try:
            report = self.store.sweep_expired(now_ts)
        except Exception as exc:
            self._record("workload.sweep.failed", "lifecycle", type(exc).__name__)
            return False
        self._record(
            "workload.sweep.ok",
            "lifecycle",
            f"expired={report.blocks_expired} orphans={report.orphans_swept}",
        )
        return True

    def cold_repack(self, now_ts: int) -> bool:
        """One cold-tier repack pass; survivable under faults."""
        try:
            results = self.store.cold_compact(now_ts)
        except Exception as exc:
            self._record("workload.cold.failed", "lifecycle", type(exc).__name__)
            return False
        packed = sum(r.blocks_before for r in results if r.repacked)
        self._record("workload.cold.ok", "lifecycle", f"blocks_packed={packed}")
        return True

    def offboard_tenant(self, tenant_id: int, export: bool = True) -> bool:
        """Offboard one tenant under the active fault schedule.

        The tenant is marked offboarded regardless of outcome — after
        healing, :meth:`heal_and_quiesce` re-runs the (idempotent)
        offboard and the checker demands zero residue.
        """
        self.offboarded.add(tenant_id)
        try:
            report = self.store.lifecycle.offboarder.offboard(
                tenant_id, export=export
            )
        except Exception as exc:
            self._record(
                "workload.offboard.failed",
                f"tenant:{tenant_id}",
                type(exc).__name__,
            )
            return False
        self._record(
            "workload.offboard.ok",
            f"tenant:{tenant_id}",
            f"deleted={report.deleted_objects} failed={report.failed_deletes} "
            f"verified={report.verified}",
        )
        return report.verified

    # -- fault helpers (trace-recording wrappers) ------------------------

    def _shard_target(self, shard, node_id: str = "") -> str:
        return node_id if node_id else f"shard{shard.shard_id}"

    def crash_replica(self, shard, node_id: str) -> bool:
        if (shard, node_id) in self.crashed:
            return False
        if shard.raft is not None and shard.raft.nodes[node_id].stopped:
            return False
        shard.crash_replica(node_id)
        self.crashed.append((shard, node_id))
        self._record("fault.raft.crash", node_id)
        return True

    def crash_leader(self, shard) -> str | None:
        leader = shard.raft.leader() if shard.raft is not None else None
        if leader is None:
            return None
        return leader.node_id if self.crash_replica(shard, leader.node_id) else None

    def recover_replica(self, shard, node_id: str) -> bool:
        if (shard, node_id) not in self.crashed:
            return False
        shard.recover_replica(node_id)
        self.crashed.remove((shard, node_id))
        self._record("fault.raft.recover", node_id)
        return True

    def partition(self, shard, a: str, b: str) -> None:
        shard.raft.network.partition(a, b)
        self._record("fault.net.partition", f"{a}|{b}")

    def partition_one_way(self, shard, src: str, dst: str) -> None:
        shard.raft.network.partition_one_way(src, dst)
        self._record("fault.net.partition_one_way", f"{src}->{dst}")

    def heal_partition(self, shard, a: str, b: str) -> None:
        shard.raft.network.heal(a, b)
        self._record("fault.net.heal", f"{a}|{b}")

    def corrupt_wal_tail(self, backend_name: str) -> bool:
        """Flip a byte in a (crashed) replica's WAL tail, if it has one."""
        backend = self.wal_backends.get(backend_name)
        return backend.corrupt_tail() if backend is not None else False

    def crash_and_rebuild_plain_shard(self, shard):
        """Simulated process crash of a non-Raft shard.

        The in-memory row store dies with the process; the WAL segment
        backend is the durable medium and survives.  Rebuilding the
        shard over the same backend runs torn-tail repair and WAL
        replay — exactly what a restarted worker would do.
        """
        from repro.cluster.shard import Shard

        if shard.raft is not None:
            raise ChaosError("crash_and_rebuild_plain_shard needs a non-Raft shard")
        backend = self.wal_backends[f"shard{shard.shard_id}"]
        self._record("fault.shard.crash", f"shard{shard.shard_id}")
        config = self.store.config
        rebuilt = Shard(
            shard.shard_id,
            shard.worker_id,
            shard.capacity_rps,
            shard.seal_rows,
            shard.seal_bytes,
            self.clock,
            use_raft=False,
            wal_backend=backend,
            write_ack=config.write_ack,
            wal_fsync_s=config.wal_fsync_s,
            seed=config.seed,
            obs=self.store.obs,
        )
        self.store.workers[shard.worker_id].shards[shard.shard_id] = rebuilt
        self._record(
            "fault.shard.rebuilt",
            f"shard{shard.shard_id}",
            f"rows_recovered={rebuilt.pending_rows()}",
        )
        return rebuilt

    # -- plan pumping ----------------------------------------------------

    def pump_plan(self, plan) -> None:
        """Fire every plan action that is due at the current time."""
        for action in plan.pop_due(self.clock.now()):
            self._record("plan.fire", action.name)
            action.apply()

    # -- heal + quiesce --------------------------------------------------

    def heal_and_quiesce(self) -> None:
        """Clear every fault and drive the cluster to a settled state."""
        self._record("phase.heal", "cluster")
        self.chaos_oss.heal()
        for backend in self.wal_backends.values():
            backend.heal()
        for shard in self.raft_shards():
            shard.raft.network.heal_all()
        for shard, node_id in sorted(self.crashed, key=lambda c: c[1]):
            shard.recover_replica(node_id)
            self._record("fault.raft.recover", node_id)
        self.crashed.clear()
        # Let elections finish and recovered replicas catch up.
        self.advance(2.0)
        self._retry("settle", self.store.settle_writes)
        self._retry("flush", self.store.flush_all)
        self.store.builder.sweep_orphans()
        compactor = getattr(self.store, "compactor", None)
        if compactor is not None:
            compactor.sweep_orphans()
        # Lifecycle convergence: offboards re-run (idempotent — they
        # re-delete whatever the mid-run crash left), the last sweep
        # replays at its recorded cutoff (expiry is exactly-once, so a
        # replay only picks up what the crash dropped), and queued
        # orphans drain.  The checker then proves zero residue.
        for tenant_id in sorted(self.offboarded):
            self.store.lifecycle.offboarder.offboard(tenant_id, export=False)
        if self._lifecycle_now_ts is not None:
            self.store.lifecycle.sweeper.sweep(self._lifecycle_now_ts)
        self.store.lifecycle.sweeper.sweep_orphans()
        self._record("phase.quiesced", "cluster")

    def _retry(self, what: str, fn, rounds: int = 30, pause_s: float = 0.5) -> None:
        last: Exception | None = None
        for _ in range(rounds):
            try:
                fn()
                return
            except Exception as exc:  # leaderless windows, stragglers
                last = exc
                self.advance(pause_s)
        raise ChaosError(f"cluster failed to {what} after healing: {last!r}") from last


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    scenario: str
    seed: int
    trace: EventTrace
    ledger: WriteLedger
    violations: list[InvariantViolation] = field(default_factory=list)
    # The cluster's event journal (chaos events mirrored alongside the
    # cluster's own seals/elections) — compare dump()s across same-seed
    # runs to prove whole-cluster determinism, not just trace stability.
    journal: EventJournal | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def digest(self) -> str:
        return self.trace.digest()

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [
            f"chaos run {self.scenario} seed={self.seed}: {status}",
            f"  acked rows: {self.ledger.acked_count()}  "
            f"indeterminate: {self.ledger.indeterminate_count()}",
            f"  events: {len(self.trace)}  digest: {self.digest[:16]}",
        ]
        lines.extend(f"  {v.format()}" for v in self.violations)
        return "\n".join(lines)


class ChaosRunner:
    """Build, break, heal, and check one cluster from ``(scenario, seed)``."""

    def __init__(self, scenario: str, seed: int = 0, config_overrides: dict | None = None):
        from repro.chaos.scenarios import SCENARIOS

        if scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise ChaosError(f"unknown scenario {scenario!r}; known: {known}")
        self._spec = SCENARIOS[scenario]
        self.scenario = scenario
        self.seed = seed
        self._overrides = config_overrides or {}

    def build_context(self) -> ChaosContext:
        master = derive_seed(self.scenario, self.seed)
        trace = EventTrace()
        clock = VirtualClock()
        chaos_oss = ChaosObjectStore(
            InMemoryObjectStore(), clock, trace=trace, seed=master + 1
        )
        wal_backends: dict[str, FaultySegmentBackend] = {}

        def wal_backend_factory(name: str) -> FaultySegmentBackend:
            backend = FaultySegmentBackend(name, clock=clock, trace=trace)
            wal_backends[name] = backend
            return backend

        overrides = dict(
            n_workers=2,
            shards_per_worker=1,
            seal_rows=200,
            block_rows=64,
            target_rows_per_logblock=400,
            tracing_enabled=False,
            seed=master,
        )
        overrides.update(self._spec.config)
        overrides.update(self._overrides)
        config = small_test_config(wal_backend_factory=wal_backend_factory, **overrides)
        store = LogStore.create(config=config, backend=chaos_oss, clock=clock)
        ctx = ChaosContext(
            scenario=self.scenario,
            seed=self.seed,
            store=store,
            chaos_oss=chaos_oss,
            wal_backends=wal_backends,
            trace=trace,
            rng=random.Random(master),
            ledger_key_columns=self._spec.probe_key_columns,
        )
        ctx._record("phase.start", self.scenario, f"seed={self.seed}")
        return ctx

    def run(self, check: bool = True) -> ChaosResult:
        ctx = self.build_context()
        self._spec.body(ctx)
        ctx.heal_and_quiesce()
        violations: list[InvariantViolation] = []
        if check:
            checker = InvariantChecker(
                ctx.store,
                ctx.ledger,
                trace=ctx.trace,
                table=self._spec.probe_table,
                expiry_cutoffs=ctx.expiry_cutoffs,
                offboarded=ctx.offboarded,
            )
            violations = checker.check_all()
        self._export_metrics(ctx, violations)
        return ChaosResult(
            scenario=self.scenario,
            seed=self.seed,
            trace=ctx.trace,
            ledger=ctx.ledger,
            violations=violations,
            journal=ctx.store.obs.journal,
        )

    def run_or_raise(self) -> ChaosResult:
        result = self.run()
        if not result.ok:
            raise InvariantViolationError(result.summary())
        return result

    def _export_metrics(self, ctx: ChaosContext, violations) -> None:
        registry = ctx.store.obs.registry
        registry.counter(
            "logstore_chaos_events_total", "Events recorded by the chaos trace."
        ).add(len(ctx.trace))
        registry.counter(
            "logstore_chaos_faults_injected_total", "OSS faults injected."
        ).add(ctx.chaos_oss.faults_injected)
        registry.counter(
            "logstore_chaos_acked_rows_total", "Rows acked to the chaos workload."
        ).add(ctx.ledger.acked_count())
        registry.counter(
            "logstore_chaos_violations_total", "Invariant violations found."
        ).add(len(violations))
