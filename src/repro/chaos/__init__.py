"""repro.chaos: deterministic fault injection and invariant checking.

The simulated cluster (virtual clock, simulated network, in-memory OSS)
makes FoundationDB-style deterministic simulation testing possible: a
chaos run is fully described by ``(scenario, seed)``, every fault and
workload op lands on the virtual clock in a reproducible order, and the
run emits an event trace whose bytes are identical across re-runs.

Pieces:

* :mod:`repro.chaos.events` — the deterministic event trace;
* :mod:`repro.chaos.oss_faults` — object-store fault injector (errors,
  outages, latency spikes, throttling, torn uploads);
* :mod:`repro.chaos.wal_faults` — WAL segment-backend faults (failed
  fsync, torn tail, checksum corruption);
* :mod:`repro.chaos.ledger` — the write ledger tracking which rows the
  cluster acknowledged (the ground truth invariants are checked
  against);
* :mod:`repro.chaos.plan` — :class:`FaultPlan`/:class:`Nemesis`, the
  seeded fault scheduler;
* :mod:`repro.chaos.invariants` — :class:`InvariantChecker`;
* :mod:`repro.chaos.runner` — :class:`ChaosRunner`/:class:`ChaosContext`;
* :mod:`repro.chaos.scenarios` — the scenario library.
"""

from repro.chaos.events import ChaosEvent, EventTrace
from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.chaos.ledger import WriteLedger
from repro.chaos.oss_faults import ChaosObjectStore
from repro.chaos.plan import FaultPlan, Nemesis
from repro.chaos.runner import ChaosContext, ChaosResult, ChaosRunner, derive_seed
from repro.chaos.scenarios import SCENARIOS
from repro.chaos.wal_faults import FaultySegmentBackend

__all__ = [
    "ChaosContext",
    "ChaosEvent",
    "ChaosObjectStore",
    "derive_seed",
    "ChaosResult",
    "ChaosRunner",
    "EventTrace",
    "FaultPlan",
    "FaultySegmentBackend",
    "InvariantChecker",
    "InvariantViolation",
    "Nemesis",
    "SCENARIOS",
    "WriteLedger",
]
