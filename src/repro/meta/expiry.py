"""Data expiration tasks (§3: "cleaning up expired data"; §3.1: "After
the data expires, the task manager will issue a task to delete the
expired LogBlocks").

Because tenant data is physically isolated into per-tenant LogBlocks on
OSS, expiry is a metadata lookup plus per-object DELETEs — no
compaction or rewrite of other tenants' data is ever needed, which is
exactly the benefit the paper claims for its hybrid multi-tenant layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import NoSuchKey
from repro.meta.catalog import Catalog, LogBlockEntry
from repro.oss.metered import MeteredObjectStore


@dataclass
class ExpiryReport:
    """What one expiry sweep deleted."""

    blocks_deleted: int = 0
    bytes_reclaimed: int = 0
    tenants_touched: set[int] = field(default_factory=set)


class ExpiryTask:
    """Periodic task that deletes LogBlocks past their tenant's retention."""

    def __init__(self, catalog: Catalog, store: MeteredObjectStore, bucket: str) -> None:
        self._catalog = catalog
        self._store = store
        self._bucket = bucket

    def expired_blocks(self, now_ts: int) -> list[LogBlockEntry]:
        """Blocks whose newest row is older than the tenant's retention.

        ``now_ts`` is in the same (microsecond) unit as row timestamps.
        """
        expired: list[LogBlockEntry] = []
        for info in self._catalog.tenants():
            if info.retention_s is None:
                continue
            cutoff = now_ts - int(info.retention_s * 1_000_000)
            expired.extend(block for block in info.blocks if block.max_ts < cutoff)
        return expired

    def _delete_backing(self, block: LogBlockEntry) -> None:
        """Delete a dropped block's backing object, if any remains.

        Hot blocks own their object outright; a cold block shares a
        tar-packed segment with siblings, so the segment is deleted
        only once its last member leaves the catalog.
        """
        if block.segment_path is None:
            target = block.path
        elif self._catalog.segment_refcount(block.segment_path) == 0:
            target = block.segment_path
        else:
            return
        try:
            self._store.delete(self._bucket, target)
        except NoSuchKey:
            pass  # already gone; the catalog entry is dropped regardless

    def run(self, now_ts: int) -> ExpiryReport:
        """Delete all expired blocks from OSS and the catalog."""
        report = ExpiryReport()
        for block in self.expired_blocks(now_ts):
            self._catalog.remove_block(block)
            self._delete_backing(block)
            report.blocks_deleted += 1
            report.bytes_reclaimed += block.size_bytes
            report.tenants_touched.add(block.tenant_id)
        return report

    def purge_tenant(self, tenant_id: int) -> ExpiryReport:
        """Delete *all* data of one tenant (account closure)."""
        report = ExpiryReport()
        for block in self._catalog.drop_tenant(tenant_id):
            self._delete_backing(block)
            report.blocks_deleted += 1
            report.bytes_reclaimed += block.size_bytes
            report.tenants_touched.add(tenant_id)
        return report
