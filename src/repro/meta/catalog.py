"""Controller-side metadata: tenants, schemas, and the LogBlock map.

§3.1: "the metadata manager in the controller will update the
information of each tenant, including the path, size and timestamp
range of the new LogBlocks."  The LogBlock map is the first filter of
the data-skipping strategy (Figure 8 step 1): given ``tenant_id`` and a
timestamp range, return only the LogBlocks that can contain matches.

Each tenant owns an OSS directory (``tenants/<id>/``) of LogBlocks in
chronological order, plus a retention policy used by the expiry task.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from dataclasses import dataclass, field

from repro.common.errors import CatalogError, TenantNotFound
from repro.logblock.schema import TableSchema

# Storage tiers for a LogBlock.  Hot blocks are standalone OSS objects;
# cold blocks live as members inside a tar-packed segment object and
# carry (segment_path, segment_offset, segment_length) locating their
# bytes within it.
TIER_HOT = "hot"
TIER_COLD = "cold"


@dataclass(frozen=True)
class LogBlockEntry:
    """One row of the LogBlock map: ``<tenant_id, min_ts, max_ts>`` → path."""

    tenant_id: int
    min_ts: int
    max_ts: int
    path: str
    size_bytes: int
    row_count: int
    tier: str = TIER_HOT
    segment_path: str | None = None
    segment_offset: int = 0
    segment_length: int = 0

    def overlaps(self, min_ts: int | None, max_ts: int | None) -> bool:
        """Whether this block's time range intersects [min_ts, max_ts]."""
        if min_ts is not None and self.max_ts < min_ts:
            return False
        if max_ts is not None and self.min_ts > max_ts:
            return False
        return True

    def covered_by(
        self,
        low: int | None,
        high: int | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> bool:
        """Whether every row's timestamp provably falls inside the bound.

        The builder guarantees ``[min_ts, max_ts]`` brackets every row
        of the block, so full coverage lets the tier-1 aggregate
        pushdown answer COUNT(*)/MIN(ts)/MAX(ts) from this entry alone.
        """
        if low is not None:
            if low_inclusive:
                if self.min_ts < low:
                    return False
            elif self.min_ts <= low:
                return False
        if high is not None:
            if high_inclusive:
                if self.max_ts > high:
                    return False
            elif self.max_ts >= high:
                return False
        return True

    def sort_key(self):
        return (self.min_ts, self.max_ts, self.path)

    def age_key(self):
        """Ordering for the retention index: oldest ``max_ts`` first."""
        return (self.max_ts, self.path)

    @property
    def object_path(self) -> str:
        """The OSS object actually holding this block's bytes."""
        return self.segment_path if self.segment_path is not None else self.path


@dataclass(frozen=True)
class VersionSpec:
    """Append-only versioned-table declaration (``VERSION BY key``).

    ``key_column`` identifies the logical entity; ``version_column``
    orders its versions (stamped at ingest when absent).  A read of the
    table's *current* state keeps only the greatest version per key.
    """

    key_column: str
    version_column: str


@dataclass
class TenantInfo:
    """Registered tenant with its lifecycle policy.

    ``retention_s`` of ``None`` means keep forever (archival tenants);
    otherwise LogBlocks whose ``max_ts`` is older than ``now -
    retention_s`` are expired (§3.1 "flexible data expiration policies").
    """

    tenant_id: int
    name: str = ""
    retention_s: float | None = None
    created_at: float = 0.0
    total_bytes: int = 0
    total_rows: int = 0
    blocks: list[LogBlockEntry] = field(default_factory=list)
    # Lifecycle policy + bookkeeping (repro.lifecycle).  ``cold_age_s``
    # of None disables cold tiering; ``expired_blocks_total`` counts
    # blocks dropped by retention over the tenant's lifetime.
    cold_age_s: float | None = None
    expired_blocks_total: int = 0
    # Retention index: the same entries as ``blocks``, ordered by
    # (max_ts, path) so expiry candidate selection is a bisect + slice
    # — O(expired blocks) examined, never O(catalog).
    blocks_by_age: list[LogBlockEntry] = field(default_factory=list, repr=False)

    def directory(self) -> str:
        return f"tenants/{self.tenant_id}/"


class Catalog:
    """Thread-safe tenant + LogBlock-map registry.

    Also the schema authority: §3's controller "manages the database
    schema and guarantees schema consistency.  When performing DDL
    operations, the controller will update the catalog and synchronize
    the changes to each broker" — brokers read :attr:`schema` live, so
    an :meth:`update_schema` is visible to every subsequent plan.
    """

    def __init__(self, schema: TableSchema) -> None:
        self._schema = schema
        self._schema_version = 1
        self._version_spec: VersionSpec | None = None
        self._tenants: dict[int, TenantInfo] = {}
        # segment object path -> number of live catalog entries packed
        # inside it; a cold segment object may be deleted only once its
        # refcount drops to zero.
        self._segment_refs: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def version_spec(self) -> VersionSpec | None:
        return self._version_spec

    def set_version_spec(self, key_column: str, version_column: str) -> None:
        """Declare the schema's table as append-only versioned."""
        self._schema.column(key_column)
        self._schema.column(version_column)
        self._version_spec = VersionSpec(key_column, version_column)

    def clear_version_spec(self) -> None:
        self._version_spec = None

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def schema_version(self) -> int:
        return self._schema_version

    def update_schema(self, new_schema: TableSchema) -> int:
        """Apply an additive DDL; returns the new schema version.

        Compatibility rules: same table name; every existing column is
        preserved with identical type/index/tokenize; new columns may
        only be appended.  LogBlocks written under older versions stay
        readable (they are self-contained) — readers surface the new
        columns as nulls for old blocks.
        """
        with self._lock:
            current = self._schema
            if new_schema.name != current.name:
                raise CatalogError(
                    f"cannot rename table {current.name!r} to {new_schema.name!r}"
                )
            if len(new_schema.columns) < len(current.columns):
                raise CatalogError("dropping columns is not supported")
            for old_col, new_col in zip(current.columns, new_schema.columns):
                if old_col != new_col:
                    raise CatalogError(
                        f"column {old_col.name!r} changed; only additive DDL is allowed"
                    )
            self._schema = new_schema
            self._schema_version += 1
            return self._schema_version

    def add_column(self, spec) -> int:
        """Convenience DDL: append one column."""
        new_schema = TableSchema(self._schema.name, self._schema.columns + (spec,))
        return self.update_schema(new_schema)

    def replace_schema(self, new_schema: TableSchema) -> int:
        """Non-additive DDL: swap the table definition wholesale.

        Only legal while no LogBlocks exist (front-door CREATE TABLE on
        a fresh store) — archived blocks were written under the old
        definition and this class has no migration story for them.
        Clears any versioned-table declaration; the caller re-applies
        it against the new schema.
        """
        with self._lock:
            for info in self._tenants.values():
                if info.blocks:
                    raise CatalogError(
                        "cannot replace the schema once LogBlocks exist "
                        f"(tenant {info.tenant_id} has {len(info.blocks)})"
                    )
            self._schema = new_schema
            self._schema_version += 1
            self._version_spec = None
            return self._schema_version

    # -- tenants -----------------------------------------------------------

    def register_tenant(
        self,
        tenant_id: int,
        name: str = "",
        retention_s: float | None = None,
        created_at: float = 0.0,
    ) -> TenantInfo:
        with self._lock:
            if tenant_id in self._tenants:
                raise CatalogError(f"tenant {tenant_id} already registered")
            info = TenantInfo(tenant_id, name, retention_s, created_at)
            self._tenants[tenant_id] = info
            return info

    def ensure_tenant(self, tenant_id: int, created_at: float = 0.0) -> TenantInfo:
        """Get-or-create (auto-registration on first write)."""
        with self._lock:
            info = self._tenants.get(tenant_id)
            if info is None:
                info = TenantInfo(tenant_id, created_at=created_at)
                self._tenants[tenant_id] = info
            return info

    def tenant(self, tenant_id: int) -> TenantInfo:
        with self._lock:
            info = self._tenants.get(tenant_id)
        if info is None:
            raise TenantNotFound(f"tenant {tenant_id} is not registered")
        return info

    def tenants(self) -> list[TenantInfo]:
        with self._lock:
            return list(self._tenants.values())

    def set_retention(self, tenant_id: int, retention_s: float | None) -> None:
        self.tenant(tenant_id).retention_s = retention_s

    def set_cold_age(self, tenant_id: int, cold_age_s: float | None) -> None:
        self.tenant(tenant_id).cold_age_s = cold_age_s

    def note_expired(self, tenant_id: int, n_blocks: int = 1) -> None:
        """Record blocks dropped by retention (lifetime counter)."""
        info = self.tenant(tenant_id)
        with self._lock:
            info.expired_blocks_total += n_blocks

    def drop_tenant(self, tenant_id: int) -> list[LogBlockEntry]:
        """Unregister a tenant; returns its blocks for deletion."""
        with self._lock:
            info = self._tenants.pop(tenant_id, None)
            if info is not None:
                for entry in info.blocks:
                    if entry.segment_path is not None:
                        refs = self._segment_refs.get(entry.segment_path, 0) - 1
                        if refs <= 0:
                            self._segment_refs.pop(entry.segment_path, None)
                        else:
                            self._segment_refs[entry.segment_path] = refs
        if info is None:
            raise TenantNotFound(f"tenant {tenant_id} is not registered")
        return list(info.blocks)

    # -- LogBlock map ------------------------------------------------------

    def add_block(self, entry: LogBlockEntry) -> None:
        """Record a newly archived LogBlock."""
        info = self.ensure_tenant(entry.tenant_id)
        with self._lock:
            insort(info.blocks, entry, key=LogBlockEntry.sort_key)
            insort(info.blocks_by_age, entry, key=LogBlockEntry.age_key)
            info.total_bytes += entry.size_bytes
            info.total_rows += entry.row_count
            if entry.segment_path is not None:
                self._segment_refs[entry.segment_path] = (
                    self._segment_refs.get(entry.segment_path, 0) + 1
                )

    def remove_block(self, entry: LogBlockEntry) -> None:
        info = self.tenant(entry.tenant_id)
        with self._lock:
            try:
                info.blocks.remove(entry)
            except ValueError:
                raise CatalogError(f"block {entry.path} not in catalog") from None
            try:
                info.blocks_by_age.remove(entry)
            except ValueError:
                pass  # pre-index entries (restored snapshots) are tolerated
            info.total_bytes -= entry.size_bytes
            info.total_rows -= entry.row_count
            if entry.segment_path is not None:
                refs = self._segment_refs.get(entry.segment_path, 0) - 1
                if refs <= 0:
                    self._segment_refs.pop(entry.segment_path, None)
                else:
                    self._segment_refs[entry.segment_path] = refs

    def segment_refcount(self, segment_path: str) -> int:
        """Live catalog entries still packed inside a cold segment."""
        with self._lock:
            return self._segment_refs.get(segment_path, 0)

    def segment_paths(self) -> list[str]:
        """Every cold segment object with at least one live entry."""
        with self._lock:
            return sorted(self._segment_refs)

    def blocks_for(
        self,
        tenant_id: int,
        min_ts: int | None = None,
        max_ts: int | None = None,
    ) -> list[LogBlockEntry]:
        """LogBlock-map filter (Figure 8 step 1): prune by tenant + range."""
        try:
            info = self.tenant(tenant_id)
        except TenantNotFound:
            return []
        with self._lock:
            return [block for block in info.blocks if block.overlaps(min_ts, max_ts)]

    def all_blocks(self) -> list[LogBlockEntry]:
        with self._lock:
            out: list[LogBlockEntry] = []
            for info in self._tenants.values():
                out.extend(info.blocks)
            return out

    # -- retention index (repro.lifecycle) -----------------------------------

    @staticmethod
    def retention_cutoff(now_ts: int, retention_s: float) -> int:
        """Rows with ``ts < cutoff`` have outlived the TTL (µs clock)."""
        return now_ts - int(retention_s * 1_000_000)

    def expired_candidates(
        self, now_ts: int
    ) -> tuple[list[LogBlockEntry], int]:
        """Blocks every row of which has outlived its tenant's TTL.

        A block is expired iff ``max_ts < now - retention_s`` — partial
        overlap keeps the block (rows age out at block granularity, as
        in any immutable-segment store).  Selection bisects the
        per-tenant ``blocks_by_age`` index, so the scan examines exactly
        the expired entries: O(expired blocks) work plus O(log n) per
        tenant with a TTL, never O(catalog).

        Returns ``(candidates, entries_examined)``; the second element
        is the scan-cost bound asserted by tests and benchmarks.
        """
        candidates: list[LogBlockEntry] = []
        examined = 0
        with self._lock:
            for info in self._tenants.values():
                if info.retention_s is None or not info.blocks_by_age:
                    continue
                cutoff = self.retention_cutoff(now_ts, info.retention_s)
                idx = bisect_left(
                    info.blocks_by_age, cutoff, key=lambda b: b.max_ts
                )
                if idx:
                    candidates.extend(info.blocks_by_age[:idx])
                    examined += idx
        return candidates, examined

    def cold_candidates(
        self, now_ts: int, max_rows: int | None = None
    ) -> list[LogBlockEntry]:
        """Hot blocks old enough for the cold tier (per-tenant cold_age).

        The aged prefix comes from the same ``blocks_by_age`` bisect as
        expiry; within it only hot-tier entries (optionally below a row
        threshold) qualify — already-cold members are skipped.
        """
        out: list[LogBlockEntry] = []
        with self._lock:
            for info in self._tenants.values():
                if info.cold_age_s is None or not info.blocks_by_age:
                    continue
                cutoff = self.retention_cutoff(now_ts, info.cold_age_s)
                idx = bisect_left(
                    info.blocks_by_age, cutoff, key=lambda b: b.max_ts
                )
                for block in info.blocks_by_age[:idx]:
                    if block.tier != TIER_HOT:
                        continue
                    if max_rows is not None and block.row_count > max_rows:
                        continue
                    out.append(block)
        return out

    # -- accounting (per-tenant billing, §1/§3.1) ----------------------------

    def tenant_usage(self, tenant_id: int) -> tuple[int, int]:
        """(bytes, rows) archived for a tenant — the billing quantities."""
        info = self.tenant(tenant_id)
        return info.total_bytes, info.total_rows

    def usage_by_tenant(self) -> dict[int, int]:
        """tenant_id → archived bytes, for skew statistics (Figure 2)."""
        with self._lock:
            return {tid: info.total_bytes for tid, info in self._tenants.items()}
