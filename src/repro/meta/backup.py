"""Tenant backup, restore and migration tasks.

§3 motivates the tar packaging with "tasks like backup, migration, and
data expiration": because a tenant's data is a directory of immutable
packed LogBlocks plus catalog rows, backing a tenant up is a prefix
copy plus one manifest object, and restoring is the inverse — no other
tenant's data is read or written.

The backup manifest (``_backup/<tenant>/manifest.json``) records every
block's catalog entry so a restore can rebuild the LogBlock map without
parsing any data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import CatalogError, NoSuchKey, TenantNotFound
from repro.meta.catalog import Catalog, LogBlockEntry
from repro.oss.metered import MeteredObjectStore

MANIFEST_VERSION = 1


def _manifest_key(tenant_id: int) -> str:
    return f"_backup/{tenant_id}/manifest.json"


@dataclass
class BackupReport:
    """Outcome of one backup/restore/migration."""

    tenant_id: int
    blocks_copied: int = 0
    bytes_copied: int = 0
    blocks_skipped: int = 0  # already present at the destination
    entries: list[LogBlockEntry] = field(default_factory=list)


def _serialize_entries(tenant_id: int, entries: list[LogBlockEntry]) -> bytes:
    payload = {
        "version": MANIFEST_VERSION,
        "tenant_id": tenant_id,
        "blocks": [
            {
                "min_ts": entry.min_ts,
                "max_ts": entry.max_ts,
                "path": entry.path,
                "size_bytes": entry.size_bytes,
                "row_count": entry.row_count,
            }
            for entry in entries
        ],
    }
    return json.dumps(payload, indent=2).encode("utf-8")


def _deserialize_entries(data: bytes) -> tuple[int, list[LogBlockEntry]]:
    payload = json.loads(data.decode("utf-8"))
    if payload.get("version") != MANIFEST_VERSION:
        raise CatalogError(f"unsupported backup manifest version {payload.get('version')}")
    tenant_id = payload["tenant_id"]
    entries = [
        LogBlockEntry(
            tenant_id=tenant_id,
            min_ts=block["min_ts"],
            max_ts=block["max_ts"],
            path=block["path"],
            size_bytes=block["size_bytes"],
            row_count=block["row_count"],
        )
        for block in payload["blocks"]
    ]
    return tenant_id, entries


class BackupTask:
    """Copies one tenant's LogBlocks + catalog state between stores."""

    def __init__(self, catalog: Catalog, store: MeteredObjectStore, bucket: str) -> None:
        self._catalog = catalog
        self._store = store
        self._bucket = bucket

    def backup_tenant(
        self,
        tenant_id: int,
        destination: MeteredObjectStore,
        dest_bucket: str,
    ) -> BackupReport:
        """Copy every block of ``tenant_id`` plus a manifest object.

        Idempotent: blocks already present at the destination (immutable,
        same path) are skipped, so an interrupted backup can be re-run.
        """
        entries = self._catalog.blocks_for(tenant_id)
        if not entries:
            # Distinguish "no data" from "no such tenant".
            self._catalog.tenant(tenant_id)  # raises TenantNotFound
        report = BackupReport(tenant_id=tenant_id)
        destination.create_bucket(dest_bucket)
        for entry in entries:
            if destination.exists(dest_bucket, entry.path):
                report.blocks_skipped += 1
            else:
                blob = self._store.get(self._bucket, entry.path)
                destination.put(dest_bucket, entry.path, blob)
                report.blocks_copied += 1
                report.bytes_copied += len(blob)
            report.entries.append(entry)
        manifest = _serialize_entries(tenant_id, entries)
        key = _manifest_key(tenant_id)
        try:
            destination.delete(dest_bucket, key)  # manifests are replaceable
        except NoSuchKey:
            pass
        destination.put(dest_bucket, key, manifest)
        return report

    @staticmethod
    def restore_tenant(
        backup_store: MeteredObjectStore,
        backup_bucket: str,
        tenant_id: int,
        catalog: Catalog,
        destination: MeteredObjectStore,
        dest_bucket: str,
    ) -> BackupReport:
        """Rebuild a tenant from a backup into a (possibly fresh) cluster.

        Re-registers every block in ``catalog`` and copies the objects.
        Fails if the tenant already has blocks registered (restore into
        a clean slate, or purge first).
        """
        manifest = backup_store.get(backup_bucket, _manifest_key(tenant_id))
        manifest_tenant, entries = _deserialize_entries(manifest)
        if manifest_tenant != tenant_id:
            raise CatalogError(
                f"backup manifest is for tenant {manifest_tenant}, not {tenant_id}"
            )
        if catalog.blocks_for(tenant_id):
            raise CatalogError(
                f"tenant {tenant_id} already has data; purge before restoring"
            )
        report = BackupReport(tenant_id=tenant_id)
        for entry in entries:
            blob = backup_store.get(backup_bucket, entry.path)
            if destination.exists(dest_bucket, entry.path):
                report.blocks_skipped += 1
            else:
                destination.put(dest_bucket, entry.path, blob)
                report.blocks_copied += 1
                report.bytes_copied += len(blob)
            catalog.add_block(entry)
            report.entries.append(entry)
        return report

    def migrate_tenant(
        self,
        tenant_id: int,
        destination_catalog: Catalog,
        destination: MeteredObjectStore,
        dest_bucket: str,
        purge_source: bool = True,
    ) -> BackupReport:
        """Move a tenant to another cluster: backup + restore (+ purge)."""
        self.backup_tenant(tenant_id, destination, dest_bucket)
        try:
            info = self._catalog.tenant(tenant_id)
            destination_catalog.register_tenant(
                tenant_id, name=info.name, retention_s=info.retention_s
            )
        except TenantNotFound:
            raise
        except CatalogError:
            pass  # already registered at the destination
        report = self.restore_tenant(
            destination, dest_bucket, tenant_id, destination_catalog, destination, dest_bucket
        )
        if purge_source:
            from repro.meta.expiry import ExpiryTask

            ExpiryTask(self._catalog, self._store, self._bucket).purge_tenant(tenant_id)
        return report
