"""Controller metadata: tenant catalog, LogBlock map, expiry and backup."""

from repro.meta.backup import BackupReport, BackupTask
from repro.meta.catalog import Catalog, LogBlockEntry, TenantInfo
from repro.meta.expiry import ExpiryReport, ExpiryTask
from repro.meta.persistence import (
    load_catalog_into,
    rebuild_catalog_from_store,
    save_catalog,
)

__all__ = [
    "BackupReport",
    "BackupTask",
    "Catalog",
    "LogBlockEntry",
    "TenantInfo",
    "ExpiryReport",
    "ExpiryTask",
    "load_catalog_into",
    "rebuild_catalog_from_store",
    "save_catalog",
]
