"""Catalog persistence: the controller's metadata DB (Figure 3).

The catalog (tenants, retention policies, schema, LogBlock map) must
survive controller restarts.  Two mechanisms:

* **Snapshots** — :func:`save_catalog` writes a JSON snapshot into the
  object store under ``_meta/catalog/<seq>.json`` (objects are
  immutable, so each save is a new sequence number; old snapshots are
  pruned).  :func:`load_catalog_into` restores the newest snapshot into
  a live catalog.
* **Rebuild by scan** — :func:`rebuild_catalog_from_store` reconstructs
  the LogBlock map with no snapshot at all, by listing the tenant
  directories and reading each block's self-contained meta; the §3.2
  "self-contained" design makes the catalog always recoverable from
  the data.
"""

from __future__ import annotations

import json
import re

from repro.common.errors import CatalogError
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import ColumnSpec, ColumnType, IndexType, TableSchema
from repro.meta.catalog import TIER_COLD, TIER_HOT, Catalog, LogBlockEntry
from repro.tarpack.reader import PackReader

SNAPSHOT_PREFIX = "_meta/catalog/"
SNAPSHOT_VERSION = 1
KEEP_SNAPSHOTS = 3

_BLOCK_PATH_RE = re.compile(r"^tenants/(\d+)/.+\.lgb$")
_SEGMENT_PATH_RE = re.compile(r"^tenants/(\d+)/cold/.+\.seg$")


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": col.name,
                "ctype": col.ctype.name,
                "index": col.index.name,
                "tokenize": col.tokenize,
            }
            for col in schema.columns
        ],
    }


def _schema_from_json(payload: dict) -> TableSchema:
    columns = tuple(
        ColumnSpec(
            col["name"],
            ColumnType[col["ctype"]],
            IndexType[col["index"]],
            col["tokenize"],
        )
        for col in payload["columns"]
    )
    return TableSchema(payload["name"], columns)


def _block_to_json(b: LogBlockEntry) -> dict:
    payload = {
        "min_ts": b.min_ts,
        "max_ts": b.max_ts,
        "path": b.path,
        "size_bytes": b.size_bytes,
        "row_count": b.row_count,
    }
    # Tier fields are written only for non-hot entries, so snapshots
    # taken before cold tiering existed stay byte-compatible.
    if b.tier != TIER_HOT:
        payload["tier"] = b.tier
        payload["segment_path"] = b.segment_path
        payload["segment_offset"] = b.segment_offset
        payload["segment_length"] = b.segment_length
    return payload


def serialize_catalog(catalog: Catalog) -> bytes:
    """The catalog as a JSON snapshot."""
    tenants = []
    for info in sorted(catalog.tenants(), key=lambda t: t.tenant_id):
        tenant = {
            "tenant_id": info.tenant_id,
            "name": info.name,
            "retention_s": info.retention_s,
            "created_at": info.created_at,
            "blocks": [_block_to_json(b) for b in info.blocks],
        }
        if info.cold_age_s is not None:
            tenant["cold_age_s"] = info.cold_age_s
        if info.expired_blocks_total:
            tenant["expired_blocks_total"] = info.expired_blocks_total
        tenants.append(tenant)
    payload = {
        "version": SNAPSHOT_VERSION,
        "schema": _schema_to_json(catalog.schema),
        "schema_version": catalog.schema_version,
        "tenants": tenants,
    }
    return json.dumps(payload, indent=1).encode("utf-8")


def restore_catalog(catalog: Catalog, data: bytes) -> None:
    """Load a snapshot into a (fresh) catalog in place."""
    payload = json.loads(data.decode("utf-8"))
    if payload.get("version") != SNAPSHOT_VERSION:
        raise CatalogError(f"unsupported catalog snapshot version {payload.get('version')}")
    if catalog.tenants():
        raise CatalogError("restore requires an empty catalog")
    # The snapshot is the schema authority: install it directly (the
    # additive-DDL check applies to live changes, not to restores).
    catalog._schema = _schema_from_json(payload["schema"])
    catalog._schema_version = payload["schema_version"]
    for tenant in payload["tenants"]:
        info = catalog.register_tenant(
            tenant["tenant_id"],
            name=tenant["name"],
            retention_s=tenant["retention_s"],
            created_at=tenant["created_at"],
        )
        info.cold_age_s = tenant.get("cold_age_s")
        info.expired_blocks_total = tenant.get("expired_blocks_total", 0)
        for block in tenant["blocks"]:
            catalog.add_block(
                LogBlockEntry(
                    tenant_id=tenant["tenant_id"],
                    min_ts=block["min_ts"],
                    max_ts=block["max_ts"],
                    path=block["path"],
                    size_bytes=block["size_bytes"],
                    row_count=block["row_count"],
                    tier=block.get("tier", TIER_HOT),
                    segment_path=block.get("segment_path"),
                    segment_offset=block.get("segment_offset", 0),
                    segment_length=block.get("segment_length", 0),
                )
            )


def _snapshot_key(sequence: int) -> str:
    return f"{SNAPSHOT_PREFIX}{sequence:08d}.json"


def _existing_snapshots(store, bucket: str) -> list[int]:
    stats = store.list(bucket, SNAPSHOT_PREFIX)
    sequences = []
    for stat in stats:
        name = stat.key[len(SNAPSHOT_PREFIX):]
        if name.endswith(".json"):
            try:
                sequences.append(int(name[:-5]))
            except ValueError:
                continue
    return sorted(sequences)


def save_catalog(catalog: Catalog, store, bucket: str) -> str:
    """Write a new catalog snapshot; prunes old ones.  Returns its key."""
    sequences = _existing_snapshots(store, bucket)
    sequence = (sequences[-1] + 1) if sequences else 0
    key = _snapshot_key(sequence)
    store.put(bucket, key, serialize_catalog(catalog))
    for old in sequences[: max(0, len(sequences) + 1 - KEEP_SNAPSHOTS)]:
        store.delete(bucket, _snapshot_key(old))
    return key


def load_catalog_into(catalog: Catalog, store, bucket: str) -> bool:
    """Restore the newest snapshot into ``catalog``.

    Returns False (catalog untouched) when no snapshot exists.
    """
    sequences = _existing_snapshots(store, bucket)
    if not sequences:
        return False
    data = store.get(bucket, _snapshot_key(sequences[-1]))
    restore_catalog(catalog, data)
    return True


def rebuild_catalog_from_store(catalog: Catalog, store, bucket: str) -> int:
    """Disaster recovery: rebuild the LogBlock map by scanning OSS.

    Lists ``tenants/`` and reads each block's self-contained meta to
    recover row counts and timestamp ranges.  Tenant lifecycle metadata
    (names, retention) is not stored in blocks and comes back as
    defaults.  Returns the number of blocks registered.
    """
    if catalog.all_blocks():
        raise CatalogError("rebuild requires an empty LogBlock map")
    count = 0
    for stat in store.list(bucket, "tenants/"):
        match = _BLOCK_PATH_RE.match(stat.key)
        if match is not None:
            tenant_id = int(match.group(1))
            catalog.add_block(
                _entry_from_block_reader(
                    LogBlockReader(PackReader(store, bucket, stat.key)),
                    tenant_id=tenant_id,
                    path=stat.key,
                    size_bytes=stat.size,
                )
            )
            count += 1
            continue
        match = _SEGMENT_PATH_RE.match(stat.key)
        if match is not None:
            count += _rebuild_segment(catalog, store, bucket, stat.key, int(match.group(1)))
    return count


def _entry_from_block_reader(
    reader: LogBlockReader,
    tenant_id: int,
    path: str,
    size_bytes: int,
    tier: str = TIER_HOT,
    segment_path: str | None = None,
    segment_offset: int = 0,
    segment_length: int = 0,
) -> LogBlockEntry:
    """One catalog entry from a block's self-contained meta."""
    meta = reader.meta()
    ts_values = None
    if "ts" in meta.schema.column_names():
        sma = meta.column_sma("ts")
        ts_values = (sma.min_value, sma.max_value)
    if ts_values is None or ts_values[0] is None:
        raise CatalogError(f"block {path} has no ts range; cannot rebuild")
    return LogBlockEntry(
        tenant_id=tenant_id,
        min_ts=int(ts_values[0]),
        max_ts=int(ts_values[1]),
        path=path,
        size_bytes=size_bytes,
        row_count=meta.row_count,
        tier=tier,
        segment_path=segment_path,
        segment_offset=segment_offset,
        segment_length=segment_length,
    )


def _rebuild_segment(
    catalog: Catalog, store, bucket: str, segment_key: str, tenant_id: int
) -> int:
    """Re-register every cold member of one tar-packed segment.

    Cold members are themselves self-contained LogBlocks, so the
    segment manifest plus each member's meta recovers the full entries
    (path, extent, timestamp range, row count) with no snapshot.
    """
    from repro.tarpack.reader import SubrangeReader

    segment = PackReader(store, bucket, segment_key)
    count = 0
    for name in segment.member_names():
        start, length = segment.member_extent(name)
        member = SubrangeReader(store, bucket, segment_key, start, length)
        reader = LogBlockReader(PackReader(member, bucket, f"{segment_key}#{name}"))
        catalog.add_block(
            _entry_from_block_reader(
                reader,
                tenant_id=tenant_id,
                path=f"{segment_key}#{name}",
                size_bytes=length,
                tier=TIER_COLD,
                segment_path=segment_key,
                segment_offset=start,
                segment_length=length,
            )
        )
        count += 1
    return count
