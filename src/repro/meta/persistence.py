"""Catalog persistence: the controller's metadata DB (Figure 3).

The catalog (tenants, retention policies, schema, LogBlock map) must
survive controller restarts.  Two mechanisms:

* **Snapshots** — :func:`save_catalog` writes a JSON snapshot into the
  object store under ``_meta/catalog/<seq>.json`` (objects are
  immutable, so each save is a new sequence number; old snapshots are
  pruned).  :func:`load_catalog_into` restores the newest snapshot into
  a live catalog.
* **Rebuild by scan** — :func:`rebuild_catalog_from_store` reconstructs
  the LogBlock map with no snapshot at all, by listing the tenant
  directories and reading each block's self-contained meta; the §3.2
  "self-contained" design makes the catalog always recoverable from
  the data.
"""

from __future__ import annotations

import json
import re

from repro.common.errors import CatalogError
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import ColumnSpec, ColumnType, IndexType, TableSchema
from repro.meta.catalog import Catalog, LogBlockEntry
from repro.tarpack.reader import PackReader

SNAPSHOT_PREFIX = "_meta/catalog/"
SNAPSHOT_VERSION = 1
KEEP_SNAPSHOTS = 3

_BLOCK_PATH_RE = re.compile(r"^tenants/(\d+)/.+\.lgb$")


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": col.name,
                "ctype": col.ctype.name,
                "index": col.index.name,
                "tokenize": col.tokenize,
            }
            for col in schema.columns
        ],
    }


def _schema_from_json(payload: dict) -> TableSchema:
    columns = tuple(
        ColumnSpec(
            col["name"],
            ColumnType[col["ctype"]],
            IndexType[col["index"]],
            col["tokenize"],
        )
        for col in payload["columns"]
    )
    return TableSchema(payload["name"], columns)


def serialize_catalog(catalog: Catalog) -> bytes:
    """The catalog as a JSON snapshot."""
    payload = {
        "version": SNAPSHOT_VERSION,
        "schema": _schema_to_json(catalog.schema),
        "schema_version": catalog.schema_version,
        "tenants": [
            {
                "tenant_id": info.tenant_id,
                "name": info.name,
                "retention_s": info.retention_s,
                "created_at": info.created_at,
                "blocks": [
                    {
                        "min_ts": b.min_ts,
                        "max_ts": b.max_ts,
                        "path": b.path,
                        "size_bytes": b.size_bytes,
                        "row_count": b.row_count,
                    }
                    for b in info.blocks
                ],
            }
            for info in sorted(catalog.tenants(), key=lambda t: t.tenant_id)
        ],
    }
    return json.dumps(payload, indent=1).encode("utf-8")


def restore_catalog(catalog: Catalog, data: bytes) -> None:
    """Load a snapshot into a (fresh) catalog in place."""
    payload = json.loads(data.decode("utf-8"))
    if payload.get("version") != SNAPSHOT_VERSION:
        raise CatalogError(f"unsupported catalog snapshot version {payload.get('version')}")
    if catalog.tenants():
        raise CatalogError("restore requires an empty catalog")
    # The snapshot is the schema authority: install it directly (the
    # additive-DDL check applies to live changes, not to restores).
    catalog._schema = _schema_from_json(payload["schema"])
    catalog._schema_version = payload["schema_version"]
    for tenant in payload["tenants"]:
        catalog.register_tenant(
            tenant["tenant_id"],
            name=tenant["name"],
            retention_s=tenant["retention_s"],
            created_at=tenant["created_at"],
        )
        for block in tenant["blocks"]:
            catalog.add_block(
                LogBlockEntry(
                    tenant_id=tenant["tenant_id"],
                    min_ts=block["min_ts"],
                    max_ts=block["max_ts"],
                    path=block["path"],
                    size_bytes=block["size_bytes"],
                    row_count=block["row_count"],
                )
            )


def _snapshot_key(sequence: int) -> str:
    return f"{SNAPSHOT_PREFIX}{sequence:08d}.json"


def _existing_snapshots(store, bucket: str) -> list[int]:
    stats = store.list(bucket, SNAPSHOT_PREFIX)
    sequences = []
    for stat in stats:
        name = stat.key[len(SNAPSHOT_PREFIX):]
        if name.endswith(".json"):
            try:
                sequences.append(int(name[:-5]))
            except ValueError:
                continue
    return sorted(sequences)


def save_catalog(catalog: Catalog, store, bucket: str) -> str:
    """Write a new catalog snapshot; prunes old ones.  Returns its key."""
    sequences = _existing_snapshots(store, bucket)
    sequence = (sequences[-1] + 1) if sequences else 0
    key = _snapshot_key(sequence)
    store.put(bucket, key, serialize_catalog(catalog))
    for old in sequences[: max(0, len(sequences) + 1 - KEEP_SNAPSHOTS)]:
        store.delete(bucket, _snapshot_key(old))
    return key


def load_catalog_into(catalog: Catalog, store, bucket: str) -> bool:
    """Restore the newest snapshot into ``catalog``.

    Returns False (catalog untouched) when no snapshot exists.
    """
    sequences = _existing_snapshots(store, bucket)
    if not sequences:
        return False
    data = store.get(bucket, _snapshot_key(sequences[-1]))
    restore_catalog(catalog, data)
    return True


def rebuild_catalog_from_store(catalog: Catalog, store, bucket: str) -> int:
    """Disaster recovery: rebuild the LogBlock map by scanning OSS.

    Lists ``tenants/`` and reads each block's self-contained meta to
    recover row counts and timestamp ranges.  Tenant lifecycle metadata
    (names, retention) is not stored in blocks and comes back as
    defaults.  Returns the number of blocks registered.
    """
    if catalog.all_blocks():
        raise CatalogError("rebuild requires an empty LogBlock map")
    count = 0
    for stat in store.list(bucket, "tenants/"):
        match = _BLOCK_PATH_RE.match(stat.key)
        if match is None:
            continue
        tenant_id = int(match.group(1))
        reader = LogBlockReader(PackReader(store, bucket, stat.key))
        meta = reader.meta()
        ts_values = None
        if "ts" in meta.schema.column_names():
            sma = meta.column_sma("ts")
            ts_values = (sma.min_value, sma.max_value)
        if ts_values is None or ts_values[0] is None:
            raise CatalogError(f"block {stat.key} has no ts range; cannot rebuild")
        catalog.add_block(
            LogBlockEntry(
                tenant_id=tenant_id,
                min_ts=int(ts_values[0]),
                max_ts=int(ts_values[1]),
                path=stat.key,
                size_bytes=stat.size,
                row_count=meta.row_count,
            )
        )
        count += 1
    return count
