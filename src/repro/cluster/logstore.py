"""The LogStore facade: one object wiring the whole system together.

Construction builds the Figure 3 stack over an in-process object store:

* a virtual clock and a metered OSS (cost model from the config),
* the controller (catalog, routing, hotspot manager, task manager),
* workers with shards (row stores, optionally Raft-replicated) and a
  shared data builder,
* brokers with the multi-level cache and the skipping/prefetching
  query executor.

Typical use::

    store = LogStore.create(schema=request_log_schema())
    store.put(tenant_id=1, rows=[...])
    store.run_background_tasks()          # archive sealed data to OSS
    result = store.query("SELECT log FROM request_log WHERE ...")
"""

from __future__ import annotations

import itertools

from repro.builder.builder import BuildReport, DataBuilder
from repro.cache.multilevel import CachingRangeReader, MultiLevelCache
from repro.cluster.broker import Broker, QueryResult
from repro.cluster.config import LogStoreConfig
from repro.cluster.controller import Controller
from repro.cluster.shard import Shard
from repro.cluster.worker import Worker
from repro.common.clock import VirtualClock
from repro.common.errors import ClusterError, WorkerNotFound
from repro.flow.monitor import TrafficSample
from repro.logblock.schema import TableSchema, request_log_schema
from repro.meta.catalog import Catalog
from repro.meta.expiry import ExpiryReport
from repro.obs.analyze import render_explain_analyze
from repro.obs.context import Observability
from repro.obs.report import MetricsReport
from repro.obs.tracing import Span, format_trace
from repro.oss.metered import MeteredObjectStore
from repro.oss.store import InMemoryObjectStore, ObjectStore
from repro.query.executor import ExecutionOptions


class LogStore:
    """A complete single-process LogStore cluster."""

    def __init__(
        self,
        config: LogStoreConfig,
        schema: TableSchema,
        backend: ObjectStore | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        self.config = config
        self.schema = schema
        self.clock = clock if clock is not None else VirtualClock()
        from repro.obs.slo import SloTarget

        self.obs = Observability(
            clock=self.clock,
            tracing_enabled=config.tracing_enabled,
            trace_max_traces=config.trace_max_traces,
            slow_query_s=config.slow_query_s,
            event_journal_enabled=config.event_journal_enabled,
            event_journal_max_events=config.event_journal_max_events,
            slo_enabled=config.slo_enabled,
            slo_default_target=SloTarget(
                p99_query_latency_s=config.slo_p99_query_latency_s,
                write_latency_s=config.slo_write_latency_s,
                slo_goal=config.slo_goal,
                window_s=config.slo_window_s,
            ),
        )
        inner = backend if backend is not None else InMemoryObjectStore()
        self.oss = MeteredObjectStore(
            inner, config.oss_model, self.clock, tracer=self.obs.tracer
        )
        self.oss.create_bucket(config.bucket)

        self.catalog = Catalog(schema)
        self.controller = Controller(config, self.catalog, self.oss, self.clock)

        builder = DataBuilder(
            schema,
            self.oss,
            config.bucket,
            self.catalog,
            codec=config.codec,
            block_rows=config.block_rows,
            target_rows=config.target_rows_per_logblock,
            build_indexes=config.build_indexes,
            builder_threads=config.builder_threads,
            obs=self.obs,
            use_vectorized_encode=config.use_vectorized_encode,
        )

        self._builder = builder
        self.builder = builder  # public: chaos/invariant checks reach it here
        self.workers: dict[str, Worker] = {}
        for worker_index in range(config.n_workers):
            self._provision_worker(worker_index)
        for shard_id in range(config.n_shards):
            self._provision_shard(shard_id)
        self.controller.set_scale_hook(self._scale_cluster_hook)

        self.cache = MultiLevelCache(
            memory_bytes=config.cache_memory_bytes,
            ssd_bytes=config.cache_ssd_bytes,
            object_bytes=config.cache_object_bytes,
            charge=self.clock.sleep,
        )
        self._range_reader = CachingRangeReader(
            self.oss, self.cache, tracer=self.obs.tracer
        )
        options = ExecutionOptions(
            use_skipping=config.use_skipping,
            use_prefetch=config.use_prefetch,
            prefetch_threads=config.prefetch_threads,
            agg_pushdown_level=config.agg_pushdown_level,
            use_semantic_rewrite=config.use_semantic_rewrite,
            use_vectorized_scan=config.use_vectorized_scan,
        )
        self.brokers = [
            Broker(
                f"broker-{i}",
                self.controller,
                self.workers,
                self._range_reader,
                self.clock,
                options,
                obs=self.obs,
            )
            for i in range(2)
        ]
        self._broker_cycle = itertools.cycle(self.brokers)

        from repro.cluster.hotspot_loop import HotspotLoop, TenantTrafficTracker

        self.traffic_tracker = TenantTrafficTracker(self.obs.registry)
        self.hotspot_loop = HotspotLoop(self.controller, self.traffic_tracker, self.clock)

        from repro.frontdoor.auth import TokenRegistry
        from repro.frontdoor.session import SessionPool

        self.frontdoor_tokens = TokenRegistry(config.seed)
        self.sessions = SessionPool(self, self.frontdoor_tokens, config.max_sessions)

        from repro.lifecycle.manager import LifecycleManager

        self.lifecycle = LifecycleManager(
            self.catalog,
            self.oss,
            config.bucket,
            schema,
            obs=self.obs,
            invalidate=self._invalidate_blob,
            sweep_enabled=config.lifecycle_sweep_enabled,
            cold_enabled=config.lifecycle_cold_enabled,
            cold_codec=config.cold_codec,
            cold_target_rows=(
                config.cold_target_rows
                if config.cold_target_rows > 0
                else config.target_rows_per_logblock
            ),
            cold_min_blocks=config.cold_min_blocks,
            block_rows=config.block_rows,
            build_indexes=config.build_indexes,
            retry_clock=self.clock,
            use_vectorized_encode=config.use_vectorized_encode,
        )
        # Compaction/build orphans converge through the lifecycle sweep.
        self.lifecycle.sweeper.attach_orphan_source(builder)

        from repro.obs.alerts import AlertEngine, default_alert_rules

        rules = config.alert_rules if config.alert_rules else default_alert_rules()
        self.obs.install_alerts(
            AlertEngine(
                rules,
                clock=self.clock,
                journal=self.obs.journal,
                slo=self.obs.slo,
            )
        )

    # -- provisioning ----------------------------------------------------

    def _provision_worker(self, worker_index: int) -> Worker:
        worker_id = self.config.worker_id(worker_index)
        worker = Worker(
            worker_id, self.config.worker_capacity_rps, self._builder, obs=self.obs
        )
        self.workers[worker_id] = worker
        self.controller.register_worker(worker)
        return worker

    def _provision_shard(self, shard_id: int) -> Shard:
        worker_id = self.config.worker_of_shard(shard_id)
        shard = Shard(
            shard_id,
            worker_id,
            self.config.shard_capacity_rps,
            self.config.seal_rows,
            self.config.seal_bytes,
            self.clock,
            use_raft=self.config.use_raft,
            replicas=self.config.replicas,
            wal_only_replicas=self.config.wal_only_replicas,
            group_commit=self.config.group_commit,
            group_commit_batches=self.config.group_commit_batches,
            group_commit_bytes=self.config.group_commit_bytes,
            group_commit_linger_s=self.config.group_commit_linger_s,
            pipeline_depth=self.config.pipeline_depth,
            write_ack=self.config.write_ack,
            wal_fsync_s=self.config.wal_fsync_s,
            wal_backend_factory=self.config.wal_backend_factory,
            seed=self.config.seed,
            obs=self.obs,
        )
        self.workers[worker_id].add_shard(shard)
        return shard

    def _live_topology(self):
        """Topology from the *actual* shard placement (which diverges
        from the static formula after failures re-host shards)."""
        from repro.flow.graph import ClusterTopology

        shard_worker: dict[int, str] = {}
        worker_capacity: dict[str, float] = {}
        for worker_id, worker in self.workers.items():
            worker_capacity[worker_id] = worker.capacity_rps
            for shard_id in worker.shards:
                shard_worker[shard_id] = worker_id
        shard_capacity = {
            shard_id: self.config.shard_capacity_rps for shard_id in shard_worker
        }
        return ClusterTopology(
            shard_worker, shard_capacity, worker_capacity, alpha=self.config.alpha
        )

    def scale_out(self, n_new_workers: int | None = None):
        """ScaleCluster() (Algorithm 1 lines 24-27): add workers/shards.

        Provisions new ECS-node stand-ins, extends the hash ring (new
        tenants can land there; existing routes are untouched), and
        returns the new topology.
        """
        added = n_new_workers if n_new_workers is not None else self.config.scale_step_workers
        if added <= 0:
            raise ValueError(f"must add at least one worker, got {added}")
        first_new_worker = self.config.n_workers
        first_new_shard = self.config.n_shards
        self.config.n_workers += added
        for worker_index in range(first_new_worker, self.config.n_workers):
            self._provision_worker(worker_index)
        for shard_id in range(first_new_shard, self.config.n_shards):
            self._provision_shard(shard_id)
            self.controller.ring.add_shard(shard_id)
        topology = self._live_topology()
        self.controller.retarget(topology)
        return topology

    def _scale_cluster_hook(self):
        return self.scale_out()

    def fail_worker(self, worker_id: str) -> dict[int, str]:
        """Handle an abnormal node (§3: the controller "removes it from
        the router table and schedules tasks for node recovery").

        Each of the failed worker's shards is re-hosted on the
        least-loaded surviving worker.  The shard's row store moves with
        it — this models Raft failover, where a surviving full replica
        (which holds the same row-store state) takes over leadership on
        another node; no data is migrated, matching the shared-data
        design.  Returns the new shard → worker placement.
        """
        if worker_id not in self.workers:
            raise WorkerNotFound(worker_id)
        if len(self.workers) == 1:
            raise ClusterError("cannot fail the last worker")
        failed = self.workers.pop(worker_id)
        self.controller.workers.pop(worker_id, None)
        moves: dict[int, str] = {}
        for shard in failed.shards.values():
            target = min(
                self.workers.values(), key=lambda w: (len(w.shards), w.worker_id)
            )
            shard.worker_id = target.worker_id
            target.add_shard(shard)
            moves[shard.shard_id] = target.worker_id
        self.controller.retarget(self._live_topology())
        return moves

    # -- constructors -------------------------------------------------------

    @classmethod
    def create(
        cls,
        schema: TableSchema | None = None,
        config: LogStoreConfig | None = None,
        backend: ObjectStore | None = None,
        clock: VirtualClock | None = None,
    ) -> "LogStore":
        """Build a cluster with sensible defaults (request_log schema)."""
        return cls(
            config=config if config is not None else LogStoreConfig(),
            schema=schema if schema is not None else request_log_schema(),
            backend=backend,
            clock=clock,
        )

    @classmethod
    def attach(
        cls,
        backend: ObjectStore,
        schema: TableSchema | None = None,
        config: LogStoreConfig | None = None,
        clock: VirtualClock | None = None,
    ) -> "LogStore":
        """Re-open a cluster over an existing bucket (controller restart).

        Restores the catalog from the newest snapshot when one exists;
        otherwise rebuilds the LogBlock map by scanning the bucket (the
        §3.2 self-contained-blocks guarantee).  Archived data becomes
        queryable immediately; row-store contents are per-node state and
        recover through shard WALs / Raft, not here.
        """
        from repro.meta.persistence import (
            load_catalog_into,
            rebuild_catalog_from_store,
        )

        store = cls.create(schema=schema, config=config, backend=backend, clock=clock)
        if not load_catalog_into(store.catalog, store.oss, store.config.bucket):
            rebuild_catalog_from_store(store.catalog, store.oss, store.config.bucket)
        return store

    def persist_catalog(self) -> str:
        """Snapshot the controller metadata into the bucket (§3's
        checkpoint of the MetaData DB).  Returns the snapshot key."""
        from repro.meta.persistence import save_catalog

        return save_catalog(self.catalog, self.oss, self.config.bucket)

    # -- client API (what the SLB would front) --------------------------------

    def _broker(self) -> Broker:
        """SLB stand-in: round-robin across brokers."""
        return next(self._broker_cycle)

    def register_tenant(
        self, tenant_id: int, name: str = "", retention_s: float | None = None
    ):
        return self.catalog.register_tenant(
            tenant_id, name=name, retention_s=retention_s, created_at=self.clock.now()
        )

    def put(self, tenant_id: int, rows: list[dict]) -> dict[int, int]:
        """Write a batch of rows for one tenant."""
        for row in rows:
            if row.get("tenant_id") != tenant_id:
                raise ValueError(
                    f"row tenant_id {row.get('tenant_id')!r} does not match {tenant_id}"
                )
        self.traffic_tracker.record(tenant_id, len(rows))
        return self._broker().write(tenant_id, rows)

    def put_nowait(self, tenant_id: int, rows: list[dict]) -> dict[int, int]:
        """Write a batch without waiting for replication to settle.

        The pipelined ingest API: batches coalesce in the shards'
        group-commit queues and settle in waves; call
        :meth:`settle_writes` for the durability barrier.
        """
        for row in rows:
            if row.get("tenant_id") != tenant_id:
                raise ValueError(
                    f"row tenant_id {row.get('tenant_id')!r} does not match {tenant_id}"
                )
        self.traffic_tracker.record(tenant_id, len(rows))
        return self._broker().write_nowait(tenant_id, rows)

    def settle_writes(self) -> None:
        """Settle every broker's outstanding dispatches (ack barrier)."""
        for broker in self.brokers:
            broker.settle_writes()

    def start_hotspot_loop(self) -> None:
        """Arm the §4.1.3 monitor loop (every ``monitor_interval_s`` of
        cluster time, driven by the cluster clock)."""
        self.hotspot_loop.start()

    # -- SQL front door (repro.frontdoor) ---------------------------------

    def issue_token(self, tenant_id: int) -> str:
        """Issue (or re-issue) the connection token for one tenant."""
        return self.frontdoor_tokens.issue(tenant_id)

    def connect(self, tenant_id: int, token: str):
        """Open an authenticated, tenant-scoped SQL session.

        Raises :class:`~repro.common.errors.AuthError` on a bad token.
        Every statement the returned session executes is bound to
        ``tenant_id`` — reads are scope-checked in the planner, INSERTs
        must carry the session's tenant (or none, and it is stamped).
        """
        return self.sessions.connect(tenant_id, token)

    def issue_admin_token(self) -> str:
        """Issue (or re-issue) the cluster-operator token."""
        return self.frontdoor_tokens.issue_admin()

    def connect_admin(self, token: str):
        """Open an unscoped operator session (full `_system` visibility).

        Admin sessions see every tenant's rows in the `_system` tables
        and query user data without a tenant filter injected; INSERTs
        must carry an explicit ``tenant_id`` per row.
        """
        return self.sessions.connect_admin(token)

    def create_table(self, statement) -> TableSchema:
        """Run a CREATE TABLE statement (parsed object or SQL text)."""
        from repro.frontdoor.ddl import apply_create_table
        from repro.query.sql import ParsedCreateTable, parse_statement

        if isinstance(statement, str):
            statement = parse_statement(statement)
        if not isinstance(statement, ParsedCreateTable):
            raise ValueError("create_table requires a CREATE TABLE statement")
        return apply_create_table(self, statement)

    def query(
        self,
        sql: str,
        tenant_scope: int | None = None,
        statement: str | None = None,
    ) -> QueryResult:
        """Execute one SQL query (optionally under a session's scope).

        ``statement`` is the original client text before parameter
        binding; sessions pass it so the slow-query log (and therefore
        ``_system.slow_queries``) shows what the client actually typed.
        """
        return self._broker().query(sql, tenant_scope=tenant_scope, statement=statement)

    def explain(self, sql: str, tenant_scope: int | None = None) -> str:
        """Plan a query without executing it; returns the EXPLAIN text.

        Runs the same semantic-rewrite pass the brokers run (without
        counting it in the metrics), so the output shows exactly the
        plan a real execution would take — including the rewrite rules
        applied and any naive-window fallback.
        """
        from repro.frontdoor.rewrite import SemanticRewriter
        from repro.obs.systables import SYSTEM_TABLE_COLUMNS, is_system_table
        from repro.query.dedup import naive_scan_query
        from repro.query.planner import QueryPlanner, explain_plan
        from repro.query.sql import parse_sql

        parsed = parse_sql(sql)
        if is_system_table(parsed.table):
            columns = SYSTEM_TABLE_COLUMNS.get(parsed.table)
            lines = [
                f"query: {sql}",
                f"system table scan: {parsed.table} "
                "(materialized from the obs layer; no storage touched)",
            ]
            if columns is not None:
                lines.append(f"columns: {', '.join(columns)}")
            if tenant_scope is not None:
                lines.append(f"scope: tenant {tenant_scope} rows only")
            return "\n".join(lines)
        rewrites: list[str] = []
        # Read the *live* execution option, not the construction-time
        # config — benchmarks toggle the shared options object directly.
        if self._broker().options.use_semantic_rewrite:
            parsed, rewrites = SemanticRewriter().rewrite(parsed)
        notes: list[str] = []
        if parsed.subquery is not None:
            window = parsed.subquery.window
            notes.append(
                "naive window materialization: every matching version is "
                "fetched, then ranked"
                + (f" ({window.label()})" if window is not None else "")
            )
            parsed = naive_scan_query(parsed)
        plan = QueryPlanner(self.catalog).plan(parsed, tenant_scope, rewrites)
        text = explain_plan(plan)
        if notes:
            text += "\n" + "\n".join(notes)
        return text

    def explain_analyze(self, sql: str) -> str:
        """Execute the query and report what execution actually did.

        Renders the plan followed by per-stage virtual timings (from
        the ``broker.query`` trace), block pruning counters, pushdown
        tier counts, cache hit rate and bytes fetched — all driven by
        the virtual clock, so the output is deterministic.
        """
        result = self._broker().query(sql)
        trace = self.obs.tracer.last_trace("broker.query")
        return render_explain_analyze(result, trace, journal=self.obs.journal)

    # -- observability --------------------------------------------------------

    @property
    def tracer(self):
        return self.obs.tracer

    @property
    def registry(self):
        return self.obs.registry

    @property
    def slow_queries(self):
        return self.obs.slow_queries

    def metrics_report(self) -> MetricsReport:
        """The cluster-wide metric readout.

        Mirrors the OSS/cache counters into registry gauges right
        before snapshotting (collect-on-read: those subsystems keep
        their own counters on the hot path) and returns a
        :class:`MetricsReport` over the merged snapshot.
        """
        registry = self.obs.registry
        summary = self.cache.summary()
        registry.gauge(
            "logstore_cache_hits", "Block+object cache hits (collect-on-read)."
        ).set(summary.object_hits + summary.memory_hits + summary.ssd_hits)
        registry.gauge(
            "logstore_cache_misses", "Requests that fell through to OSS."
        ).set(summary.oss_reads)
        registry.gauge(
            "logstore_oss_bytes_read", "Cumulative OSS bytes read."
        ).set(self.oss.stats.bytes_read)
        registry.gauge(
            "logstore_oss_bytes_written", "Cumulative OSS bytes written."
        ).set(self.oss.stats.bytes_written)
        return MetricsReport(registry.snapshot())

    def last_trace(self, name: str | None = None) -> Span | None:
        """Most recent completed trace (optionally filtered by root name)."""
        return self.obs.tracer.last_trace(name)

    def dump_last_trace(self, name: str | None = None) -> str:
        """Indented text dump of the most recent trace (deterministic)."""
        trace = self.obs.tracer.last_trace(name)
        return format_trace(trace) if trace is not None else "(no traces recorded)"

    # -- admin / background ---------------------------------------------------

    def run_background_tasks(self) -> BuildReport:
        """Archive all sealed memtables to OSS, tick the data lifecycle
        (expiry sweep + cold repacks), then tick the alert engine over
        the post-archive registry snapshot."""
        report = self.controller.archive_all()
        self.lifecycle.tick(int(self.clock.now() * 1_000_000))
        self.evaluate_alerts()
        return report

    def evaluate_alerts(self):
        """One deterministic alert tick at the current virtual time.

        Evaluates every configured rule against a fresh registry
        snapshot (and the SLO windows); fire/resolve transitions land
        in the event journal and `_system.alerts`.  Returns the alerts
        that transitioned this tick.
        """
        return self.obs.alerts.evaluate(self.obs.registry.snapshot())

    def flush_all(self) -> BuildReport:
        """Seal + archive everything (tests and shutdown)."""
        return self.controller.flush_all()

    def checkpoint_all(self) -> dict[int, int]:
        """Run the §3 periodic checkpoint task on every shard.

        Raft shards compact their replicated logs; plain shards compact
        their local WALs.  Returns shard → checkpoint index/sequence.
        """
        results: dict[int, int] = {}
        for worker in self.workers.values():
            for shard_id, shard in worker.shards.items():
                results[shard_id] = shard.checkpoint()
        return results

    def expire_data(self, now_ts: int | None = None) -> ExpiryReport:
        """Run retention-based deletion; invalidates caches for victims."""
        if now_ts is None:
            now_ts = int(self.clock.now() * 1_000_000)
        victims = {
            block.path
            for block in ExpiryProbe(self).expired_blocks(now_ts)
        }
        report = self.controller.expire_data(now_ts)
        for path in victims:
            self.cache.invalidate_blob(self.config.bucket, path)
        return report

    def _invalidate_blob(self, path: str) -> None:
        self.cache.invalidate_blob(self.config.bucket, path)

    # -- data lifecycle (repro.lifecycle) ---------------------------------

    def set_retention(
        self,
        tenant_id: int,
        ttl: float | str | None = None,
        cold_age: float | str | None = None,
    ) -> None:
        """Set one tenant's retention policy (TTL and/or cold-age).

        Durations accept seconds or suffixed strings (``"7d"``,
        ``"12h"``, ``"30m"``, ``"45s"``); None clears the knob.  The
        SQL spelling is ``ALTER TENANT <id> SET RETENTION ...``.
        """
        from repro.lifecycle.policy import RetentionPolicy, parse_duration

        self.lifecycle.set_policy(
            tenant_id,
            RetentionPolicy(
                ttl_s=parse_duration(ttl), cold_age_s=parse_duration(cold_age)
            ),
        )

    def cold_compact(self, now_ts: int | None = None):
        """Repack every tenant's aged blocks into cold segments now
        (the background tick does this incrementally)."""
        if now_ts is None:
            now_ts = int(self.clock.now() * 1_000_000)
        return self.lifecycle.cold.repack_all(now_ts)

    def sweep_expired(self, now_ts: int | None = None):
        """Run one zero-read expiry sweep now (catalog-driven; no OSS
        GETs) and return the :class:`~repro.lifecycle.sweeper.SweepReport`."""
        if now_ts is None:
            now_ts = int(self.clock.now() * 1_000_000)
        return self.lifecycle.sweeper.sweep(now_ts)

    def offboard_tenant(self, tenant_id: int, export: bool = True):
        """Offboard one tenant: export a portable archive (optional),
        delete everything, and *prove* the deletion.

        Flushes the tenant's in-flight rows first so the export is
        complete, then delegates to the lifecycle offboarder (catalog
        drop + object deletes + OSS listing), and finally runs a
        COUNT(*) query scoped to the tenant — the returned report's
        ``query_rows`` must be 0 and ``verified`` True, or residue
        remains.
        """
        self.flush_all()
        report = self.lifecycle.offboarder.offboard(tenant_id, export=export)
        result = self.query(
            f"SELECT COUNT(*) FROM {self.schema.name} WHERE tenant_id = {tenant_id}"
        )
        report.query_rows = int(result.rows[0]["COUNT(*)"]) if result.rows else 0
        report.verified = report.verified and report.query_rows == 0
        return report

    def rebalance(self, tenant_traffic: dict[int, float]):
        """Run one hotspot-manager iteration for the offered traffic."""
        sample = self.controller.collect_sample(tenant_traffic)
        return self.controller.rebalance(sample)

    def sample_traffic(self, tenant_traffic: dict[int, float]) -> TrafficSample:
        return self.controller.collect_sample(tenant_traffic)

    # -- introspection -------------------------------------------------------

    def total_archived_bytes(self) -> int:
        return sum(info.total_bytes for info in self.catalog.tenants())

    def pending_rows(self) -> int:
        return sum(worker.pending_rows() for worker in self.workers.values())


class ExpiryProbe:
    """Read-only view of what expiry would delete (for cache invalidation)."""

    def __init__(self, store: LogStore) -> None:
        self._store = store

    def expired_blocks(self, now_ts: int):
        from repro.meta.expiry import ExpiryTask

        task = ExpiryTask(self._store.catalog, self._store.oss, self._store.config.bucket)
        return task.expired_blocks(now_ts)
