"""Broker: parses/plans queries, routes writes, merges shard results.

The distributed query layer of Figure 3.  A broker:

* on a **write**, splits the tenant's batch across its shards using the
  routing table's weights and dispatches each piece to the owning
  worker;
* on a **query**, parses and plans the SQL, fans the plan out to (a)
  the archived LogBlocks on OSS via the skipping/caching/prefetching
  executor and (b) the row stores of the shards in the tenant's *read*
  route (new plan ∪ old plan, §4.1.5), then merges and finalizes
  (aggregate or order/limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.multilevel import CachingRangeReader
from repro.cluster.controller import Controller
from repro.cluster.worker import Worker
from repro.common.clock import VirtualClock
from repro.common.errors import ShardNotFound, WorkerNotFound
from repro.metrics.stats import Counter
from repro.query.aggregate import Aggregator, apply_order_limit
from repro.query.executor import (
    BlockExecutor,
    ExecutionOptions,
    ExecutionStats,
    filter_realtime_rows,
)
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.sql import parse_sql


@dataclass
class QueryResult:
    """What a query returns to the client."""

    rows: list[dict]
    latency_s: float
    plan: QueryPlan
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    realtime_rows: int = 0
    archived_rows: int = 0

    def __len__(self) -> int:
        return len(self.rows)


class Broker:
    """One query-layer node."""

    def __init__(
        self,
        broker_id: str,
        controller: Controller,
        workers: dict[str, Worker],
        range_reader: CachingRangeReader,
        clock: VirtualClock,
        options: ExecutionOptions | None = None,
    ) -> None:
        self.broker_id = broker_id
        self._controller = controller
        self._workers = workers
        self._clock = clock
        self.options = options if options is not None else ExecutionOptions()
        self._planner = QueryPlanner(controller.catalog)
        self._executor = BlockExecutor(range_reader, controller.config.bucket, self.options)
        self.writes_routed = Counter(f"{broker_id}.writes")
        self.queries_served = Counter(f"{broker_id}.queries")

    # -- write path ---------------------------------------------------------

    def _shard_worker(self, shard_id: int) -> Worker:
        worker_id = self._controller.topology.shard_worker.get(shard_id)
        if worker_id is None:
            raise ShardNotFound(f"shard {shard_id} not in topology")
        worker = self._workers.get(worker_id)
        if worker is None:
            raise WorkerNotFound(f"worker {worker_id!r} not registered")
        return worker

    def write(self, tenant_id: int, rows: list[dict]) -> dict[int, int]:
        """Route one tenant batch; returns shard → record count."""
        if not rows:
            return {}
        self._controller.catalog.ensure_tenant(tenant_id, created_at=self._clock.now())
        self._controller.ensure_route(tenant_id)
        split = self._controller.routing.split_batch(tenant_id, len(rows))
        dispatched: dict[int, int] = {}
        cursor = 0
        for shard_id, count in split.items():
            piece = rows[cursor : cursor + count]
            cursor += count
            self._shard_worker(shard_id).write(shard_id, piece)
            dispatched[shard_id] = count
        self.writes_routed.add(len(rows))
        return dispatched

    # -- query path ---------------------------------------------------------

    def query(self, sql: str) -> QueryResult:
        """Parse, plan, execute, merge.  Latency is virtual-clock time."""
        start = self._clock.now()
        parsed = parse_sql(sql)
        plan = self._planner.plan(parsed)

        # Archived data (OSS LogBlocks).  Aggregates take the pushdown
        # path: the executor returns a mergeable partial aggregator (the
        # same MPP shape shard merging uses) instead of matched rows.
        aggregator: Aggregator | None = None
        archived_rows: list[dict] = []
        if parsed.is_aggregate:
            aggregator, stats = self._executor.execute_aggregate(plan)
            archived_count = stats.rows_matched
        else:
            archived_rows, stats = self._executor.execute(plan)
            archived_count = len(archived_rows)

        # Real-time data from the row stores of the read route.
        realtime_rows: list[dict] = []
        if plan.tenant_id is not None:
            shard_ids = self._controller.routing.route_read(plan.tenant_id)
        else:
            shard_ids = self._controller.topology.shards
        for shard_id in shard_ids:
            worker = self._shard_worker(shard_id)
            shard = worker.shards.get(shard_id)
            if shard is None:
                continue
            raw = shard.scan_realtime(
                min_ts=plan.min_ts, max_ts=plan.max_ts, tenant_id=plan.tenant_id
            )
            realtime_rows.extend(filter_realtime_rows(plan, raw))

        if aggregator is not None:
            aggregator.consume_many(realtime_rows)
            final = aggregator.results()
        else:
            final = apply_order_limit(parsed, archived_rows + realtime_rows)

        self.queries_served.add()
        return QueryResult(
            rows=final,
            latency_s=self._clock.now() - start,
            plan=plan,
            stats=stats,
            realtime_rows=len(realtime_rows),
            archived_rows=archived_count,
        )
