"""Broker: parses/plans queries, routes writes, merges shard results.

The distributed query layer of Figure 3.  A broker:

* on a **write**, splits the tenant's batch across its shards using the
  routing table's weights and dispatches each piece to the owning
  worker;
* on a **query**, parses and plans the SQL, fans the plan out to (a)
  the archived LogBlocks on OSS via the skipping/caching/prefetching
  executor and (b) the row stores of the shards in the tenant's *read*
  route (new plan ∪ old plan, §4.1.5), then merges and finalizes
  (aggregate or order/limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.multilevel import CachingRangeReader
from repro.cluster.controller import Controller
from repro.cluster.worker import Worker
from repro.common.clock import VirtualClock
from repro.common.errors import (
    BackpressureError,
    QueryError,
    ShardNotFound,
    WorkerNotFound,
)
from repro.common.utils import wave_elapsed
from repro.obs.context import Observability
from repro.obs.meter import approx_rows_bytes
from repro.obs.recorders import PushdownRecorder, ScanModeRecorder
from repro.obs.report import (
    BROKER_QUERIES,
    BROKER_WRITE_ROWS,
    QUERY_LATENCY,
    TENANT_READ_ROWS,
)
from repro.obs.slowlog import SlowQueryEntry
from repro.obs.systables import (
    SYSTEM_TABLE_COLUMNS,
    is_system_table,
    scope_rows,
    system_table_rows,
)
from repro.frontdoor.rewrite import SemanticRewriter
from repro.query.aggregate import Aggregator, apply_order_limit
from repro.query.dedup import finalize_outer, naive_scan_query, run_window_query
from repro.query.executor import (
    BlockExecutor,
    ExecutionOptions,
    ExecutionStats,
    filter_realtime_rows,
)
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.sql import parse_sql


@dataclass
class QueryResult:
    """What a query returns to the client."""

    rows: list[dict]
    latency_s: float
    plan: QueryPlan
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    realtime_rows: int = 0
    archived_rows: int = 0
    # I/O attribution for EXPLAIN ANALYZE: deltas of the shared OSS /
    # cache counters across this query's execution.
    oss_requests: int = 0
    bytes_fetched: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.rows)


class Broker:
    """One query-layer node."""

    def __init__(
        self,
        broker_id: str,
        controller: Controller,
        workers: dict[str, Worker],
        range_reader: CachingRangeReader,
        clock: VirtualClock,
        options: ExecutionOptions | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.broker_id = broker_id
        self._controller = controller
        self._workers = workers
        self._clock = clock
        self.options = options if options is not None else ExecutionOptions()
        self._planner = QueryPlanner(controller.catalog)
        self._range_reader = range_reader
        self._executor = BlockExecutor(range_reader, controller.config.bucket, self.options)
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self.writes_routed = registry.counter(
            BROKER_WRITE_ROWS, "Rows routed to shards by this broker.", broker=broker_id
        )
        self.queries_served = registry.counter(
            BROKER_QUERIES, "Queries answered by this broker.", broker=broker_id
        )
        self._query_latency = registry.histogram(
            QUERY_LATENCY, "Virtual end-to-end query latency.", broker=broker_id
        )
        self._pushdown = PushdownRecorder(registry)
        self._scan_modes = ScanModeRecorder(registry, broker=broker_id)
        self._rewriter = SemanticRewriter(registry)
        self._pending_shards: set[int] = set()

    # -- write path ---------------------------------------------------------

    def _shard_worker(self, shard_id: int) -> Worker:
        worker_id = self._controller.topology.shard_worker.get(shard_id)
        if worker_id is None:
            raise ShardNotFound(f"shard {shard_id} not in topology")
        worker = self._workers.get(worker_id)
        if worker is None:
            raise WorkerNotFound(f"worker {worker_id!r} not registered")
        return worker

    def write(self, tenant_id: int, rows: list[dict]) -> dict[int, int]:
        """Route one tenant batch; returns shard → record count.

        Per-shard dispatches are charged under the deferred-clock wave
        model — a K-shard batch pays its slowest dispatch, not the sum
        — then one settle wave drives every touched shard's replication
        concurrently (the shards share the clock, so advancing it for
        the first shard progresses all of them).
        """
        with self._obs.tracer.span(
            "broker.write", broker=self.broker_id, tenant=tenant_id, rows=len(rows)
        ):
            dispatched = self._dispatch(tenant_id, rows)
            self.settle_writes()
        return dispatched

    def write_nowait(self, tenant_id: int, rows: list[dict]) -> dict[int, int]:
        """Route a batch without the durability barrier.

        Admitted pieces flow into the shards' group-commit queues and
        replication pipelines; call :meth:`settle_writes` when the
        client needs the ack.  Raises :class:`BackpressureError` when
        §4.2 flow control rejects a piece (already-admitted pieces stay
        in flight and settle normally).
        """
        return self._dispatch(tenant_id, rows)

    def _dispatch(self, tenant_id: int, rows: list[dict]) -> dict[int, int]:
        if not rows:
            return {}
        self._controller.catalog.ensure_tenant(tenant_id, created_at=self._clock.now())
        self._controller.ensure_route(tenant_id)
        split = self._controller.routing.split_batch(tenant_id, len(rows))
        dispatched: dict[int, int] = {}
        durations: list[float] = []
        cursor = 0
        try:
            for shard_id, count in split.items():
                piece = rows[cursor : cursor + count]
                cursor += count
                worker = self._shard_worker(shard_id)
                with self._clock.deferred() as charges:
                    worker.write_async(shard_id, piece)
                durations.append(charges.total)
                self._pending_shards.add(shard_id)
                dispatched[shard_id] = count
        except BackpressureError:
            # A rejected piece is a bad write event against the tenant's
            # SLO; already-admitted pieces stay in flight.
            self._obs.slo.record_write(tenant_id, 0.0, error=True)
            raise
        wave_s = wave_elapsed(durations, max(1, self.options.prefetch_threads))
        self._clock.sleep(wave_s)
        self.writes_routed.add(len(rows))
        self._obs.meter.record_ingest(
            tenant_id, rows=len(rows), nbytes=approx_rows_bytes(rows)
        )
        self._obs.slo.record_write(tenant_id, wave_s)
        return dispatched

    def settle_writes(self) -> None:
        """Durability barrier for every shard this broker dispatched to."""
        pending, self._pending_shards = self._pending_shards, set()
        for shard_id in sorted(pending):
            self._shard_worker(shard_id).settle_writes(shard_id)

    # -- query path ---------------------------------------------------------

    def query(
        self,
        sql: str,
        tenant_scope: int | None = None,
        statement: str | None = None,
    ) -> QueryResult:
        """Parse, rewrite, plan, execute, merge.  Latency is virtual time.

        ``tenant_scope`` is the session's authorized tenant: the planner
        injects it as a filter when absent and raises ``AuthError`` on a
        conflicting one.  The semantic-rewrite pass runs first (when
        enabled); a window subquery it cannot rewrite falls back to full
        materialization (:func:`run_window_query`).

        ``statement`` is the original client text before parameter
        binding (front-door sessions pass it); the slow-query log keeps
        it alongside the executed SQL.

        ``_system.*`` tables never reach the planner/executor: they are
        materialized from the obs layer and catalog, scoped to the
        session's tenant, then filtered by the same AST machinery.
        """
        parsed_input = parse_sql(sql)
        if is_system_table(parsed_input.table):
            return self._system_query(parsed_input, tenant_scope)
        start = self._clock.now()
        try:
            return self._query(parsed_input, sql, tenant_scope, statement, start)
        except Exception:
            if tenant_scope is not None:
                self._obs.slo.record_query(
                    tenant_scope, self._clock.now() - start, error=True
                )
            raise

    def _query(
        self,
        parsed_input,
        sql: str,
        tenant_scope: int | None,
        statement: str | None,
        start: float,
    ) -> QueryResult:
        oss_before = self._range_reader.store.stats.snapshot()
        cache_before = self._range_reader.cache.summary()
        tracer = self._obs.tracer
        with tracer.span("broker.query", broker=self.broker_id) as query_span:
            with tracer.span("broker.plan"):
                parsed = parsed_input
                rewrites: list[str] = []
                if self.options.use_semantic_rewrite:
                    parsed, rewrites = self._rewriter.rewrite(parsed)
                # The naive window fallback scans every version of every
                # column of the inner query; `outer` keeps the original
                # two-level query for post-scan materialization.
                outer = parsed if parsed.subquery is not None else None
                scan_query = naive_scan_query(parsed) if outer is not None else parsed
                plan = self._planner.plan(scan_query, tenant_scope, rewrites)
            tenant_label = plan.tenant_id if plan.tenant_id is not None else "*"
            query_span.set(tenant=tenant_label)

            # Archived data (OSS LogBlocks).  Aggregates take the pushdown
            # path: the executor returns a mergeable partial aggregator (the
            # same MPP shape shard merging uses) instead of matched rows.
            # A dedup plan runs the latest-version tournament on narrow
            # (key, version) vectors and materializes winners afterwards.
            aggregator: Aggregator | None = None
            dedup = None
            archived_rows: list[dict] = []
            with tracer.span("broker.archived_scan"):
                if plan.dedup is not None:
                    dedup, stats = self._executor.execute_dedup(plan)
                    archived_count = stats.rows_matched
                elif scan_query.is_aggregate:
                    aggregator, stats = self._executor.execute_aggregate(plan)
                    archived_count = stats.rows_matched
                else:
                    archived_rows, stats = self._executor.execute(plan)
                    archived_count = len(archived_rows)

            # Real-time data from the row stores of the read route.
            realtime_rows: list[dict] = []
            if plan.tenant_id is not None:
                shard_ids = self._controller.routing.route_read(plan.tenant_id)
            else:
                shard_ids = self._controller.topology.shards
            # LIMIT short-circuit: plan.row_limit is only set for plain
            # SELECT ... LIMIT N (no ORDER BY, no aggregation), where any N
            # matching rows answer the query — so once archived + realtime
            # matches reach N there is no reason to scan further shards.
            row_limit = plan.row_limit
            with tracer.span("broker.realtime_scan"):
                for shard_id in shard_ids:
                    remaining = None
                    if row_limit is not None:
                        remaining = row_limit - archived_count - len(realtime_rows)
                        if remaining <= 0:
                            break
                    worker = self._shard_worker(shard_id)
                    shard = worker.shards.get(shard_id)
                    if shard is None:
                        continue
                    raw = shard.scan_realtime(
                        min_ts=plan.min_ts, max_ts=plan.max_ts, tenant_id=plan.tenant_id
                    )
                    realtime_rows.extend(
                        filter_realtime_rows(
                            plan, raw, limit=remaining,
                            options=self.options, stats=stats,
                        )
                    )

            with tracer.span("broker.merge"):
                if dedup is not None:
                    # Real-time rows enter the tournament after the
                    # archived stream — the same order the naive path
                    # concatenates them in, so ties break identically.
                    spec = plan.dedup
                    for row in realtime_rows:
                        dedup.offer(
                            row.get(spec.key_column), row.get(spec.version_column), row
                        )
                    winners = self._executor.materialize_dedup(plan, dedup, stats)
                    if spec.post_filter is not None:
                        winners = [
                            row for row in winners if spec.post_filter.evaluate_row(row)
                        ]
                    final = finalize_outer(plan.query, winners)
                elif outer is not None:
                    final = run_window_query(outer, archived_rows + realtime_rows)
                elif aggregator is not None:
                    aggregator.consume_many(realtime_rows)
                    final = aggregator.results()
                else:
                    final = apply_order_limit(
                        parsed,
                        archived_rows + realtime_rows,
                        vectorized=self.options.use_vectorized_scan,
                    )
            query_span.set(rows=len(final))

        latency_s = self._clock.now() - start
        oss_after = self._range_reader.store.stats
        cache_after = self._range_reader.cache.summary()
        cache_hits = (
            cache_after.object_hits + cache_after.memory_hits + cache_after.ssd_hits
        ) - (
            cache_before.object_hits + cache_before.memory_hits + cache_before.ssd_hits
        )
        result = QueryResult(
            rows=final,
            latency_s=latency_s,
            plan=plan,
            stats=stats,
            realtime_rows=len(realtime_rows),
            archived_rows=archived_count,
            oss_requests=oss_after.get_requests - oss_before.get_requests,
            bytes_fetched=oss_after.bytes_read - oss_before.bytes_read,
            cache_hits=cache_hits,
            cache_misses=cache_after.oss_reads - cache_before.oss_reads,
        )

        self.queries_served.add()
        self._query_latency.observe(latency_s)
        self._obs.registry.counter(
            TENANT_READ_ROWS,
            "Rows returned to clients per tenant.",
            tenant=tenant_label,
        ).add(len(final))
        self._pushdown.record(stats.pushdown)
        self._scan_modes.record(
            stats.rows_evaluated_vectorized, stats.rows_evaluated_interpreted
        )
        if plan.tenant_id is not None:
            self._obs.slo.record_query(plan.tenant_id, latency_s)
            # CPU cost is the scan-work proxy: every row whose predicate
            # was evaluated (either mode) plus every block visited.
            self._obs.meter.record_query(
                plan.tenant_id,
                rows_returned=len(final),
                bytes_scanned=result.bytes_fetched,
                oss_gets=result.oss_requests,
                cpu_cost=stats.rows_evaluated_vectorized
                + stats.rows_evaluated_interpreted
                + stats.blocks_visited,
            )
        self._obs.slow_queries.observe(
            SlowQueryEntry(
                at_s=self._clock.now(),
                tenant_id=plan.tenant_id if plan.tenant_id is not None else -1,
                query=sql,
                latency_s=latency_s,
                rows_returned=len(final),
                blocks_visited=stats.blocks_visited,
                bytes_fetched=result.bytes_fetched,
                statement=statement if statement is not None else sql,
            )
        )
        return result

    def _system_query(self, parsed, tenant_scope: int | None) -> QueryResult:
        """Answer a ``_system.*`` introspection query from the obs layer.

        No storage is touched and no virtual time is charged beyond the
        span bookkeeping; rows are materialized on demand, auth-scoped,
        then run through the ordinary AST filter / aggregate / order-
        limit machinery.
        """
        if parsed.subquery is not None or parsed.window is not None:
            raise QueryError("system tables do not support subqueries or windows")
        start = self._clock.now()
        with self._obs.tracer.span(
            "broker.query", broker=self.broker_id, system_table=parsed.table
        ) as query_span:
            rows = system_table_rows(
                parsed.table, self._obs, catalog=self._controller.catalog
            )
            rows = scope_rows(rows, tenant_scope)
            if parsed.where is not None:
                rows = [row for row in rows if parsed.where.evaluate_row(row)]
            if parsed.is_aggregate:
                aggregator = Aggregator(parsed)
                aggregator.consume_many(rows)
                final = aggregator.results()
            else:
                ordered = apply_order_limit(parsed, rows, vectorized=False)
                if parsed.select_star:
                    columns = SYSTEM_TABLE_COLUMNS[parsed.table]
                else:
                    columns = parsed.projected_columns()
                final = [{c: row.get(c) for c in columns} for row in ordered]
            query_span.set(rows=len(final))
        latency_s = self._clock.now() - start
        plan = QueryPlan(
            query=parsed,
            schema=self._controller.catalog.schema,
            where=parsed.where,
            tenant_id=tenant_scope,
            min_ts=None,
            max_ts=None,
            tenant_scope=tenant_scope,
        )
        self.queries_served.add()
        self._query_latency.observe(latency_s)
        return QueryResult(rows=final, latency_s=latency_s, plan=plan)
