"""Cluster layer: brokers, workers, controller, the LogStore facade."""

from repro.cluster.broker import Broker, QueryResult
from repro.cluster.config import LogStoreConfig, small_test_config
from repro.cluster.controller import Controller, build_topology
from repro.cluster.logstore import LogStore
from repro.cluster.shard import Shard
from repro.cluster.simulation import (
    IngestModelParams,
    IngestSimulator,
    SimulationResult,
    access_stddev_series,
)
from repro.cluster.worker import Worker

__all__ = [
    "Broker",
    "QueryResult",
    "LogStoreConfig",
    "small_test_config",
    "Controller",
    "build_topology",
    "LogStore",
    "Shard",
    "IngestModelParams",
    "IngestSimulator",
    "SimulationResult",
    "access_stddev_series",
    "Worker",
]
