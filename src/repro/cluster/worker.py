"""Worker node: hosts shards, tracks load, runs the data builder.

Workers are the ECS-node abstraction of the execution layer (Figure 3).
Each worker owns the row stores of its shards and a
:class:`~repro.builder.builder.DataBuilder` that archives sealed
memtables to OSS in the background.
"""

from __future__ import annotations

from repro.builder.builder import BuildReport, DataBuilder
from repro.cluster.shard import Shard
from repro.obs.context import Observability


class Worker:
    """One execution-layer node."""

    def __init__(
        self,
        worker_id: str,
        capacity_rps: float,
        builder: DataBuilder,
        obs: Observability | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.capacity_rps = capacity_rps
        self._builder = builder
        self.shards: dict[int, Shard] = {}
        self._obs = obs if obs is not None else Observability.noop()
        self.access_count = self._obs.registry.counter(
            "logstore_worker_accesses_total",
            "Write + scan accesses per worker (Figure 14 input).",
            worker=worker_id,
        )

    def add_shard(self, shard: Shard) -> None:
        if shard.worker_id != self.worker_id:
            raise ValueError(
                f"shard {shard.shard_id} belongs to {shard.worker_id}, not {self.worker_id}"
            )
        self.shards[shard.shard_id] = shard

    def write(self, shard_id: int, rows: list[dict]) -> None:
        self.shards[shard_id].write(rows)
        self.access_count.add(len(rows))

    def write_async(self, shard_id: int, rows: list[dict]) -> None:
        """Admit a batch without settling replication (see Shard)."""
        self.shards[shard_id].write_async(rows)
        self.access_count.add(len(rows))

    def settle_writes(self, shard_id: int | None = None) -> None:
        """Durability barrier for one shard (or every hosted shard)."""
        if shard_id is not None:
            self.shards[shard_id].settle_writes()
            return
        for shard in self.shards.values():
            shard.settle_writes()

    def _archive_shard(self, shard: Shard, report: BuildReport) -> None:
        """Archive a shard's sealed memtables, keeping them on failure.

        A builder failure (OSS outage past the retry budget, crash) must
        not lose the memtables that left the row store — otherwise
        acknowledged rows exist neither locally nor on OSS.
        ``archive_memtable`` is all-or-nothing per memtable, so
        ``finish_archive`` settles exactly the archived prefix: the
        shard drains those tables (replicated drain command, or WAL
        archive record) and keeps the rest.
        """
        sealed = shard.take_sealed()
        archived = 0
        try:
            for memtable in sealed:
                self._builder.archive_memtable(memtable, report)
                archived += 1
        finally:
            shard.finish_archive(sealed, archived)

    def archive_once(self) -> BuildReport:
        """Run the background data builder over every shard."""
        report = BuildReport()
        for shard in self.shards.values():
            self._archive_shard(shard, report)
        return report

    def flush_all(self) -> BuildReport:
        """Seal + archive everything (used on rebalance/offload, §4.1.5)."""
        report = BuildReport()
        for shard in self.shards.values():
            shard.seal_active()
            self._archive_shard(shard, report)
        return report

    def pending_rows(self) -> int:
        return sum(shard.pending_rows() for shard in self.shards.values())

    def utilization(self, traffic_rps: float) -> float:
        return traffic_rps / self.capacity_rps if self.capacity_rps > 0 else 0.0
