"""Cluster configuration.

Defaults mirror the paper's §6 testbed where it matters for figure
shapes: 24 workers, α = 0.85, 32 prefetch threads, 300 s balancing
interval.  Capacities are per-worker records/second in the virtual-time
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.codec.registry import DEFAULT_CODEC
from repro.common.errors import ConfigError
from repro.oss.costmodel import OssCostModel, oss_default


@dataclass
class LogStoreConfig:
    """Everything needed to build a :class:`~repro.cluster.logstore.LogStore`."""

    # topology (§6: 24 worker nodes)
    n_workers: int = 24
    shards_per_worker: int = 4
    worker_capacity_rps: float = 100_000.0
    alpha: float = 0.85  # §4.1.1 high watermark ("e.g. 85%")

    # replication (§3: three replicas, one WAL-only)
    replicas: int = 3
    wal_only_replicas: int = 1
    use_raft: bool = False  # full Raft per shard; heavier, on-demand

    # write path (§3 group commit + pipelined replication)
    group_commit: bool = False  # coalesce admitted batches into one proposal
    group_commit_batches: int = 8  # max client batches per group
    group_commit_bytes: int = 1024 * 1024  # max payload bytes per group
    group_commit_linger_s: float = 0.002  # flush deadline for partial groups
    pipeline_depth: int = 8  # in-flight proposals per shard before settling
    write_ack: str = "quorum"  # "quorum" (majority commit) | "all" replicas
    wal_fsync_s: float = 0.0  # simulated fsync charge per non-raft WAL flush
    # WAL segment backend per WAL owner ("shard<N>" for a plain shard,
    # "shard<N>/r<I>" for a Raft replica); None = in-memory default.
    # Chaos runs inject fault-wrapped backends here.
    wal_backend_factory: Optional[Callable[[str], object]] = None

    # traffic control (§4.1)
    balancer: str = "maxflow"  # "none" | "greedy" | "maxflow"
    per_tenant_shard_limit_rps: float = 100_000.0  # §4.1.4 example: 100K/shard
    monitor_interval_s: float = 300.0  # §4.1.3
    # ScaleCluster(): workers added per scale-out event (Algorithm 1 line 25)
    scale_step_workers: int = 4

    # row store / builder
    seal_rows: int = 100_000
    seal_bytes: int = 64 * 1024 * 1024
    codec: str = DEFAULT_CODEC
    block_rows: int = 4096
    target_rows_per_logblock: int = 200_000
    build_indexes: bool = True
    # threads for the per-tenant build stage; 1 = serial reference path
    builder_threads: int = 1

    # storage
    bucket: str = "logstore"
    oss_model: OssCostModel = field(default_factory=oss_default)

    # caches (§5.2: 8 GB memory, 200 GB SSD)
    cache_memory_bytes: int = 8 * 1024 * 1024 * 1024
    cache_ssd_bytes: int = 200 * 1024 * 1024 * 1024
    cache_object_bytes: int = 512 * 1024 * 1024

    # query (§6.3.2: 32 threads)
    prefetch_threads: int = 32
    use_skipping: bool = True
    use_prefetch: bool = True
    # Aggregate pushdown ceiling: 0 = off, 1 = catalog-only,
    # 2 = +SMA fold, 3 = +columnar late materialization.
    agg_pushdown_level: int = 3
    # Front-door semantic-rewrite pass (window → dedup, IS NOT NULL
    # pushdown); off = every window query takes the naive plan.
    use_semantic_rewrite: bool = True
    # §8 vectorized scan kernels; off = interpreted per-row evaluation
    # everywhere (the wall-clock ablation baseline).
    use_vectorized_scan: bool = True
    # Write-side twin: columnar encode kernels in the builder/compactor
    # (byte-identical LogBlocks); off = the per-value reference encoder.
    use_vectorized_encode: bool = True

    # data lifecycle (repro.lifecycle): background retention sweeps and
    # cold tiering, ticked from run_background_tasks().
    lifecycle_sweep_enabled: bool = True
    lifecycle_cold_enabled: bool = True
    cold_codec: str = "lzma"  # cheaper-per-byte codec for aged data
    # Cold members re-chunk at this many rows (0 = reuse
    # target_rows_per_logblock); aged runs repack once at least
    # cold_min_blocks hot blocks qualify.
    cold_target_rows: int = 0
    cold_min_blocks: int = 1

    # SQL front door: live sessions per cluster.
    max_sessions: int = 64

    # observability
    tracing_enabled: bool = True  # hierarchical virtual-clock spans
    trace_max_traces: int = 256  # bounded ring of retained root traces
    slow_query_s: float | None = 2.0  # virtual-latency threshold; None = off
    # Cluster event journal (elections, seals, archives, compactions,
    # backpressure trips, faults, alerts) — bounded and deterministic.
    event_journal_enabled: bool = True
    event_journal_max_events: int = 4096
    # Per-tenant SLO tracking: rolling virtual-time windows with
    # error-budget burn rates; defaults match repro.obs.slo.SloTarget.
    slo_enabled: bool = True
    slo_window_s: float = 3600.0
    slo_p99_query_latency_s: float = 2.0
    slo_write_latency_s: float = 0.5
    slo_goal: float = 0.99
    # Alert rules evaluated at run_background_tasks() ticks; empty =
    # repro.obs.alerts.default_alert_rules().
    alert_rules: tuple = ()

    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ConfigError("n_workers must be positive")
        if self.shards_per_worker <= 0:
            raise ConfigError("shards_per_worker must be positive")
        if self.worker_capacity_rps <= 0:
            raise ConfigError("worker_capacity_rps must be positive")
        if not 0 < self.alpha <= 1:
            raise ConfigError("alpha must be in (0, 1]")
        if self.replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if self.wal_only_replicas >= self.replicas:
            raise ConfigError("need at least one full replica")
        if self.balancer not in ("none", "greedy", "maxflow"):
            raise ConfigError(f"unknown balancer {self.balancer!r}")
        if self.agg_pushdown_level not in (0, 1, 2, 3):
            raise ConfigError("agg_pushdown_level must be 0..3")
        if self.per_tenant_shard_limit_rps <= 0:
            raise ConfigError("per_tenant_shard_limit_rps must be positive")
        if self.builder_threads < 1:
            raise ConfigError("builder_threads must be >= 1")
        if self.group_commit_batches < 1:
            raise ConfigError("group_commit_batches must be >= 1")
        if self.group_commit_bytes <= 0:
            raise ConfigError("group_commit_bytes must be positive")
        if self.group_commit_linger_s < 0:
            raise ConfigError("group_commit_linger_s must be non-negative")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        if self.write_ack not in ("quorum", "all"):
            raise ConfigError(f"unknown write_ack {self.write_ack!r}")
        if self.wal_fsync_s < 0:
            raise ConfigError("wal_fsync_s must be non-negative")
        if self.trace_max_traces < 1:
            raise ConfigError("trace_max_traces must be >= 1")
        if self.max_sessions < 1:
            raise ConfigError("max_sessions must be >= 1")
        if self.cold_target_rows < 0:
            raise ConfigError("cold_target_rows must be >= 0 (0 = target_rows)")
        if self.cold_min_blocks < 1:
            raise ConfigError("cold_min_blocks must be >= 1")
        from repro.codec.registry import available_codecs

        if self.cold_codec not in available_codecs():
            raise ConfigError(f"unknown cold_codec {self.cold_codec!r}")
        if self.slow_query_s is not None and self.slow_query_s < 0:
            raise ConfigError("slow_query_s must be non-negative (or None)")
        if self.event_journal_max_events < 1:
            raise ConfigError("event_journal_max_events must be >= 1")
        if self.slo_window_s <= 0:
            raise ConfigError("slo_window_s must be positive")
        if self.slo_p99_query_latency_s <= 0:
            raise ConfigError("slo_p99_query_latency_s must be positive")
        if self.slo_write_latency_s <= 0:
            raise ConfigError("slo_write_latency_s must be positive")
        if not 0 < self.slo_goal < 1:
            raise ConfigError("slo_goal must be in (0, 1)")

    @property
    def n_shards(self) -> int:
        return self.n_workers * self.shards_per_worker

    @property
    def shard_capacity_rps(self) -> float:
        """A shard's share of its worker's capacity.

        Slightly oversubscribed (×1.2) so a single shard can absorb
        bursts while the worker-level watermark still caps the node.
        """
        return self.worker_capacity_rps / self.shards_per_worker * 1.2

    def worker_id(self, index: int) -> str:
        return f"worker-{index}"

    def worker_of_shard(self, shard_id: int) -> str:
        return self.worker_id(shard_id // self.shards_per_worker)


def small_test_config(**overrides) -> LogStoreConfig:
    """A compact config for unit tests and examples."""
    defaults = dict(
        n_workers=4,
        shards_per_worker=2,
        worker_capacity_rps=10_000.0,
        seal_rows=2_000,
        block_rows=256,
        target_rows_per_logblock=4_000,
        codec="zlib",
        cache_memory_bytes=64 * 1024 * 1024,
        cache_ssd_bytes=256 * 1024 * 1024,
        cache_object_bytes=32 * 1024 * 1024,
        per_tenant_shard_limit_rps=5_000.0,
    )
    defaults.update(overrides)
    return LogStoreConfig(**defaults)
