"""The live hotspot-manager loop: metrics → sample → rebalance.

§4.1.3: the monitor "collects tenant traffic f(Ki), shard load f(Pj)
and worker node load f(Dk) ... It will detect load imbalance every 300
seconds."  This module closes the loop against the *actual* write path:
instead of being handed a traffic dictionary, it derives the sample
from the per-shard/per-tenant counters the brokers and workers maintain,
then runs Algorithm 1 on the controller — scheduled on the cluster's
clock like any other background task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.controller import Controller
from repro.common.clock import VirtualClock
from repro.flow.balancer import ControllerEvent
from repro.flow.monitor import TrafficSample
from repro.metrics.stats import Counter
from repro.obs.registry import MetricsRegistry
from repro.obs.report import TENANT_WRITE_ROWS


class TenantTrafficTracker:
    """Per-tenant write counters with monitor-window deltas.

    The counters are children of the cluster registry's
    ``logstore_tenant_write_rows_total`` family, so the hotspot loop and
    :meth:`LogStore.metrics_report` read the same numbers.  The tracker
    is the family's single *windowing* consumer (see
    :meth:`Counter.window_delta`'s contract); everyone else reads
    snapshots.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters: dict[int, Counter] = {}

    def record(self, tenant_id: int, records: int) -> None:
        counter = self._counters.get(tenant_id)
        if counter is None:
            counter = self._registry.counter(
                TENANT_WRITE_ROWS,
                "Rows ingested per tenant (Figure 13 input).",
                tenant=tenant_id,
            )
            self._counters[tenant_id] = counter
        counter.add(records)

    def window_rates(self, window_s: float) -> dict[int, float]:
        """records/s per tenant since the previous call."""
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        return {
            tenant_id: counter.window_delta() / window_s
            for tenant_id, counter in self._counters.items()
        }


@dataclass
class HotspotLoop:
    """Periodic Algorithm-1 execution wired to live counters."""

    controller: Controller
    tracker: TenantTrafficTracker
    clock: VirtualClock
    events: list[ControllerEvent] = field(default_factory=list)
    _running: bool = False
    _last_tick_s: float = 0.0

    def start(self) -> None:
        """Arm the periodic timer (idempotent)."""
        if self._running:
            return
        self._running = True
        self._last_tick_s = self.clock.now()
        self.clock.call_later(self.controller.config.monitor_interval_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.run_once()
        self.clock.call_later(self.controller.config.monitor_interval_s, self._tick)

    def run_once(self) -> ControllerEvent:
        """Build a sample from the live counters and rebalance."""
        now = self.clock.now()
        window = max(now - self._last_tick_s, 1e-9)
        self._last_tick_s = now
        rates = self.tracker.window_rates(window)
        sample: TrafficSample = self.controller.collect_sample(rates)
        event = self.controller.rebalance(sample)
        self.events.append(event)
        return event
