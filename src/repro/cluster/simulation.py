"""Ingest simulation for the load-balancing experiments (Figures 12–14).

Python cannot physically push 50M records/s, so throughput/latency under
different balancing policies is computed with a discrete-window queueing
model over the *real* routing tables produced by the real balancers:

* each window, tenant traffic is split across shards by the current
  routing rules (exactly what brokers would do);
* a worker processes at most ``capacity`` records/s; its shards share
  the worker proportionally to offered load;
* unprocessed records accumulate in per-shard backlogs; batch write
  latency is service time plus backlog drain time (a fluid M/D/1 view);
* when a shard's backlog exceeds the BFC limit, new records for it are
  rejected (§4.2) — throughput degrades instead of memory exploding;
* every ``monitor_interval_s`` the controller's hotspot manager runs,
  exactly as Algorithm 1 prescribes, possibly rewriting the routes.

The figure shapes (throughput collapse without balancing at high θ,
recovery with greedy/max-flow, stddev reductions) emerge from the model
rather than being baked in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.controller import Controller
from repro.metrics.stats import AccessStats
from repro.common.utils import stddev


@dataclass
class WindowMetrics:
    """Per-window aggregate measurements."""

    time_s: float
    offered_rps: float
    processed_rps: float
    rejected_rps: float
    mean_batch_latency_s: float
    routes: int


@dataclass
class SimulationResult:
    """Everything the Figure 12–14 benches read out."""

    windows: list[WindowMetrics] = field(default_factory=list)
    shard_accesses: AccessStats = field(default_factory=AccessStats)
    worker_accesses: AccessStats = field(default_factory=AccessStats)
    rebalances: int = 0

    def mean_throughput_rps(self) -> float:
        if not self.windows:
            return 0.0
        return sum(w.processed_rps for w in self.windows) / len(self.windows)

    def steady_state_throughput_rps(self, tail_fraction: float = 0.5) -> float:
        """Throughput over the last ``tail_fraction`` of the run."""
        if not self.windows:
            return 0.0
        tail = self.windows[int(len(self.windows) * (1 - tail_fraction)) :]
        return sum(w.processed_rps for w in tail) / len(tail)

    def mean_batch_latency_s(self, tail_fraction: float = 0.5) -> float:
        if not self.windows:
            return 0.0
        tail = self.windows[int(len(self.windows) * (1 - tail_fraction)) :]
        return sum(w.mean_batch_latency_s for w in tail) / len(tail)

    def final_routes(self) -> int:
        return self.windows[-1].routes if self.windows else 0

    def shard_access_stddev(self) -> float:
        return self.shard_accesses.stddev()

    def worker_access_stddev(self) -> float:
        return self.worker_accesses.stddev()


@dataclass
class IngestModelParams:
    """Queueing-model constants."""

    window_s: float = 10.0
    batch_size: int = 1000  # §6.2 latency "for writing a batch of 1000"
    base_latency_s: float = 0.005  # WAL sync + local write on an idle shard
    bfc_backlog_limit_s: float = 30.0  # reject when backlog > this many
    # seconds of shard capacity (sync/apply queues full, §4.2)


class IngestSimulator:
    """Runs the windowed model against a controller's routing state."""

    def __init__(
        self,
        controller: Controller,
        tenant_traffic: dict[int, float],
        params: IngestModelParams | None = None,
    ) -> None:
        self._controller = controller
        self._traffic = dict(tenant_traffic)
        self.params = params if params is not None else IngestModelParams()
        self._backlog: dict[int, float] = {
            shard: 0.0 for shard in controller.topology.shards
        }
        for tenant_id in self._traffic:
            controller.ensure_route(tenant_id)

    def _route_traffic(self) -> dict[int, dict[int, float]]:
        """tenant → shard → offered records/s under current rules."""
        routing = self._controller.routing
        out: dict[int, dict[int, float]] = {}
        for tenant_id, traffic in self._traffic.items():
            rule = routing.rule_for(tenant_id)
            assert rule is not None
            out[tenant_id] = {shard: traffic * weight for shard, weight in rule.weights}
        return out

    def _step(self, now_s: float, result: SimulationResult) -> WindowMetrics:
        params = self.params
        topology = self._controller.topology
        route_traffic = self._route_traffic()

        # Offered load per shard, with BFC rejection of over-backlogged shards.
        shard_offered: dict[int, float] = {shard: 0.0 for shard in topology.shards}
        rejected = 0.0
        for flows in route_traffic.values():
            for shard, rate in flows.items():
                limit_s = params.bfc_backlog_limit_s
                capacity = topology.shard_capacity[shard]
                if self._backlog[shard] > limit_s * capacity:
                    rejected += rate  # backpressure: reject at ingress
                else:
                    shard_offered[shard] += rate

        # Workers serve their shards proportionally to offered + backlog.
        # The binding processing constraint is the *worker's* capacity: a
        # shard is a queue on its worker, and idle cores drain whichever
        # shard has work (shard capacity only matters to the balancer's
        # flow network, where it spreads tenants).
        shard_processed: dict[int, float] = {}
        worker_utilization: dict[str, float] = {}
        for worker in topology.workers:
            shards = topology.shards_on(worker)
            demand = {
                s: shard_offered[s] + self._backlog[s] / params.window_s for s in shards
            }
            total_demand = sum(demand.values())
            capacity = topology.worker_capacity[worker]
            worker_utilization[worker] = (
                sum(shard_offered[s] for s in shards) / capacity if capacity else 0.0
            )
            if total_demand <= capacity or total_demand == 0:
                served = demand
            else:
                scale = capacity / total_demand
                served = {s: d * scale for s, d in demand.items()}
            for shard in shards:
                shard_processed[shard] = served[shard]

        # Update backlogs and access counters.
        processed_total = 0.0
        for shard in topology.shards:
            arriving = shard_offered[shard] * params.window_s
            serving = shard_processed[shard] * params.window_s
            backlog = self._backlog[shard] + arriving - serving
            self._backlog[shard] = max(0.0, backlog)
            drained = min(arriving + self._backlog[shard], serving)
            processed_total += drained / params.window_s
            result.shard_accesses.record(shard, shard_processed[shard] * params.window_s)
            worker = topology.shard_worker[shard]
            result.worker_accesses.record(worker, shard_processed[shard] * params.window_s)

        # Batch latency: traffic-weighted over tenants and their shards.
        # Fluid model: WAL-sync base cost, batch service time at the
        # worker, a mild M/M/1-style congestion term (capped), and the
        # dominant component under overload — draining the shard backlog.
        weighted_latency = 0.0
        total_rate = 0.0
        for tenant_id, flows in route_traffic.items():
            for shard, rate in flows.items():
                if rate <= 0:
                    continue
                worker = topology.shard_worker[shard]
                capacity = topology.worker_capacity[worker]
                service_rate = max(shard_processed.get(shard, 0.0), 1e-9)
                queue_delay = self._backlog[shard] / service_rate
                utilization = min(worker_utilization[worker], 0.95)
                congestion = 1.0 + utilization * utilization / (1.0 - utilization)
                batch_time = params.batch_size / capacity
                weighted_latency += rate * (
                    params.base_latency_s * congestion + batch_time + queue_delay
                )
                total_rate += rate
        mean_latency = weighted_latency / total_rate if total_rate else 0.0

        offered = sum(self._traffic.values())
        return WindowMetrics(
            time_s=now_s,
            offered_rps=offered,
            processed_rps=processed_total,
            rejected_rps=rejected,
            mean_batch_latency_s=mean_latency,
            routes=self._controller.routing.total_routes(),
        )

    def run(self, duration_s: float, rebalance: bool = True) -> SimulationResult:
        """Simulate ``duration_s`` of ingest; returns all measurements."""
        result = SimulationResult()
        params = self.params
        interval = self._controller.config.monitor_interval_s
        next_rebalance = interval
        now = 0.0
        while now < duration_s:
            window = self._step(now, result)
            result.windows.append(window)
            now += params.window_s
            if rebalance and now >= next_rebalance:
                # Build the sample from *measured* route traffic, like the
                # monitor module does in production.
                sample = self._controller.collect_sample(self._traffic)
                event = self._controller.rebalance(sample)
                if event.rebalanced:
                    result.rebalances += 1
                next_rebalance += interval
        return result

    def window_shard_rates(self) -> dict[int, float]:
        """Current per-shard offered rates (for detail plots)."""
        rates: dict[int, float] = {shard: 0.0 for shard in self._controller.topology.shards}
        for flows in self._route_traffic().values():
            for shard, rate in flows.items():
                rates[shard] += rate
        return rates

    def worker_utilization(self) -> dict[str, float]:
        """Offered/capacity per worker under the current routes."""
        topology = self._controller.topology
        rates = self.window_shard_rates()
        out: dict[str, float] = {}
        for worker in topology.workers:
            offered = sum(rates[s] for s in topology.shards_on(worker))
            out[worker] = offered / topology.worker_capacity[worker]
        return out


def access_stddev_series(
    controller: Controller,
    tenant_traffic: dict[int, float],
) -> tuple[float, float]:
    """(shard_std, worker_std) of access rates under the current routes."""
    topology = controller.topology
    shard_rates: dict[int, float] = {shard: 0.0 for shard in topology.shards}
    for tenant_id, traffic in tenant_traffic.items():
        controller.ensure_route(tenant_id)
        rule = controller.routing.rule_for(tenant_id)
        assert rule is not None
        for shard, weight in rule.weights:
            shard_rates[shard] += traffic * weight
    worker_rates: dict[str, float] = {worker: 0.0 for worker in topology.workers}
    for shard, rate in shard_rates.items():
        worker_rates[topology.shard_worker[shard]] += rate
    return stddev(list(shard_rates.values())), stddev(list(worker_rates.values()))
