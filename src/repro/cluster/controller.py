"""Controller: cluster manager, metadata, hotspot + task scheduling.

Mirrors Figure 3's controller box: it owns the catalog (metadata DB),
builds the cluster topology, initializes routing via consistent hashing
(Algorithm 1 lines 4–7), runs the hotspot manager (monitor → balancer →
router), and schedules background tasks (archiving, expiry).
"""

from __future__ import annotations

from repro.builder.builder import BuildReport
from repro.cluster.config import LogStoreConfig
from repro.cluster.worker import Worker
from repro.common.clock import VirtualClock
from repro.flow.balancer import (
    Balancer,
    ControllerEvent,
    GlobalTrafficController,
    GreedyBalancer,
    MaxFlowBalancer,
    NoBalancer,
)
from repro.flow.consistent_hash import ConsistentHashRing
from repro.flow.graph import ClusterTopology
from repro.flow.monitor import TrafficMonitor, TrafficSample
from repro.flow.router import RouteRule, RoutingTable
from repro.meta.catalog import Catalog
from repro.meta.expiry import ExpiryReport, ExpiryTask
from repro.oss.metered import MeteredObjectStore


def build_topology(config: LogStoreConfig) -> ClusterTopology:
    """Shard/worker layout with capacities from the config."""
    shard_worker = {
        shard_id: config.worker_of_shard(shard_id) for shard_id in range(config.n_shards)
    }
    shard_capacity = {shard_id: config.shard_capacity_rps for shard_id in range(config.n_shards)}
    worker_capacity = {
        config.worker_id(i): config.worker_capacity_rps for i in range(config.n_workers)
    }
    return ClusterTopology(shard_worker, shard_capacity, worker_capacity, alpha=config.alpha)


def make_balancer(config: LogStoreConfig, topology: ClusterTopology) -> Balancer:
    if config.balancer == "none":
        return NoBalancer()
    if config.balancer == "greedy":
        return GreedyBalancer(topology, config.per_tenant_shard_limit_rps)
    return MaxFlowBalancer(topology, config.per_tenant_shard_limit_rps)


class Controller:
    """The (single, elected) active controller node."""

    def __init__(
        self,
        config: LogStoreConfig,
        catalog: Catalog,
        store: MeteredObjectStore,
        clock: VirtualClock,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self._store = store
        self._clock = clock
        self.topology = build_topology(config)
        self.ring = ConsistentHashRing(self.topology.shards)
        self.routing = RoutingTable()
        self.hotspot_manager = GlobalTrafficController(
            self.topology,
            TrafficMonitor(self.topology),
            make_balancer(config, self.topology),
            self.routing,
            balancer_factory=lambda topology: make_balancer(config, topology),
            interval_s=config.monitor_interval_s,
        )
        self._expiry = ExpiryTask(catalog, store, config.bucket)
        self.workers: dict[str, Worker] = {}

    # -- routing ---------------------------------------------------------

    def ensure_route(self, tenant_id: int) -> None:
        """Initial placement: ConsistentHash(K_i) with weight 100%."""
        if self.routing.rule_for(tenant_id) is None:
            shard = self.ring.shard_for(tenant_id)
            self.routing.set_rule(RouteRule.from_dict(tenant_id, {shard: 1.0}))

    # -- hotspot management ---------------------------------------------

    def retarget(self, topology: ClusterTopology) -> None:
        """Swap in a new topology (scale-out, node failure) atomically:
        the hotspot manager's monitor and balancer are rebuilt against
        it while the routing table is preserved."""
        self.topology = topology
        manager = self.hotspot_manager
        manager.topology = topology
        manager._monitor = TrafficMonitor(topology)
        manager._balancer = make_balancer(self.config, topology)

    def set_scale_hook(self, hook) -> None:
        """Install the ScaleCluster() implementation (Algorithm 1 line 25).

        ``hook`` must provision new workers/shards and return the new
        :class:`ClusterTopology`.
        """
        self.hotspot_manager.scale_cluster = hook

    def rebalance(self, sample: TrafficSample) -> ControllerEvent:
        """One Algorithm-1 iteration against a traffic sample."""
        event = self.hotspot_manager.run_once(sample, now_s=self._clock.now())
        # ScaleCluster() may have replaced the topology; stay in sync.
        self.topology = self.hotspot_manager.topology
        return event

    def collect_sample(self, tenant_traffic: dict[int, float]) -> TrafficSample:
        """Build a monitoring sample from offered traffic + routing rules."""
        route_traffic: dict[int, dict[int, float]] = {}
        for tenant_id, traffic in tenant_traffic.items():
            self.ensure_route(tenant_id)
            rule = self.routing.rule_for(tenant_id)
            assert rule is not None
            route_traffic[tenant_id] = {
                shard: traffic * weight for shard, weight in rule.weights
            }
        return TrafficSample(tenant_traffic=dict(tenant_traffic), route_traffic=route_traffic)

    # -- background tasks -------------------------------------------------

    def register_worker(self, worker: Worker) -> None:
        self.workers[worker.worker_id] = worker

    def archive_all(self) -> BuildReport:
        """Run the data builder on every worker (checkpoint task)."""
        report = BuildReport()
        for worker in self.workers.values():
            report.merge(worker.archive_once())
        return report

    def flush_all(self) -> BuildReport:
        """Seal + archive everything on every worker."""
        report = BuildReport()
        for worker in self.workers.values():
            report.merge(worker.flush_all())
        return report

    def expire_data(self, now_ts: int) -> ExpiryReport:
        """Run the retention sweep (task manager, §3.1)."""
        return self._expiry.run(now_ts)
