"""Shard: the unit of placement and write processing.

Each shard owns a write-optimized row store.  With ``use_raft`` enabled
it fronts the row store with a three-replica Raft group (one WAL-only
replica, §3); writes are proposed as serialized batches and applied to
the row stores of the full replicas.  Without Raft the shard still
writes a local WAL before the row store (phase 1 of §3's write path is
"generating the WAL ... and writing to local disks") and can recover
its unarchived rows from it after a crash; replication is simply absent,
which is what the load-balancing experiments want.
"""

from __future__ import annotations

import pickle

from repro.common.clock import VirtualClock
from repro.common.errors import ClusterError
from repro.metrics.stats import Counter
from repro.raft.group import RaftGroup
from repro.raft.messages import LogEntry
from repro.rowstore.store import RowStore
from repro.wal.log import SegmentBackend, WriteAheadLog

# Shard-level WAL entry kinds.
_WAL_KIND_BATCH = 20
_WAL_KIND_CHECKPOINT = 21


class Shard:
    """One shard hosted on one worker."""

    def __init__(
        self,
        shard_id: int,
        worker_id: str,
        capacity_rps: float,
        seal_rows: int,
        seal_bytes: int,
        clock: VirtualClock,
        use_raft: bool = False,
        replicas: int = 3,
        wal_only_replicas: int = 1,
        wal_backend: SegmentBackend | None = None,
        seed: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.capacity_rps = capacity_rps
        self._clock = clock
        self.write_count = Counter(f"shard{shard_id}.writes")
        self.access_count = Counter(f"shard{shard_id}.accesses")

        self._use_raft = use_raft
        if use_raft:
            self._replica_stores: dict[str, RowStore] = {}

            def apply_factory(node_id: str):
                store = RowStore(seal_rows=seal_rows, seal_bytes=seal_bytes)
                self._replica_stores[node_id] = store

                def apply(entry: LogEntry) -> None:
                    rows = pickle.loads(entry.command)
                    store.append_many(rows)

                return apply

            def snapshot_factory(node_id: str):
                store = self._replica_stores.get(node_id)
                if store is None:
                    return None
                return store.serialize_state, store.install_state

            self._raft = RaftGroup(
                f"shard{shard_id}",
                clock,
                apply_factory,
                n_replicas=replicas,
                wal_only_replicas=wal_only_replicas,
                snapshot_factory=snapshot_factory,
                seed=seed + shard_id,
            )
            self._raft.wait_for_leader()
            # The "primary" store is the first full replica's.
            first_full = self._raft.full_replicas()[0]
            self.rowstore = self._replica_stores[first_full.node_id]
        else:
            self._raft = None
            self.rowstore = RowStore(seal_rows=seal_rows, seal_bytes=seal_bytes)
            self._wal = WriteAheadLog(wal_backend)
            self._recover_from_wal()

    @property
    def raft(self) -> RaftGroup | None:
        return self._raft

    def _recover_from_wal(self) -> None:
        """Rebuild the row store from the shard WAL (crash recovery).

        The last checkpoint carries a serialized row-store state;
        batches recorded after it are replayed on top.
        """
        state: bytes | None = None
        batches: list[bytes] = []
        for record in self._wal.replay():
            if record.kind == _WAL_KIND_CHECKPOINT:
                state = record.body
                batches = []
            elif record.kind == _WAL_KIND_BATCH:
                batches.append(record.body)
        if state is None and not batches:
            return
        if state is not None:
            self.rowstore.install_state(state)
        for body in batches:
            self.rowstore.append_many(pickle.loads(body))

    def write(self, rows: list[dict]) -> None:
        """Ingest a batch of rows (WAL first, then the row store)."""
        if not rows:
            return
        if self._raft is not None:
            self._raft.propose(pickle.dumps(rows))
        else:
            self._wal.append(_WAL_KIND_BATCH, pickle.dumps(rows))
            self.rowstore.append_many(rows)
        self.write_count.add(len(rows))
        self.access_count.add(len(rows))

    def checkpoint(self) -> int:
        """The §3 checkpoint task.

        Raft shards snapshot their replicated log; plain shards write a
        row-store snapshot into the WAL and truncate older segments.
        Returns the snapshot index (Raft) or the WAL sequence of the
        checkpoint record.
        """
        if self._raft is not None:
            return self._raft.checkpoint()
        sequence = self._wal.append(_WAL_KIND_CHECKPOINT, self.rowstore.serialize_state())
        self._wal.truncate_before(sequence)
        return sequence

    def scan_realtime(self, min_ts=None, max_ts=None, tenant_id=None):
        """Rows still in the local row store (not yet archived)."""
        self.access_count.add()
        return self.rowstore.scan(min_ts=min_ts, max_ts=max_ts, tenant_id=tenant_id)

    def pending_rows(self) -> int:
        return self.rowstore.row_count()

    def verify_raft_consistency(self) -> None:
        """Assert full replicas agree on row counts (test hook)."""
        if self._raft is None:
            return
        counts = {
            node.node_id: self._replica_stores[node.node_id].total_rows_ingested
            for node in self._raft.full_replicas()
            if node.commit_index == node.last_applied
        }
        if len(set(counts.values())) > 1:
            raise ClusterError(f"replica divergence on shard {self.shard_id}: {counts}")
