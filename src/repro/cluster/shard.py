"""Shard: the unit of placement and write processing.

Each shard owns a write-optimized row store.  With ``use_raft`` enabled
it fronts the row store with a three-replica Raft group (one WAL-only
replica, §3); writes are proposed as serialized batches and applied to
the row stores of the full replicas.  Without Raft the shard still
writes a local WAL before the row store (phase 1 of §3's write path is
"generating the WAL ... and writing to local disks") and can recover
its unarchived rows from it after a crash; replication is simply absent,
which is what the load-balancing experiments want.
"""

from __future__ import annotations

import pickle

from typing import Callable

from repro.common.clock import VirtualClock
from repro.common.errors import BackpressureError, ClusterError, NotLeaderError, RaftError
from repro.metrics.stats import WritePathStats
from repro.obs.context import Observability
from repro.obs.recorders import WritePathRecorder
from repro.raft.group import RaftGroup
from repro.raft.group_commit import GroupCommitQueue, ReplicationPipeline
from repro.raft.messages import LogEntry
from repro.rowstore.memtable import MemTable
from repro.rowstore.store import RowStore
from repro.wal.log import SegmentBackend, WriteAheadLog

# Shard-level WAL entry kinds.
_WAL_KIND_BATCH = 20
_WAL_KIND_CHECKPOINT = 21
_WAL_KIND_ARCHIVE = 22
_WAL_KIND_SEAL = 23

# Replicated shard command marking the first N sealed memtables as
# archived to OSS (they leave every replica's row store at the same log
# position).  Pickled row batches always start with the pickle protocol
# opcode, so the prefix cannot collide with a data command.
_CMD_DRAIN_PREFIX = b"\x01shard-drain:"

# Replicated command sealing the active memtable (flush path).  Sealing
# must go through the log on replicated shards: a local seal on one
# replica's store would diverge the seal boundaries — and therefore the
# drain prefixes — across the group.
_CMD_SEAL = b"\x01shard-seal"


class Shard:
    """One shard hosted on one worker."""

    def __init__(
        self,
        shard_id: int,
        worker_id: str,
        capacity_rps: float,
        seal_rows: int,
        seal_bytes: int,
        clock: VirtualClock,
        use_raft: bool = False,
        replicas: int = 3,
        wal_only_replicas: int = 1,
        wal_backend: SegmentBackend | None = None,
        group_commit: bool = False,
        group_commit_batches: int = 8,
        group_commit_bytes: int = 1024 * 1024,
        group_commit_linger_s: float = 0.002,
        pipeline_depth: int = 8,
        write_ack: str = "quorum",
        wal_fsync_s: float = 0.0,
        wal_backend_factory: Callable[[str], SegmentBackend] | None = None,
        seed: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.capacity_rps = capacity_rps
        self.seal_rows = seal_rows
        self.seal_bytes = seal_bytes
        self._clock = clock
        self._write_ack = write_ack
        self._wal_fsync_s = wal_fsync_s
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self.write_count = registry.counter(
            "logstore_shard_write_rows_total",
            "Rows written per shard (Figure 13 input).",
            shard=shard_id,
        )
        self.access_count = registry.counter(
            "logstore_shard_accesses_total",
            "Write + scan accesses per shard (Figure 13 input).",
            shard=shard_id,
        )
        # One recorder shared by the group-commit queue and the
        # replication pipeline: all write-path metrics of this shard
        # land in one ``shard=…`` label set.
        self._write_recorder = WritePathRecorder(registry, shard=shard_id)

        self._use_raft = use_raft
        self._pending_drain = 0
        self._drain_target = 0  # cumulative memtables settled as drained
        if use_raft:
            self._replica_stores: dict[str, RowStore] = {}
            self._rowstore = None

            def apply_factory(node_id: str):
                store = RowStore(seal_rows=seal_rows, seal_bytes=seal_bytes)
                self._replica_stores[node_id] = store

                def apply(entry: LogEntry) -> None:
                    if entry.command == _CMD_SEAL:
                        store.seal_active()
                    elif entry.command.startswith(_CMD_DRAIN_PREFIX):
                        # The command carries the *cumulative* drain
                        # target, so re-proposals after an indeterminate
                        # settle apply idempotently (drop = 0).
                        target = int(entry.command[len(_CMD_DRAIN_PREFIX) :])
                        drop = target - store.sealed_dropped
                        if drop > 0:
                            store.drop_sealed_prefix(drop)
                    else:
                        rows = pickle.loads(entry.command)
                        store.append_many(rows)

                return apply

            def snapshot_factory(node_id: str):
                store = self._replica_stores.get(node_id)
                if store is None:
                    return None
                return store.serialize_state, store.install_state

            wal_factory = None
            if wal_backend_factory is not None:
                wal_factory = lambda node_id: WriteAheadLog(wal_backend_factory(node_id))
            self._raft = RaftGroup(
                f"shard{shard_id}",
                clock,
                apply_factory,
                n_replicas=replicas,
                wal_only_replicas=wal_only_replicas,
                snapshot_factory=snapshot_factory,
                wal_factory=wal_factory,
                seed=seed + shard_id,
                tracer=self._obs.tracer if self._obs.tracer.enabled else None,
                journal=self._obs.journal,
            )
            self._raft.wait_for_leader()
            self._pipeline = ReplicationPipeline(
                self._raft,
                clock,
                depth=pipeline_depth,
                ack=write_ack,
                recorder=self._write_recorder,
                tracer=self._obs.tracer,
                span_attrs={"shard": shard_id},
            )
            self._group_queue = None
            if group_commit:
                self._group_queue = GroupCommitQueue(
                    self._flush_group,
                    clock,
                    max_batches=group_commit_batches,
                    max_bytes=group_commit_bytes,
                    linger_s=group_commit_linger_s,
                    size_of=self._batch_bytes,
                    admit=self._admit_batch,
                    throttle_fn=self._leader_throttle,
                    recorder=self._write_recorder,
                    tracer=self._obs.tracer,
                    span_attrs={"shard": shard_id},
                )
        else:
            self._raft = None
            self._pipeline = None
            self._group_queue = None
            self._rowstore = RowStore(seal_rows=seal_rows, seal_bytes=seal_bytes)
            if wal_backend is None and wal_backend_factory is not None:
                wal_backend = wal_backend_factory(f"shard{shard_id}")
            self._wal = WriteAheadLog(wal_backend)
            self._recover_from_wal()

    @property
    def raft(self) -> RaftGroup | None:
        return self._raft

    @property
    def rowstore(self) -> RowStore:
        """The store quorum-acked reads are served from.

        Replicated shards serve from the *current* leader's replica:
        with quorum acks the leader is the one replica guaranteed to
        have applied a settled write.  When no live full-replica leader
        exists (election in flight, leader crashed, WAL-only leader),
        fall back to the live full replica that has applied the most —
        ties broken by node id so every run picks the same store.
        """
        if self._raft is None:
            return self._rowstore
        leader = self._raft.leader()
        if leader is not None and not leader.stopped and leader.node_id in self._replica_stores:
            return self._replica_stores[leader.node_id]
        candidates = [n for n in self._raft.full_replicas() if not n.stopped]
        if not candidates:
            candidates = self._raft.full_replicas()
        best = max(candidates, key=lambda n: (n.last_applied, n.node_id))
        return self._replica_stores[best.node_id]

    @property
    def write_stats(self) -> WritePathStats:
        """Typed view over this shard's write-path metrics."""
        return self._write_recorder.view()

    def _recover_from_wal(self) -> None:
        """Rebuild the row store from the shard WAL (crash recovery).

        The last checkpoint carries a serialized row-store state; batch,
        seal and archive records after it replay on top, in WAL order —
        seal records re-cut explicit (below-threshold) seal boundaries
        that batch replay alone would not re-derive, and archive records
        drop sealed memtables that reached OSS before the crash, so
        recovery re-creates neither lost *nor duplicate* rows.
        """
        state: bytes | None = None
        tail: list = []
        for record in self._wal.replay():
            if record.kind == _WAL_KIND_CHECKPOINT:
                state = record.body
                tail = []
            elif record.kind in (_WAL_KIND_BATCH, _WAL_KIND_ARCHIVE, _WAL_KIND_SEAL):
                tail.append(record)
        if state is None and not tail:
            return
        if state is not None:
            self._rowstore.install_state(state)
        for record in tail:
            if record.kind == _WAL_KIND_BATCH:
                self._rowstore.append_many(pickle.loads(record.body))
            elif record.kind == _WAL_KIND_SEAL:
                self._rowstore.seal_active()
            else:
                self._rowstore.drop_sealed_prefix(int(record.body))

    # -- write path -----------------------------------------------------

    @staticmethod
    def _batch_bytes(rows: list[dict]) -> int:
        return len(pickle.dumps(rows))

    def _leader_throttle(self) -> float:
        leader = self._raft.leader() if self._raft is not None else None
        return leader.backpressure.throttle if leader is not None else 1.0

    def _admit_batch(self, batch: list[dict]) -> None:
        """§4.2 admission gate: reject before buffering when the leader's
        sync queue cannot hold the whole pending group plus this batch."""
        leader = self._raft.leader()
        if leader is None:
            return  # election in flight; replication settles it later
        # The whole pending group flushes as ONE log entry carrying the
        # concatenated rows, so gate on one entry of the combined size.
        nbytes = self._group_queue.pending_bytes + self._batch_bytes(batch)
        if not leader.sync_queue.can_accept(1, nbytes):
            leader.sync_queue.stats.rejected += 1
            leader.backpressure.update()
            self._obs.journal.emit(
                "shard.backpressure.trip",
                f"shard{self.shard_id}",
                detail=f"sync queue full ({nbytes} bytes pending)",
            )
            raise BackpressureError(
                f"shard {self.shard_id}: sync queue cannot admit batch "
                f"({len(self._group_queue) + 1} pending batches, {nbytes} bytes)"
            )

    def _flush_group(self, batches: list[list[dict]]) -> None:
        """Commit a coalesced group: one command, one Raft entry."""
        rows = [row for batch in batches for row in batch]
        self._pipeline.submit(pickle.dumps(rows))
        self._write_recorder.rows_committed.add(len(rows))

    def write(self, rows: list[dict]) -> None:
        """Ingest a batch of rows and wait for the configured ack."""
        self.write_async(rows)
        self.settle_writes()

    def write_async(self, rows: list[dict]) -> None:
        """Admit a batch without waiting for replication to settle.

        Raft shards push into the group-commit queue (when enabled) or
        straight into the bounded replication pipeline; a later
        :meth:`settle_writes` is the durability barrier.  Non-raft
        shards write through synchronously as before.  Raises
        :class:`BackpressureError` when §4.2 flow control rejects the
        batch — nothing is admitted in that case.
        """
        if not rows:
            return
        with self._obs.tracer.span(
            "shard.write", shard=self.shard_id, rows=len(rows)
        ):
            if self._raft is not None:
                if self._group_queue is not None:
                    self._group_queue.offer(list(rows))
                else:
                    self._pipeline.submit(pickle.dumps(rows))
                    self._write_recorder.groups_committed.add()
                    self._write_recorder.batches_coalesced.add()
                    self._write_recorder.rows_committed.add(len(rows))
            else:
                if self._wal_fsync_s > 0:
                    self._clock.sleep(self._wal_fsync_s)
                self._wal.append(_WAL_KIND_BATCH, pickle.dumps(rows))
                self.rowstore.append_many(rows)
        self.write_count.add(len(rows))
        self.access_count.add(len(rows))

    def settle_writes(self, timeout_s: float = 5.0) -> None:
        """Flush any partial group and drain the replication window.

        A flush refused by replication backpressure is retried after
        settling the in-flight window (which drains the leader's sync
        queue), so this is the barrier after which every admitted batch
        has reached the configured ack.
        """
        if self._raft is None:
            return
        if self._group_queue is not None:
            deadline = self._clock.now() + timeout_s
            while True:
                try:
                    self._group_queue.flush()
                    break
                except BackpressureError:
                    if self._clock.now() >= deadline:
                        raise
                    self._pipeline.settle()
                    self._clock.advance(0.01)
        self._pipeline.settle()

    def checkpoint(self) -> int:
        """The §3 checkpoint task.

        Raft shards snapshot their replicated log; plain shards write a
        row-store snapshot into the WAL and truncate older segments.
        Returns the snapshot index (Raft) or the WAL sequence of the
        checkpoint record.
        """
        if self._raft is not None:
            return self._raft.checkpoint()
        sequence = self._wal.append(_WAL_KIND_CHECKPOINT, self.rowstore.serialize_state())
        self._wal.truncate_before(sequence)
        return sequence

    # -- archiving ------------------------------------------------------

    def seal_active(self) -> None:
        """Seal the active memtable (flush path).

        Replicated shards propose the seal through the log so every
        replica cuts the same boundary; a local seal would diverge the
        groups' drain prefixes.  If the command's settle times out and
        a duplicate later commits, the second copy seals an empty (or
        tiny) memtable — harmless, and identical on every replica.

        Plain shards log the seal to the WAL first: replay re-derives
        threshold seals from batch records, but an explicit seal of a
        below-threshold memtable would otherwise vanish on recovery
        while a later archive record still counts it in its drop — the
        same unlogged-seal divergence the Raft path solves with the
        replicated command.
        """
        if self._raft is None:
            if len(self._rowstore.active):
                rows = len(self._rowstore.active)
                self._wal.append(_WAL_KIND_SEAL, b"")
                self._rowstore.seal_active()
                self._obs.journal.emit(
                    "shard.seal", f"shard{self.shard_id}", detail=f"rows={rows}"
                )
            return
        leader = self._raft.leader()
        if leader is None or not len(self.rowstore.active):
            return
        rows = len(self.rowstore.active)
        try:
            index = leader.propose(_CMD_SEAL)
            self._raft.settle_acked(index, ack=self._write_ack)
        except (RaftError, NotLeaderError, BackpressureError):
            return
        self._obs.journal.emit(
            "shard.seal", f"shard{self.shard_id}", detail=f"rows={rows}"
        )

    def take_sealed(self) -> list[MemTable]:
        """Sealed memtables ready for the data builder.

        Replicated shards *snapshot* the primary's sealed list without
        removing anything — removal happens through a replicated drain
        command in :meth:`finish_archive`, so a crash mid-archive never
        loses rows and a leadership change never resurrects archived
        ones.  Plain shards remove the tables (the WAL protects them).
        """
        if self._raft is None:
            return self._rowstore.take_sealed()
        self._flush_pending_drain()
        store = self.rowstore
        # Skip tables that are archived but whose drain has not applied
        # on this store yet (pending, or settled but still in-flight).
        skip = max(0, self._drain_target + self._pending_drain - store.sealed_dropped)
        return list(store.sealed_tables)[skip:]

    def finish_archive(self, taken: list[MemTable], archived: int) -> None:
        """Settle an archive attempt over tables from :meth:`take_sealed`.

        ``archived`` is how many of ``taken`` (a prefix — the builder
        archives in order) actually reached OSS + catalog.  Replicated
        shards propose a drain command so every replica discards the
        archived prefix at the same log position; if no leader is
        reachable (partition), the drain stays pending and is retried
        on the next archive cycle.  Plain shards log the drop to the
        WAL and restore the un-archived suffix to the row store.
        """
        if self._raft is None:
            if archived:
                self._wal.append(_WAL_KIND_ARCHIVE, str(archived).encode())
            if archived < len(taken):
                self._rowstore.restore_sealed(taken[archived:])
            return
        self._pending_drain += archived
        self._flush_pending_drain()

    def _flush_pending_drain(self) -> None:
        """Try to replicate the pending drain; keep it on failure.

        The command carries the cumulative target (``_drain_target`` +
        pending) rather than a relative count: a settle that times out
        leaves the command's fate unknown, and a relative retry would
        double-drop if the first copy later committed.  An absolute
        target makes any number of committed copies equivalent.
        """
        if not self._pending_drain or self._raft is None:
            return
        leader = self._raft.leader()
        if leader is None:
            return
        target = self._drain_target + self._pending_drain
        command = _CMD_DRAIN_PREFIX + str(target).encode()
        try:
            index = leader.propose(command)
            self._raft.settle_acked(index, ack=self._write_ack)
        except (RaftError, NotLeaderError, BackpressureError):
            return
        self._drain_target = target
        self._pending_drain = 0

    # -- fault injection -------------------------------------------------

    def crash_replica(self, node_id: str) -> None:
        """Hard-crash one Raft replica (volatile state lost, WAL kept)."""
        if self._raft is None:
            raise ClusterError(f"shard {self.shard_id} has no replicas to crash")
        self._raft.crash_node(node_id)

    def recover_replica(self, node_id: str) -> None:
        """Recover a crashed replica from its WAL (fresh row store)."""
        if self._raft is None:
            raise ClusterError(f"shard {self.shard_id} has no replicas to recover")
        self._raft.recover_node(node_id)

    def replica_store(self, node_id: str) -> RowStore | None:
        """A specific replica's row store (invariant checks)."""
        if self._raft is None:
            return None
        return self._replica_stores.get(node_id)

    def scan_realtime(self, min_ts=None, max_ts=None, tenant_id=None):
        """Rows still in the local row store (not yet archived)."""
        self.access_count.add()
        if not self._obs.tracer.enabled:
            return self.rowstore.scan(min_ts=min_ts, max_ts=max_ts, tenant_id=tenant_id)
        with self._obs.tracer.span("shard.scan", shard=self.shard_id) as span:
            rows = list(
                self.rowstore.scan(min_ts=min_ts, max_ts=max_ts, tenant_id=tenant_id)
            )
            span.set(rows=len(rows))
        return rows

    def pending_rows(self) -> int:
        return self.rowstore.row_count()

    def verify_raft_consistency(self) -> None:
        """Assert fully-caught-up replicas hold byte-identical stores.

        Replicas at the same ``last_applied`` must have *identical*
        serialized row-store state — not just equal row counts — since
        every state transition (batch append, archive drain) is a
        deterministic function of the applied log prefix.
        """
        if self._raft is None:
            return
        live = [n for n in self._raft.full_replicas() if not n.stopped]
        caught_up = [n for n in live if n.commit_index == n.last_applied]
        by_applied: dict[int, dict[str, bytes]] = {}
        for node in caught_up:
            state = self._replica_stores[node.node_id].serialize_state()
            by_applied.setdefault(node.last_applied, {})[node.node_id] = state
        for applied, states in by_applied.items():
            if len(set(states.values())) > 1:
                raise ClusterError(
                    f"replica divergence on shard {self.shard_id} at "
                    f"last_applied={applied}: {sorted(states)}"
                )
