"""repro — a reproduction of *LogStore: A Cloud-Native and Multi-Tenant
Log Database* (Cao et al., SIGMOD 2021).

The public API surface:

* :class:`LogStore` / :class:`LogStoreConfig` — a complete in-process
  cluster: two-phase writes, per-tenant LogBlocks on simulated OSS,
  global traffic control, skipping/caching/prefetching queries.
* :func:`request_log_schema` / :class:`TableSchema` — table definitions.
* :class:`LogBlockWriter` / :class:`LogBlockReader` — the columnar
  format, usable standalone.
* ``repro.flow`` — the max-flow/greedy traffic balancers, usable against
  any topology.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.cluster.config import LogStoreConfig, small_test_config
from repro.cluster.logstore import LogStore
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import (
    ColumnSpec,
    ColumnType,
    IndexType,
    TableSchema,
    request_log_schema,
)
from repro.logblock.writer import LogBlockWriter

__version__ = "1.0.0"

__all__ = [
    "LogStore",
    "LogStoreConfig",
    "small_test_config",
    "LogBlockReader",
    "LogBlockWriter",
    "ColumnSpec",
    "ColumnType",
    "IndexType",
    "TableSchema",
    "request_log_schema",
    "__version__",
]
