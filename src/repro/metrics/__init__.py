"""Counters, histograms and access statistics."""

from repro.metrics.stats import AccessStats, Counter, Histogram, LatencySummary

__all__ = ["AccessStats", "Counter", "Histogram", "LatencySummary"]
