"""Lightweight metrics: counters, histograms, latency summaries.

Used by workers/brokers for the monitor's runtime metrics (§4.1.3) and
by the benchmark harness for the figures' series.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.utils import mean, percentile, stddev


class Counter:
    """A monotonically increasing counter with windowed deltas.

    Thread safety: ``add`` may run concurrently (the builder thread pool
    and the broker both touch shared counters), so increments and window
    reads are guarded by a lock.

    Windowing contract: the counter keeps exactly **one** window cursor.
    ``window_delta`` atomically returns the amount accumulated since the
    previous ``window_delta`` call and moves the cursor, so it must have
    a single consumer — the monitor loop.  Anything else that wants a
    rate must either own its own counter or diff ``value`` snapshots it
    takes itself; calling ``window_delta`` from two places would make
    each steal the other's delta.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0
        self._last_window = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def window_delta(self) -> int:
        """Value accumulated since the previous call (monitor windows).

        Atomic under the counter's lock: concurrent ``add`` calls land
        either wholly in this window or wholly in the next, never half.
        """
        with self._lock:
            delta = self._value - self._last_window
            self._last_window = self._value
            return delta


class Gauge:
    """A value that can go up and down (queue depths, watermarks)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


@dataclass
class LatencySummary:
    """Summary statistics over a set of latency observations."""

    count: int
    mean_s: float
    p50_s: float
    p75_s: float
    p90_s: float
    p99_s: float
    max_s: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p75_s": self.p75_s,
            "p90_s": self.p90_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


DEFAULT_RESERVOIR = 8192


class Histogram:
    """Bounded-memory observations with exact count/sum/max.

    The histogram keeps ``count``, ``sum``, ``min`` and ``max`` exactly
    for every observation but retains at most ``reservoir`` raw samples.
    When the reservoir fills, it is decimated deterministically: every
    second retained sample is kept and the acceptance stride doubles, so
    the retained set is always "every k-th observation of the stream"
    for a power-of-two ``k`` — no RNG, identical across runs.
    Percentiles and ``fraction_below`` are computed on the retained
    sample; ``count``/``mean``/``max`` stay exact at any volume.
    """

    def __init__(self, name: str = "", reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 2:
            raise ValueError(f"reservoir must be >= 2, got {reservoir}")
        self.name = name
        self._reservoir = reservoir
        self._lock = threading.Lock()
        self._reset_state()

    def _reset_state(self) -> None:
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._stride = 1

    def observe(self, value: float) -> None:
        with self._lock:
            self._observe(value)

    def observe_many(self, values) -> None:
        with self._lock:
            for value in values:
                self._observe(value)

    def _observe(self, value: float) -> None:
        if self._count % self._stride == 0:
            self._values.append(value)
            if len(self._values) > self._reservoir:
                self._values = self._values[::2]
                self._stride *= 2
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def __len__(self) -> int:
        """Exact number of observations (not the retained-sample size)."""
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        """Exact sum of every observation."""
        return self._sum

    @property
    def max_value(self) -> float | None:
        return self._max

    @property
    def min_value(self) -> float | None:
        return self._min

    @property
    def values(self) -> list[float]:
        """The retained (down-sampled) observations."""
        return list(self._values)

    @property
    def sample_size(self) -> int:
        """How many raw samples are currently retained."""
        return len(self._values)

    def summary(self) -> LatencySummary:
        with self._lock:
            if not self._count:
                raise ValueError(f"histogram {self.name!r} has no observations")
            return LatencySummary(
                count=self._count,
                mean_s=self._sum / self._count,
                p50_s=percentile(self._values, 50),
                p75_s=percentile(self._values, 75),
                p90_s=percentile(self._values, 90),
                p99_s=percentile(self._values, 99),
                max_s=self._max if self._max is not None else 0.0,
            )

    def fraction_below(self, threshold: float) -> float:
        """Fraction of observations strictly below ``threshold``.

        This is the Figure 17 CDF readout ("99% of the queries return
        data within 2 seconds").  Computed over the retained sample —
        exact until the reservoir first decimates, an every-k-th
        estimate after that.
        """
        with self._lock:
            if not self._count:
                raise ValueError(f"histogram {self.name!r} has no observations")
            return sum(1 for v in self._values if v < threshold) / len(self._values)

    def reset(self) -> None:
        with self._lock:
            self._reset_state()


@dataclass
class PushdownCounters:
    """Per-query aggregate-pushdown work accounting.

    Recorded by the block executor and surfaced through
    ``ExecutionStats`` so benchmarks and EXPLAIN ANALYZE can report how
    each block of an aggregate query was answered:

    * ``agg_catalog_hits`` — tier 1: answered from the LogBlock-map
      entry alone (zero requests, zero bytes);
    * ``agg_sma_blocks`` — tier 2: folded from the block's SMAs in the
      already-loaded meta (no column blocks read);
    * ``agg_columnar_blocks`` — tier 3: aggregated from late-
      materialized column vectors (only the aggregated columns read);
    * ``agg_row_blocks`` — fallback: full row-dict materialization.
    """

    agg_catalog_hits: int = 0
    agg_sma_blocks: int = 0
    agg_columnar_blocks: int = 0
    agg_row_blocks: int = 0

    def merge(self, other: "PushdownCounters") -> None:
        self.agg_catalog_hits += other.agg_catalog_hits
        self.agg_sma_blocks += other.agg_sma_blocks
        self.agg_columnar_blocks += other.agg_columnar_blocks
        self.agg_row_blocks += other.agg_row_blocks

    def as_dict(self) -> dict[str, int]:
        return {
            "agg_catalog_hits": self.agg_catalog_hits,
            "agg_sma_blocks": self.agg_sma_blocks,
            "agg_columnar_blocks": self.agg_columnar_blocks,
            "agg_row_blocks": self.agg_row_blocks,
        }


@dataclass
class WritePathStats:
    """Group-commit and replication-pipeline accounting (§3, §4.2).

    Recorded by the shard write path and surfaced to the benchmarks:

    * ``groups_committed`` — proposals actually issued (one Raft entry /
      one WAL flush each);
    * ``batches_coalesced`` — client batches folded into those groups;
    * ``group_sizes`` — batches-per-group distribution (BFC shrinks it
      under pressure);
    * ``commit_latency`` — virtual seconds from proposal submit to the
      configured ack (quorum or all-replica);
    * ``reproposals`` — groups re-submitted after a leader crash
      displaced their entry;
    * ``inflight_peak`` — widest observed in-flight proposal window.
    """

    groups_committed: int = 0
    batches_coalesced: int = 0
    rows_committed: int = 0
    bytes_committed: int = 0
    reproposals: int = 0
    inflight_peak: int = 0
    group_sizes: Histogram = field(default_factory=lambda: Histogram("group_sizes"))
    commit_latency: Histogram = field(default_factory=lambda: Histogram("commit_latency"))

    def mean_group_size(self) -> float:
        if not self.groups_committed:
            return 0.0
        return self.batches_coalesced / self.groups_committed

    def as_dict(self) -> dict[str, float]:
        return {
            "groups_committed": self.groups_committed,
            "batches_coalesced": self.batches_coalesced,
            "rows_committed": self.rows_committed,
            "bytes_committed": self.bytes_committed,
            "reproposals": self.reproposals,
            "inflight_peak": self.inflight_peak,
            "mean_group_size": self.mean_group_size(),
        }


@dataclass
class AccessStats:
    """Per-entity access counts for the Figure 13/14 std-dev metrics."""

    accesses: dict[object, float] = field(default_factory=dict)

    def record(self, key: object, amount: float = 1.0) -> None:
        self.accesses[key] = self.accesses.get(key, 0.0) + amount

    def stddev(self) -> float:
        if not self.accesses:
            return 0.0
        return stddev(list(self.accesses.values()))

    def mean(self) -> float:
        if not self.accesses:
            return 0.0
        return mean(list(self.accesses.values()))

    def ranked(self) -> list[tuple[object, float]]:
        """(key, count) sorted descending — rank plots (Figure 14a)."""
        return sorted(self.accesses.items(), key=lambda kv: kv[1], reverse=True)
