"""Lightweight metrics: counters, histograms, latency summaries.

Used by workers/brokers for the monitor's runtime metrics (§4.1.3) and
by the benchmark harness for the figures' series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.utils import mean, percentile, stddev


class Counter:
    """A monotonically increasing counter with windowed deltas."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0
        self._last_window = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def window_delta(self) -> int:
        """Value accumulated since the previous call (monitor windows)."""
        delta = self._value - self._last_window
        self._last_window = self._value
        return delta


@dataclass
class LatencySummary:
    """Summary statistics over a set of latency observations."""

    count: int
    mean_s: float
    p50_s: float
    p75_s: float
    p90_s: float
    p99_s: float
    max_s: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p75_s": self.p75_s,
            "p90_s": self.p90_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


class Histogram:
    """Collects raw observations; summarizes on demand."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    def observe_many(self, values) -> None:
        self._values.extend(values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def summary(self) -> LatencySummary:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return LatencySummary(
            count=len(self._values),
            mean_s=mean(self._values),
            p50_s=percentile(self._values, 50),
            p75_s=percentile(self._values, 75),
            p90_s=percentile(self._values, 90),
            p99_s=percentile(self._values, 99),
            max_s=max(self._values),
        )

    def fraction_below(self, threshold: float) -> float:
        """Fraction of observations strictly below ``threshold``.

        This is the Figure 17 CDF readout ("99% of the queries return
        data within 2 seconds").
        """
        if not self._values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return sum(1 for v in self._values if v < threshold) / len(self._values)

    def reset(self) -> None:
        self._values.clear()


@dataclass
class PushdownCounters:
    """Per-query aggregate-pushdown work accounting.

    Recorded by the block executor and surfaced through
    ``ExecutionStats`` so benchmarks and EXPLAIN ANALYZE can report how
    each block of an aggregate query was answered:

    * ``agg_catalog_hits`` — tier 1: answered from the LogBlock-map
      entry alone (zero requests, zero bytes);
    * ``agg_sma_blocks`` — tier 2: folded from the block's SMAs in the
      already-loaded meta (no column blocks read);
    * ``agg_columnar_blocks`` — tier 3: aggregated from late-
      materialized column vectors (only the aggregated columns read);
    * ``agg_row_blocks`` — fallback: full row-dict materialization.
    """

    agg_catalog_hits: int = 0
    agg_sma_blocks: int = 0
    agg_columnar_blocks: int = 0
    agg_row_blocks: int = 0

    def merge(self, other: "PushdownCounters") -> None:
        self.agg_catalog_hits += other.agg_catalog_hits
        self.agg_sma_blocks += other.agg_sma_blocks
        self.agg_columnar_blocks += other.agg_columnar_blocks
        self.agg_row_blocks += other.agg_row_blocks

    def as_dict(self) -> dict[str, int]:
        return {
            "agg_catalog_hits": self.agg_catalog_hits,
            "agg_sma_blocks": self.agg_sma_blocks,
            "agg_columnar_blocks": self.agg_columnar_blocks,
            "agg_row_blocks": self.agg_row_blocks,
        }


@dataclass
class WritePathStats:
    """Group-commit and replication-pipeline accounting (§3, §4.2).

    Recorded by the shard write path and surfaced to the benchmarks:

    * ``groups_committed`` — proposals actually issued (one Raft entry /
      one WAL flush each);
    * ``batches_coalesced`` — client batches folded into those groups;
    * ``group_sizes`` — batches-per-group distribution (BFC shrinks it
      under pressure);
    * ``commit_latency`` — virtual seconds from proposal submit to the
      configured ack (quorum or all-replica);
    * ``reproposals`` — groups re-submitted after a leader crash
      displaced their entry;
    * ``inflight_peak`` — widest observed in-flight proposal window.
    """

    groups_committed: int = 0
    batches_coalesced: int = 0
    rows_committed: int = 0
    bytes_committed: int = 0
    reproposals: int = 0
    inflight_peak: int = 0
    group_sizes: Histogram = field(default_factory=lambda: Histogram("group_sizes"))
    commit_latency: Histogram = field(default_factory=lambda: Histogram("commit_latency"))

    def mean_group_size(self) -> float:
        if not self.groups_committed:
            return 0.0
        return self.batches_coalesced / self.groups_committed

    def as_dict(self) -> dict[str, float]:
        return {
            "groups_committed": self.groups_committed,
            "batches_coalesced": self.batches_coalesced,
            "rows_committed": self.rows_committed,
            "bytes_committed": self.bytes_committed,
            "reproposals": self.reproposals,
            "inflight_peak": self.inflight_peak,
            "mean_group_size": self.mean_group_size(),
        }


@dataclass
class AccessStats:
    """Per-entity access counts for the Figure 13/14 std-dev metrics."""

    accesses: dict[object, float] = field(default_factory=dict)

    def record(self, key: object, amount: float = 1.0) -> None:
        self.accesses[key] = self.accesses.get(key, 0.0) + amount

    def stddev(self) -> float:
        if not self.accesses:
            return 0.0
        return stddev(list(self.accesses.values()))

    def mean(self) -> float:
        if not self.accesses:
            return 0.0
        return mean(list(self.accesses.values()))

    def ranked(self) -> list[tuple[object, float]]:
        """(key, count) sorted descending — rank plots (Figure 14a)."""
        return sorted(self.accesses.items(), key=lambda kv: kv[1], reverse=True)
