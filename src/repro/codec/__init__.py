"""Compression codec registry."""

from repro.codec.registry import Codec, available_codecs, get_codec, register_codec

__all__ = ["Codec", "available_codecs", "get_codec", "register_codec"]
