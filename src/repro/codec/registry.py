"""Compression codecs used by LogBlock column blocks and tar packing.

The paper supports Snappy, LZ4 and ZSTD and defaults to ZSTD because the
compression *ratio* matters more than CPU when the bottleneck is bytes
moved over the network to object storage (§3.2 "Compressed").

Only stdlib codecs are installed in this environment, so the registry maps
the paper's roles onto stdlib equivalents (documented in DESIGN.md):

* ``zlib``  — the "fast, moderate ratio" role of Snappy/LZ4.
* ``lzma``  — the "slow, high ratio" role of ZSTD; the package default.
* ``bz2``   — an extra ratio/speed point for the codec ablation bench.
* ``none``  — passthrough, for measuring compression benefit.

Each codec byte stream is self-identifying: callers persist the codec *id*
next to the payload (LogBlock stores a ``compress type`` per column, as in
Figure 4), so blocks stay self-contained.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import CodecError


@dataclass(frozen=True)
class Codec:
    """A named, id-stamped compression codec."""

    name: str
    codec_id: int
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]

    def roundtrip_ratio(self, data: bytes) -> float:
        """Compression ratio (uncompressed / compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / max(1, len(self.compress(data)))


_REGISTRY_BY_NAME: dict[str, Codec] = {}
_REGISTRY_BY_ID: dict[int, Codec] = {}

# Default codec name used across the package; stands in for the paper's ZSTD.
DEFAULT_CODEC = "lzma"


def register_codec(codec: Codec) -> None:
    """Register a codec under both its name and numeric id."""
    if codec.name in _REGISTRY_BY_NAME:
        raise CodecError(f"codec name already registered: {codec.name}")
    if codec.codec_id in _REGISTRY_BY_ID:
        raise CodecError(f"codec id already registered: {codec.codec_id}")
    _REGISTRY_BY_NAME[codec.name] = codec
    _REGISTRY_BY_ID[codec.codec_id] = codec


def get_codec(key: str | int) -> Codec:
    """Look up a codec by name or numeric id."""
    if isinstance(key, str):
        codec = _REGISTRY_BY_NAME.get(key)
    else:
        codec = _REGISTRY_BY_ID.get(key)
    if codec is None:
        raise CodecError(f"unknown codec: {key!r}")
    return codec


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY_BY_NAME)


def _lzma_compress(data: bytes) -> bytes:
    # preset 1: high-ratio family but tolerable speed for a pure-Python store
    return lzma.compress(data, preset=1)


register_codec(Codec("none", 0, lambda data: data, lambda data: data))
register_codec(
    Codec("zlib", 1, lambda data: zlib.compress(data, 1), zlib.decompress)
)
register_codec(Codec("lzma", 2, _lzma_compress, lzma.decompress))
register_codec(Codec("bz2", 3, lambda data: bz2.compress(data, 9), bz2.decompress))
