"""Per-tenant retention policy: how long rows stay, and where.

A policy has two independent clocks measured against a block's
``max_ts`` (so a block ages out only once *every* row in it has):

* ``ttl_s`` — rows older than this are expired: their blocks are
  dropped from the catalog and the objects deleted, without ever being
  read back (§3.1 "flexible data expiration policies").
* ``cold_age_s`` — rows older than this but younger than the TTL are
  demoted to the cold tier: small aged blocks are re-packed into large
  tar segments under a cheaper codec by the
  :class:`~repro.lifecycle.cold.ColdCompactor`.

``None`` disables a clock (keep forever / never demote).  When both are
set the cold age must be shorter than the TTL — data that would expire
before it cools is a configuration error, not a race.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import LifecycleError
from repro.meta.catalog import Catalog

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(d|h|m|s)?\s*$", re.IGNORECASE)
_UNIT_S = {"d": 86_400.0, "h": 3_600.0, "m": 60.0, "s": 1.0}


def parse_duration(text: str | float | int | None) -> float | None:
    """``'7d' | '12h' | '30m' | '45s' | '600' | 600`` → seconds.

    ``None`` passes through (policy clock disabled).  Bare numbers are
    seconds.  Raises :class:`LifecycleError` on anything else.
    """
    if text is None:
        return None
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        match = _DURATION_RE.match(text)
        if match is None:
            raise LifecycleError(
                f"bad duration {text!r}; expected e.g. '7d', '12h', '30m', '45s' or seconds"
            )
        value = float(match.group(1)) * _UNIT_S[(match.group(2) or "s").lower()]
    if value <= 0:
        raise LifecycleError(f"duration must be positive, got {text!r}")
    return value


def format_duration(seconds: float | None) -> str:
    """Render seconds for ``_system.tenants`` (largest exact unit)."""
    if seconds is None:
        return ""
    for unit, factor in (("d", 86_400.0), ("h", 3_600.0), ("m", 60.0)):
        if seconds >= factor and seconds % factor == 0:
            return f"{int(seconds // factor)}{unit}"
    return f"{seconds:g}s"


@dataclass(frozen=True)
class RetentionPolicy:
    """A tenant's lifecycle policy; both clocks optional."""

    ttl_s: float | None = None
    cold_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise LifecycleError(f"ttl must be positive, got {self.ttl_s}")
        if self.cold_age_s is not None and self.cold_age_s <= 0:
            raise LifecycleError(f"cold_age must be positive, got {self.cold_age_s}")
        if (
            self.ttl_s is not None
            and self.cold_age_s is not None
            and self.cold_age_s >= self.ttl_s
        ):
            raise LifecycleError(
                f"cold_age ({self.cold_age_s}s) must be shorter than ttl "
                f"({self.ttl_s}s); data would expire before it cools"
            )


def apply_policy(catalog: Catalog, tenant_id: int, policy: RetentionPolicy) -> None:
    """Install a policy on a registered tenant (catalog is authoritative)."""
    catalog.set_retention(tenant_id, policy.ttl_s)
    catalog.set_cold_age(tenant_id, policy.cold_age_s)


def policy_for(catalog: Catalog, tenant_id: int) -> RetentionPolicy:
    """The tenant's current policy, read back from the catalog."""
    info = catalog.tenant(tenant_id)
    return RetentionPolicy(ttl_s=info.retention_s, cold_age_s=info.cold_age_s)
