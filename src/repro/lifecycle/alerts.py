"""Lifecycle alert templates (stalled-sweeper detection).

A sweeper that silently stops is invisible in the data path — queries
still work, writes still land — while expired data quietly accrues
storage cost and violates retention promises.  The rule below follows
the :mod:`repro.obs.alerts` protocol (``evaluate(snapshot, slo)``
yielding ``(target, tenant_id, value)``) and fires when the background
loop has ticked ``stall_ticks`` times since the last completed sweep
*while expired candidates exist*:

* ``logstore_lifecycle_ticks_total`` — background ticks (counter, set
  by :class:`~repro.lifecycle.manager.LifecycleManager`);
* ``logstore_lifecycle_last_sweep_tick`` — tick of the last completed
  sweep (gauge);
* ``logstore_lifecycle_expired_candidates`` — expired blocks awaiting
  expiry (gauge).

Wire it in via ``LogStoreConfig.alert_rules``::

    config = small_test_config(
        alert_rules=default_alert_rules() + (stalled_sweeper_rule(5),)
    )
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import RegistrySnapshot
from repro.obs.slo import SloTracker


def _metric_sum(snapshot: RegistrySnapshot, name: str) -> float:
    """Sum of a family's children across counters and gauges."""
    total = 0.0
    for table in (snapshot.counters, snapshot.gauges):
        for _key, value in table.get(name, {}).items():
            total += value
    return total


@dataclass(frozen=True)
class StalledSweeperRule:
    """Fire when expired candidates wait while sweeps stopped landing."""

    name: str = "lifecycle-sweeper-stalled"
    stall_ticks: int = 5

    def evaluate(self, snapshot: RegistrySnapshot, slo: SloTracker | None):
        candidates = _metric_sum(snapshot, "logstore_lifecycle_expired_candidates")
        if candidates <= 0:
            return
        ticks = _metric_sum(snapshot, "logstore_lifecycle_ticks_total")
        last_sweep = _metric_sum(snapshot, "logstore_lifecycle_last_sweep_tick")
        stalled_for = ticks - last_sweep
        if stalled_for >= self.stall_ticks:
            yield "lifecycle.sweeper", None, stalled_for


def stalled_sweeper_rule(stall_ticks: int = 5) -> StalledSweeperRule:
    """The stock stalled-sweeper rule, ready for ``alert_rules``."""
    return StalledSweeperRule(stall_ticks=stall_ticks)
