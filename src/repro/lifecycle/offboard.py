"""Tenant offboarding: portable export, then a *verified* full delete.

A departing tenant gets two guarantees:

* **Portability** — every LogBlock (hot object or cold-segment member)
  is copied, byte-for-byte, into one tar-packed archive under
  ``_export/``, alongside a JSON manifest of the tenant's catalog
  state.  The members are self-contained LogBlocks, so the archive is
  readable with nothing but :mod:`repro.tarpack` + :mod:`repro.logblock`.
* **Proof of deletion** — after the delete, verification re-checks the
  three places data could hide: the catalog (tenant unregistered), the
  OSS listing (``tenants/<id>/`` empty), and — at the cluster facade —
  a live query returning zero rows.  The report carries any residue
  found, so "deleted" is a checked claim, not an assumption.

Offboarding is idempotent: re-running after a mid-delete crash (or
against an already-gone tenant) re-deletes what remains and re-verifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import NoSuchKey, TenantNotFound
from repro.meta.catalog import Catalog
from repro.obs.context import Observability
from repro.tarpack.packer import PackBuilder

EVENT_LIFECYCLE_OFFBOARD = "lifecycle.offboard"

EXPORT_MANIFEST_MEMBER = "manifest.json"


def export_path(tenant_id: int) -> str:
    """OSS key of a tenant's offboarding archive."""
    return f"_export/tenant-{tenant_id:06d}.pack"


@dataclass
class OffboardReport:
    """Everything one offboarding run did — and proved."""

    tenant_id: int
    export_key: str | None = None
    exported_blocks: int = 0
    exported_bytes: int = 0
    deleted_objects: int = 0
    failed_deletes: int = 0
    query_rows: int | None = None
    residue: list[str] = field(default_factory=list)
    verified: bool = False


class TenantOffboarder:
    """Export-then-delete with built-in residue verification."""

    def __init__(
        self,
        catalog: Catalog,
        store,
        bucket: str,
        obs: Observability | None = None,
        invalidate=None,
        orphan_sink=None,
    ) -> None:
        self._catalog = catalog
        self._store = store
        self._bucket = bucket
        self._invalidate = invalidate
        self._orphan_sink = orphan_sink
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self._offboards_total = registry.counter(
            "logstore_lifecycle_offboards_total", "Tenants offboarded."
        )
        self._exported_bytes_total = registry.counter(
            "logstore_lifecycle_exported_bytes_total",
            "Bytes written to offboarding archives.",
        )

    # -- export ------------------------------------------------------------

    def export_tenant(self, tenant_id: int) -> tuple[str, int, int]:
        """Pack the tenant's blocks + catalog manifest into ``_export/``.

        Returns ``(key, n_blocks, archive_bytes)``.  Reading data back
        is inherent to export — this is the one lifecycle operation
        that legitimately performs GETs.
        """
        info = self._catalog.tenant(tenant_id)
        blocks = list(info.blocks)
        builder = PackBuilder()
        manifest = {
            "tenant_id": info.tenant_id,
            "name": info.name,
            "retention_s": info.retention_s,
            "cold_age_s": info.cold_age_s,
            "created_at": info.created_at,
            "blocks": [],
        }
        for i, block in enumerate(blocks):
            member = f"block-{i:06d}.lgb"
            if block.segment_path is None:
                blob = self._store.get(self._bucket, block.path)
            else:
                blob = self._store.get_range(
                    self._bucket,
                    block.segment_path,
                    block.segment_offset,
                    block.segment_length,
                )
            builder.add(member, blob)
            manifest["blocks"].append(
                {
                    "member": member,
                    "path": block.path,
                    "tier": block.tier,
                    "min_ts": block.min_ts,
                    "max_ts": block.max_ts,
                    "row_count": block.row_count,
                    "size_bytes": block.size_bytes,
                }
            )
        builder.add(
            EXPORT_MANIFEST_MEMBER,
            json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8"),
        )
        archive = builder.build()
        key = export_path(tenant_id)
        self._store.put(self._bucket, key, archive)
        self._exported_bytes_total.add(len(archive))
        self._obs.journal.emit(
            EVENT_LIFECYCLE_OFFBOARD,
            f"tenant{tenant_id}",
            detail=f"export blocks={len(blocks)} bytes={len(archive)} key={key}",
            tenant_id=tenant_id,
        )
        return key, len(blocks), len(archive)

    # -- delete + verify ---------------------------------------------------

    def offboard(self, tenant_id: int, export: bool = True) -> OffboardReport:
        """Export (optional), delete everything, then verify the delete."""
        report = OffboardReport(tenant_id=tenant_id)
        known = True
        try:
            self._catalog.tenant(tenant_id)
        except TenantNotFound:
            known = False  # idempotent re-run: nothing to export, verify only
        if known:
            if export:
                key, n_blocks, n_bytes = self.export_tenant(tenant_id)
                report.export_key = key
                report.exported_blocks = n_blocks
                report.exported_bytes = n_bytes
            blocks = self._catalog.drop_tenant(tenant_id)
            objects = sorted({block.object_path for block in blocks})
            for path in objects:
                try:
                    self._store.delete(self._bucket, path)
                    report.deleted_objects += 1
                except NoSuchKey:
                    report.deleted_objects += 1
                except Exception:
                    report.failed_deletes += 1
                    if self._orphan_sink is not None:
                        self._orphan_sink.add_orphan(self._bucket, path)
                if self._invalidate is not None:
                    self._invalidate(path)
        # Stragglers outside the catalog (orphans from earlier crashes)
        # also belong to the departing tenant: delete by prefix listing.
        for stat in self._store.list(self._bucket, f"tenants/{tenant_id}/"):
            try:
                self._store.delete(self._bucket, stat.key)
                report.deleted_objects += 1
            except NoSuchKey:
                pass
            except Exception:
                report.failed_deletes += 1
                if self._orphan_sink is not None:
                    self._orphan_sink.add_orphan(self._bucket, stat.key)
        report.residue = self.verify_residue(tenant_id)
        report.verified = not report.residue and report.failed_deletes == 0
        self._offboards_total.add()
        self._obs.journal.emit(
            EVENT_LIFECYCLE_OFFBOARD,
            f"tenant{tenant_id}",
            detail=(
                f"delete objects={report.deleted_objects} "
                f"failed={report.failed_deletes} verified={report.verified}"
            ),
            tenant_id=tenant_id,
        )
        return report

    def verify_residue(self, tenant_id: int) -> list[str]:
        """Anything of the tenant still in the catalog or OSS (LIST only)."""
        residue: list[str] = []
        try:
            info = self._catalog.tenant(tenant_id)
        except TenantNotFound:
            pass
        else:
            residue.append(f"catalog: tenant {tenant_id} still registered")
            for block in info.blocks:
                residue.append(f"catalog: block {block.path}")
        for stat in self._store.list(self._bucket, f"tenants/{tenant_id}/"):
            residue.append(f"oss: object {stat.key}")
        return residue
