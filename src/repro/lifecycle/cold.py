"""Cold tiering: re-pack aged small LogBlocks into large tar segments.

A lightly loaded tenant's aged data is many small hot blocks, each a
separate OSS object billed at hot-tier rates.  The cold compactor
rewrites a tenant's aged run into one **segment**: a tar-packed object
(``tenants/<id>/cold/sg….seg``, reusing :mod:`repro.tarpack`) whose
members are ordinary self-contained LogBlocks re-encoded under a
stronger codec and larger chunks.  Queries are untouched — a cold
catalog entry carries ``(segment_path, segment_offset, segment_length)``
and the executor reads the member in place through a
:class:`~repro.tarpack.reader.SubrangeReader`, so results are
byte-identical across tiers (asserted in tests and
``benchmarks/bench_lifecycle.py``, along with the ≥2× shrink).

Crash safety follows the hot compactor's ordering: upload the segment
and register its members *before* retiring any victim, so every
intermediate state is queryable; failed victim deletes become orphans
for the sweeper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import BuildError, NoSuchKey
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import TableSchema
from repro.logblock.writer import DEFAULT_BLOCK_ROWS, LogBlockWriter
from repro.meta.catalog import TIER_COLD, Catalog, LogBlockEntry
from repro.obs.context import Observability
from repro.oss.retry import (
    DEFAULT_BACKOFF_S,
    DEFAULT_MAX_ATTEMPTS,
    RetryingObjectStore,
)
from repro.tarpack.packer import PackBuilder
from repro.tarpack.reader import BytesRangeReader, PackReader

EVENT_LIFECYCLE_COLD = "lifecycle.cold_pack"

# lzma trades CPU for ratio — exactly right for data that is read
# rarely but stored for its whole retention window.
DEFAULT_COLD_CODEC = "lzma"


def cold_segment_path(tenant_id: int, generation: int, min_ts: int, max_ts: int) -> str:
    """OSS key for one cold segment object."""
    return f"tenants/{tenant_id}/cold/sg{generation:06d}-{min_ts}-{max_ts}.seg"


@dataclass
class ColdRepackResult:
    """What one :meth:`ColdCompactor.repack_tenant` call did."""

    tenant_id: int
    blocks_before: int = 0
    blocks_after: int = 0
    rows_repacked: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    segment_paths: list[str] = field(default_factory=list)

    @property
    def repacked(self) -> bool:
        return self.blocks_after > 0


class ColdCompactor:
    """Demotes a tenant's aged hot blocks into tar-packed cold segments."""

    def __init__(
        self,
        schema: TableSchema,
        oss,
        bucket: str,
        catalog: Catalog,
        codec: str = DEFAULT_COLD_CODEC,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        target_rows: int = 200_000,
        min_blocks: int = 1,
        build_indexes: bool = True,
        max_upload_attempts: int = DEFAULT_MAX_ATTEMPTS,
        upload_backoff_s: float = DEFAULT_BACKOFF_S,
        retry_clock: Clock | None = None,
        obs: Observability | None = None,
        invalidate=None,
        orphan_sink=None,
        use_vectorized_encode: bool = True,
    ) -> None:
        if target_rows <= 0:
            raise BuildError(f"target_rows must be positive, got {target_rows}")
        if min_blocks < 1:
            raise BuildError(f"min_blocks must be >= 1, got {min_blocks}")
        self._schema = schema
        self._oss = oss
        self._bucket = bucket
        self._catalog = catalog
        self._codec = codec
        self._block_rows = block_rows
        self._target_rows = target_rows
        self._min_blocks = min_blocks
        self._build_indexes = build_indexes
        self._upload = RetryingObjectStore(
            oss,
            max_attempts=max_upload_attempts,
            backoff_s=upload_backoff_s,
            clock=retry_clock if retry_clock is not None else VirtualClock(),
        )
        self._invalidate = invalidate
        # Failed victim deletes go to the sweeper when attached, else to
        # a local queue exposed via :attr:`orphans`.
        self._orphan_sink = orphan_sink
        self._orphans: list[tuple[str, str]] = []
        self._generation = 0
        self._vectorized_encode = use_vectorized_encode
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self._repacks_total = registry.counter(
            "logstore_lifecycle_cold_repacks_total",
            "Cold repack runs that demoted blocks.",
        )
        self._cold_blocks_total = registry.counter(
            "logstore_lifecycle_cold_blocks_packed_total",
            "Hot blocks demoted into cold segments.",
        )
        self._cold_segments_total = registry.counter(
            "logstore_lifecycle_cold_segments_total",
            "Cold segment objects written.",
        )
        self._cold_bytes_before_total = registry.counter(
            "logstore_lifecycle_cold_bytes_before_total",
            "Hot bytes retired by cold repacks.",
        )
        self._cold_bytes_after_total = registry.counter(
            "logstore_lifecycle_cold_bytes_after_total",
            "Cold bytes written by repacks.",
        )
        from repro.obs.recorders import EncodeModeRecorder

        self._encode_modes = EncodeModeRecorder(registry)

    # -- candidate selection ----------------------------------------------

    def candidates(self, tenant_id: int, now_ts: int) -> list[LogBlockEntry]:
        """The tenant's hot blocks older than its ``cold_age_s``."""
        return [
            block
            for block in self._catalog.cold_candidates(now_ts)
            if block.tenant_id == tenant_id
        ]

    # -- repack ------------------------------------------------------------

    def repack_tenant(self, tenant_id: int, now_ts: int) -> ColdRepackResult:
        """Demote the tenant's aged hot blocks; no-op below min_blocks."""
        result = ColdRepackResult(tenant_id=tenant_id)
        victims = self.candidates(tenant_id, now_ts)
        if len(victims) < self._min_blocks:
            return result
        with self._obs.tracer.span(
            "lifecycle.cold_pack", tenant=tenant_id, victims=len(victims)
        ):
            self._repack(tenant_id, victims, result)
        self._repacks_total.add()
        self._cold_blocks_total.add(result.blocks_before)
        self._cold_segments_total.add(len(result.segment_paths))
        self._cold_bytes_before_total.add(result.bytes_before)
        self._cold_bytes_after_total.add(result.bytes_after)
        if result.repacked:
            self._obs.journal.emit(
                EVENT_LIFECYCLE_COLD,
                f"tenant{tenant_id}",
                detail=(
                    f"blocks {result.blocks_before}->{result.blocks_after} "
                    f"bytes {result.bytes_before}->{result.bytes_after}"
                ),
                tenant_id=tenant_id,
            )
        return result

    def repack_all(self, now_ts: int) -> list[ColdRepackResult]:
        """Run :meth:`repack_tenant` for every tenant with candidates."""
        tenant_ids = sorted(
            {block.tenant_id for block in self._catalog.cold_candidates(now_ts)}
        )
        results = []
        for tenant_id in tenant_ids:
            result = self.repack_tenant(tenant_id, now_ts)
            if result.repacked:
                results.append(result)
        return results

    def _repack(
        self, tenant_id: int, victims: list[LogBlockEntry], result: ColdRepackResult
    ) -> None:
        result.blocks_before = len(victims)
        result.bytes_before = sum(block.size_bytes for block in victims)

        rows: list[dict] = []
        for block in victims:
            rows.extend(self._read_rows(block))
        ts_column = self._ts_column()
        rows.sort(key=lambda row: row[ts_column])

        # Re-encode into target_rows-sized members under the cold codec.
        members: list[tuple[str, bytes, int, int, int]] = []
        for chunk_start in range(0, len(rows), self._target_rows):
            chunk = rows[chunk_start : chunk_start + self._target_rows]
            writer = LogBlockWriter(
                self._schema,
                codec=self._codec,
                block_rows=self._block_rows,
                build_indexes=self._build_indexes,
                vectorized=self._vectorized_encode,
            )
            writer.append_many(chunk)
            blob = writer.finish()
            self._encode_modes.record(writer.encode_stats)
            min_ts = int(chunk[0][ts_column])
            max_ts = int(chunk[-1][ts_column])
            name = f"b{chunk_start // self._target_rows:04d}-{min_ts}-{max_ts}.lgb"
            members.append((name, blob, min_ts, max_ts, len(chunk)))

        generation = self._generation
        self._generation += 1
        builder = PackBuilder()
        for name, blob, _min, _max, _n in members:
            builder.add(name, blob)
        segment = builder.build()
        segment_key = cold_segment_path(
            tenant_id, generation, members[0][2], members[-1][3]
        )
        # Member extents within the finished segment, for the catalog.
        probe = PackReader(BytesRangeReader(segment), self._bucket, segment_key)
        entries: list[LogBlockEntry] = []
        for name, blob, min_ts, max_ts, n_rows in members:
            start, length = probe.member_extent(name)
            entries.append(
                LogBlockEntry(
                    tenant_id=tenant_id,
                    min_ts=min_ts,
                    max_ts=max_ts,
                    path=f"{segment_key}#{name}",
                    size_bytes=length,
                    row_count=n_rows,
                    tier=TIER_COLD,
                    segment_path=segment_key,
                    segment_offset=start,
                    segment_length=length,
                )
            )

        # Upload before registering anything: a failed PUT must leave
        # the catalog untouched, with any torn object compensated away
        # through the raw store (matching Compactor._compact).
        try:
            self._upload.put(self._bucket, segment_key, segment)
        except BaseException:
            try:
                self._oss.delete(self._bucket, segment_key)
            except NoSuchKey:
                pass  # the failed PUT left nothing behind
            except Exception:
                self._queue_orphan(segment_key)
            raise
        for entry in entries:
            self._catalog.add_block(entry)
            result.bytes_after += entry.size_bytes
            result.rows_repacked += entry.row_count
        result.blocks_after = len(entries)
        result.segment_paths.append(segment_key)

        # Members are live; retire the hot victims.  The catalog entry
        # goes even when the object delete fails (rows already live in
        # the segment; keeping the victim would double-count them) —
        # the object becomes an orphan for the sweeper.
        for block in victims:
            try:
                self._upload.delete(self._bucket, block.path)
            except NoSuchKey:
                pass
            except Exception:
                self._queue_orphan(block.path)
            self._catalog.remove_block(block)
            if self._invalidate is not None:
                self._invalidate(block.path)

    # -- orphans -----------------------------------------------------------

    def _queue_orphan(self, path: str) -> None:
        if self._orphan_sink is not None:
            self._orphan_sink.add_orphan(self._bucket, path)
        else:
            self._orphans.append((self._bucket, path))

    @property
    def orphans(self) -> list[tuple[str, str]]:
        """(bucket, path) pairs whose delete failed (no sink attached)."""
        return list(self._orphans)

    def sweep_orphans(self) -> int:
        """Retry deleting locally queued orphans; returns how many cleared."""
        remaining: list[tuple[str, str]] = []
        cleared = 0
        for bucket, path in self._orphans:
            try:
                self._upload.delete(bucket, path)
                cleared += 1
            except NoSuchKey:
                cleared += 1
            except Exception:
                remaining.append((bucket, path))
        self._orphans = remaining
        return cleared

    # -- helpers -----------------------------------------------------------

    def _ts_column(self) -> str:
        names = self._schema.column_names()
        if "ts" in names:
            return "ts"
        raise BuildError(f"schema {self._schema.name!r} has no 'ts' column to merge by")

    def _read_rows(self, block: LogBlockEntry) -> list[dict]:
        """Materialize every row of one (hot) LogBlock, all columns."""
        reader = LogBlockReader(PackReader(self._upload, self._bucket, block.path))
        columns = {
            name: reader.read_column(name)
            for name in reader.meta().schema.column_names()
        }
        names = list(columns)
        return [
            {name: columns[name][i] for name in names}
            for i in range(reader.row_count)
        ]
