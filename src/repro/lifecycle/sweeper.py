"""Zero-read expiry: drop whole aged LogBlocks without fetching a byte.

Because blocks are immutable and the catalog's LogBlock map brackets
every row with ``[min_ts, max_ts]``, retention never needs to *read*
data: a block whose ``max_ts`` predates the TTL cutoff can be dropped
with one catalog removal and one object DELETE.  The sweeper therefore
performs **zero OSS GETs and zero block decodes** by construction — the
point asserted (via :class:`~repro.oss.metered.OssStats`) in tests and
``benchmarks/bench_lifecycle.py``.

Candidate selection bisects the catalog's per-tenant ``blocks_by_age``
index, so each sweep is O(expired blocks), not O(catalog) — the
precondition for the million-tenant catalog of ROADMAP item 2.

The sweeper is also the cluster's janitor for *orphans*: objects whose
DELETE failed mid-operation elsewhere (compaction compensation deletes,
cold repacks, offboarding).  Sources register their queues and each
sweep drains them, so a healed cluster converges back to "catalog ==
OSS" without manual repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import NoSuchKey
from repro.meta.catalog import Catalog
from repro.obs.context import Observability

EVENT_LIFECYCLE_SWEEP = "lifecycle.sweep"


@dataclass
class SweepReport:
    """What one :meth:`ExpirySweeper.sweep` call did."""

    blocks_expired: int = 0
    bytes_reclaimed: int = 0
    segments_deleted: int = 0
    orphans_swept: int = 0
    entries_examined: int = 0
    tenants_touched: set[int] = field(default_factory=set)


class ExpirySweeper:
    """Catalog-driven background expiry with orphan sweeping."""

    def __init__(
        self,
        catalog: Catalog,
        store,
        bucket: str,
        obs: Observability | None = None,
        invalidate=None,
    ) -> None:
        self._catalog = catalog
        self._store = store
        self._bucket = bucket
        self._invalidate = invalidate
        self._orphans: list[tuple[str, str]] = []
        self._orphan_sources: list = []
        self._obs = obs if obs is not None else Observability.noop()
        registry = self._obs.registry
        self._sweeps_total = registry.counter(
            "logstore_lifecycle_sweeps_total", "Expiry sweeps executed."
        )
        self._expired_blocks_total = registry.counter(
            "logstore_lifecycle_expired_blocks_total",
            "LogBlocks dropped by retention.",
        )
        self._expired_bytes_total = registry.counter(
            "logstore_lifecycle_expired_bytes_total",
            "Stored bytes reclaimed by retention.",
        )
        self._segments_deleted_total = registry.counter(
            "logstore_lifecycle_segments_deleted_total",
            "Cold segment objects deleted once fully expired.",
        )
        self._orphans_swept_total = registry.counter(
            "logstore_lifecycle_orphans_swept_total",
            "Orphaned OSS objects cleaned up by the sweeper.",
        )

    # -- orphan plumbing ---------------------------------------------------

    def attach_orphan_source(self, source) -> None:
        """Register an object exposing ``sweep_orphans() -> int``
        (e.g. the compactor, the builder) for draining on each sweep."""
        if source is not None and source not in self._orphan_sources:
            self._orphan_sources.append(source)

    def add_orphan(self, bucket: str, path: str) -> None:
        """Queue an object whose DELETE failed for a later sweep."""
        self._orphans.append((bucket, path))

    @property
    def orphans(self) -> list[tuple[str, str]]:
        """(bucket, path) pairs awaiting deletion retry."""
        return list(self._orphans)

    def sweep_orphans(self) -> int:
        """Retry queued deletes here and in every attached source."""
        remaining: list[tuple[str, str]] = []
        cleared = 0
        for bucket, path in self._orphans:
            try:
                self._store.delete(bucket, path)
                cleared += 1
            except NoSuchKey:
                cleared += 1
            except Exception:
                remaining.append((bucket, path))
        self._orphans = remaining
        for source in self._orphan_sources:
            try:
                cleared += source.sweep_orphans()
            except Exception:
                continue  # a faulted store mid-chaos; retried next sweep
        if cleared:
            self._orphans_swept_total.add(cleared)
        return cleared

    # -- expiry ------------------------------------------------------------

    def expired_candidates(self, now_ts: int):
        """Expired entries + entries-examined bound (catalog bisect)."""
        return self._catalog.expired_candidates(now_ts)

    def sweep(self, now_ts: int) -> SweepReport:
        """One expiry pass: catalog removals + object DELETEs, no GETs.

        Exactly-once across crashes falls out of the ordering: the
        catalog entry is removed *before* the object DELETE, so a crash
        in between leaves an unreferenced object that the next
        orphan/reconcile sweep deletes — rows can never resurrect, and
        a DELETE retried after heal treats ``NoSuchKey`` as success.
        """
        report = SweepReport()
        candidates, examined = self._catalog.expired_candidates(now_ts)
        report.entries_examined = examined
        for entry in candidates:
            self._catalog.remove_block(entry)
            self._catalog.note_expired(entry.tenant_id)
            report.blocks_expired += 1
            report.bytes_reclaimed += entry.size_bytes
            report.tenants_touched.add(entry.tenant_id)
            if entry.segment_path is None:
                self._delete(entry.path)
            elif self._catalog.segment_refcount(entry.segment_path) == 0:
                # Last live member gone: the segment object itself can go.
                self._delete(entry.segment_path)
                report.segments_deleted += 1
            if self._invalidate is not None:
                self._invalidate(entry.object_path)
        report.orphans_swept = self.sweep_orphans()
        self._sweeps_total.add()
        self._expired_blocks_total.add(report.blocks_expired)
        self._expired_bytes_total.add(report.bytes_reclaimed)
        self._segments_deleted_total.add(report.segments_deleted)
        if report.blocks_expired or report.orphans_swept:
            self._obs.journal.emit(
                EVENT_LIFECYCLE_SWEEP,
                "lifecycle.sweeper",
                detail=(
                    f"expired={report.blocks_expired} "
                    f"bytes={report.bytes_reclaimed} "
                    f"segments={report.segments_deleted} "
                    f"orphans={report.orphans_swept} "
                    f"examined={report.entries_examined}"
                ),
            )
        return report

    def reconcile(self) -> int:
        """Recovery sweep: delete stray data objects the catalog disowns.

        A crash between catalog removal and object DELETE (or a lost
        in-memory orphan queue) leaves unreferenced ``.lgb``/``.seg``
        objects behind.  This LISTs the tenant prefix — no GETs — and
        deletes anything not referenced by the live catalog.  Only safe
        on a quiesced cluster (no archive/compaction in flight, whose
        upload-before-register windows would look like strays).
        """
        live = {entry.object_path for entry in self._catalog.all_blocks()}
        live.update(self._catalog.segment_paths())
        removed = 0
        for stat in self._store.list(self._bucket, "tenants/"):
            if not (stat.key.endswith(".lgb") or stat.key.endswith(".seg")):
                continue
            if stat.key in live:
                continue
            try:
                self._store.delete(self._bucket, stat.key)
                removed += 1
            except NoSuchKey:
                removed += 1
            except Exception:
                self._orphans.append((self._bucket, stat.key))
        if removed:
            self._orphans_swept_total.add(removed)
        return removed

    def _delete(self, path: str) -> None:
        try:
            self._store.delete(self._bucket, path)
        except NoSuchKey:
            pass  # already gone (e.g. a healed retry): exactly-once holds
        except Exception:
            self._orphans.append((self._bucket, path))
