"""Data lifecycle: retention, zero-read expiry, cold tiering, offboarding.

§3.1 promises "flexible data expiration policies" per tenant; Taurus
(PAPERS.md) frames the cloud-frugality goal — aged data should cost
less to store and *nothing* to delete.  This package delivers both:

* :class:`~repro.lifecycle.policy.RetentionPolicy` — per-tenant TTL and
  cold-age thresholds, stored in the catalog and settable through the
  SQL front door (``ALTER TENANT … SET RETENTION``).
* :class:`~repro.lifecycle.sweeper.ExpirySweeper` — drops whole expired
  LogBlocks with catalog operations plus object DELETEs only: zero OSS
  GETs, zero decoded bytes, O(expired blocks) per sweep.
* :class:`~repro.lifecycle.cold.ColdCompactor` — re-packs aged small
  blocks into large tar-packed segments under a cheaper codec, with
  byte-identical query results from either tier.
* :class:`~repro.lifecycle.offboard.TenantOffboarder` — exports a
  departing tenant to a portable archive, then performs a verified full
  delete (catalog + OSS listing prove nothing remains).
* :class:`~repro.lifecycle.manager.LifecycleManager` — the background
  tick wiring all of the above into ``run_background_tasks``.
"""

from repro.lifecycle.alerts import StalledSweeperRule, stalled_sweeper_rule
from repro.lifecycle.cold import ColdCompactor, ColdRepackResult, cold_segment_path
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.offboard import OffboardReport, TenantOffboarder, export_path
from repro.lifecycle.policy import (
    RetentionPolicy,
    apply_policy,
    format_duration,
    parse_duration,
    policy_for,
)
from repro.lifecycle.sweeper import ExpirySweeper, SweepReport

__all__ = [
    "ColdCompactor",
    "ColdRepackResult",
    "ExpirySweeper",
    "LifecycleManager",
    "OffboardReport",
    "RetentionPolicy",
    "StalledSweeperRule",
    "SweepReport",
    "TenantOffboarder",
    "apply_policy",
    "cold_segment_path",
    "export_path",
    "format_duration",
    "parse_duration",
    "policy_for",
    "stalled_sweeper_rule",
]
