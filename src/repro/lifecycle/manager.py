"""LifecycleManager: the background tick that runs the lifecycle.

One object owns the three lifecycle actors (sweeper, cold compactor,
offboarder), shares the sweeper as the cluster-wide orphan sink, and
exposes a single :meth:`tick` for ``LogStore.run_background_tasks`` —
expiry first (cheapest, frees the most), then cold repacks.

It also maintains the three metrics the stalled-sweeper alert
(:mod:`repro.lifecycle.alerts`) is defined over, so detection works
even when — especially when — the sweep itself stops running.
"""

from __future__ import annotations

from repro.lifecycle.cold import DEFAULT_COLD_CODEC, ColdCompactor
from repro.lifecycle.offboard import TenantOffboarder
from repro.lifecycle.policy import RetentionPolicy, apply_policy, policy_for
from repro.lifecycle.sweeper import ExpirySweeper, SweepReport
from repro.logblock.schema import TableSchema
from repro.logblock.writer import DEFAULT_BLOCK_ROWS
from repro.meta.catalog import Catalog
from repro.obs.context import Observability


class LifecycleManager:
    """Background data-lifecycle driver for one cluster."""

    def __init__(
        self,
        catalog: Catalog,
        store,
        bucket: str,
        schema: TableSchema,
        obs: Observability | None = None,
        invalidate=None,
        sweep_enabled: bool = True,
        cold_enabled: bool = True,
        cold_codec: str = DEFAULT_COLD_CODEC,
        cold_target_rows: int = 200_000,
        cold_min_blocks: int = 1,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        build_indexes: bool = True,
        retry_clock=None,
        use_vectorized_encode: bool = True,
    ) -> None:
        self._catalog = catalog
        self._sweep_enabled = sweep_enabled
        self._cold_enabled = cold_enabled
        self._obs = obs if obs is not None else Observability.noop()
        self.sweeper = ExpirySweeper(
            catalog, store, bucket, obs=self._obs, invalidate=invalidate
        )
        self.cold = ColdCompactor(
            schema,
            store,
            bucket,
            catalog,
            codec=cold_codec,
            block_rows=block_rows,
            target_rows=cold_target_rows,
            min_blocks=cold_min_blocks,
            build_indexes=build_indexes,
            retry_clock=retry_clock,
            obs=self._obs,
            invalidate=invalidate,
            orphan_sink=self.sweeper,
            use_vectorized_encode=use_vectorized_encode,
        )
        self.offboarder = TenantOffboarder(
            catalog,
            store,
            bucket,
            obs=self._obs,
            invalidate=invalidate,
            orphan_sink=self.sweeper,
        )
        self._ticks = 0
        registry = self._obs.registry
        self._ticks_total = registry.counter(
            "logstore_lifecycle_ticks_total", "Background lifecycle ticks."
        )
        self._last_sweep_tick = registry.gauge(
            "logstore_lifecycle_last_sweep_tick",
            "Tick number of the last completed expiry sweep.",
        )
        self._candidates_gauge = registry.gauge(
            "logstore_lifecycle_expired_candidates",
            "Expired blocks currently awaiting a sweep.",
        )

    # -- policy ------------------------------------------------------------

    def set_policy(self, tenant_id: int, policy: RetentionPolicy) -> None:
        apply_policy(self._catalog, tenant_id, policy)

    def policy(self, tenant_id: int) -> RetentionPolicy:
        return policy_for(self._catalog, tenant_id)

    # -- background tick ---------------------------------------------------

    @property
    def ticks(self) -> int:
        return self._ticks

    def tick(self, now_ts: int) -> SweepReport | None:
        """One background pass: sweep expiry, then cold repacks.

        Returns the sweep report, or None when sweeping is disabled
        (in which case the candidate gauge keeps growing — the signal
        the stalled-sweeper alert fires on).
        """
        self._ticks += 1
        self._ticks_total.add()
        if not self._sweep_enabled:
            candidates, _examined = self._catalog.expired_candidates(now_ts)
            self._candidates_gauge.set(len(candidates))
            report = None
        else:
            report = self.sweeper.sweep(now_ts)
            self._last_sweep_tick.set(self._ticks)
            self._candidates_gauge.set(0)
        if self._cold_enabled:
            self.cold.repack_all(now_ts)
        return report
