"""Lightweight BI aggregations (§1: '"which IP addresses frequently
accessed this API in the past day?"').

Streaming aggregation over matched rows: COUNT/SUM/AVG/MIN/MAX with an
optional single-column GROUP BY, plus ORDER BY / LIMIT for top-N.
Aggregates are mergeable so the broker can combine per-shard partial
results (MPP-style final aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import QueryError
from repro.query.sql import ParsedQuery, SelectItem


@dataclass
class AggState:
    """Mergeable accumulator for one aggregate over one group."""

    count: int = 0
    total: float = 0.0
    minimum: object = None
    maximum: object = None
    distinct: object = None  # ExactDistinct or HyperLogLog when needed

    def update(self, value) -> None:
        if value is None:
            return
        self.count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.distinct is not None:
            self.distinct.add(value)

    def update_count_star(self) -> None:
        self.count += 1

    def merge_sma(self, sma) -> None:
        """Fold a column SMA as if :meth:`update` ran on every non-null value.

        The tier-2 pushdown path: when a block's predicate bitset is
        all-rows-match, COUNT/MIN/MAX (and SUM, when the block meta
        records per-column sums) fold straight from the SMA without
        reading a single column block.  Only valid for non-DISTINCT
        states — the planner never routes DISTINCT aggregates here.
        """
        non_null = sma.row_count - sma.null_count
        if not non_null:
            return
        self.count += non_null
        if sma.sum_value is not None:
            self.total += sma.sum_value
        if sma.min_value is not None and (self.minimum is None or sma.min_value < self.minimum):
            self.minimum = sma.min_value
        if sma.max_value is not None and (self.maximum is None or sma.max_value > self.maximum):
            self.maximum = sma.max_value

    def merge(self, other: "AggState") -> None:
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (self.minimum is None or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None or other.maximum > self.maximum):
            self.maximum = other.maximum
        if self.distinct is not None and other.distinct is not None:
            self.distinct.merge(other.distinct)

    def finalize(self, func: str, distinct: bool = False):
        if func == "count":
            if distinct:
                return self.distinct.estimate() if self.distinct is not None else 0
            return self.count
        if func == "approx_count_distinct":
            return self.distinct.estimate() if self.distinct is not None else 0
        if func == "sum":
            return self.total if self.count else None
        if func == "avg":
            return self.total / self.count if self.count else None
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        raise QueryError(f"unknown aggregate function {func!r}")


class Aggregator:
    """Executes the aggregate/GROUP BY part of a parsed query."""

    def __init__(self, query: ParsedQuery) -> None:
        if not query.is_aggregate:
            raise QueryError("Aggregator requires an aggregate query")
        self._query = query
        self._items: list[SelectItem] = query.select
        self._group_by = query.group_by
        # group key → per-aggregate-item state
        self._groups: dict[object, list[AggState]] = {}

    def _states_for(self, key) -> list[AggState]:
        states = self._groups.get(key)
        if states is None:
            from repro.query.distinct import ExactDistinct, HyperLogLog

            states = []
            for item in self._items:
                state = AggState()
                if item.is_aggregate:
                    if item.aggregate == "count" and item.distinct:
                        state.distinct = ExactDistinct()
                    elif item.aggregate == "approx_count_distinct":
                        state.distinct = HyperLogLog()
                states.append(state)
            self._groups[key] = states
        return states

    def consume(self, row: dict) -> None:
        key = row.get(self._group_by) if self._group_by is not None else None
        states = self._states_for(key)
        for item, state in zip(self._items, states):
            if not item.is_aggregate:
                continue
            if item.column is None:
                state.update_count_star()
            else:
                state.update(row.get(item.column))

    def consume_many(self, rows) -> None:
        for row in rows:
            self.consume(row)

    def consume_sma(self, smas: dict, row_count: int) -> None:
        """Tier-1/2 pushdown: fold one whole block from its column SMAs.

        ``smas`` maps column name → :class:`~repro.logblock.sma.Sma` for
        the columns present in the block; a column absent from the dict
        (added by DDL after the block was written) reads as all-null and
        contributes nothing.  Only valid for ungrouped queries whose
        every row matches — the executor checks both.
        """
        states = self._states_for(None)
        for item, state in zip(self._items, states):
            if not item.is_aggregate:
                continue
            if item.column is None:
                state.count += row_count  # COUNT(*)
                continue
            sma = smas.get(item.column)
            if sma is not None:
                state.merge_sma(sma)

    def consume_columns(self, group_keys, columns: dict, row_count: int) -> None:
        """Tier-3 pushdown: consume per-column value vectors.

        ``group_keys`` is the GROUP BY column's value vector (or None
        for ungrouped queries); ``columns`` maps each aggregated column
        to its matched-row value vector.  Columns missing from the dict
        read as null.  Equivalent to :meth:`consume` over materialized
        row dicts, without ever building the dicts.
        """
        if self._group_by is None:
            states = self._states_for(None)
            for item, state in zip(self._items, states):
                if not item.is_aggregate:
                    continue
                if item.column is None:
                    state.count += row_count  # COUNT(*)
                    continue
                vector = columns.get(item.column)
                if vector is None:
                    continue
                for value in vector:
                    state.update(value)
            return
        if group_keys is None:
            group_keys = [None] * row_count
        for i in range(row_count):
            states = self._states_for(group_keys[i])
            for item, state in zip(self._items, states):
                if not item.is_aggregate:
                    continue
                if item.column is None:
                    state.update_count_star()
                    continue
                vector = columns.get(item.column)
                state.update(vector[i] if vector is not None else None)

    def merge(self, other: "Aggregator") -> None:
        """Combine another shard's partial aggregation into this one."""
        for key, states in other._groups.items():
            mine = self._states_for(key)
            for state, incoming in zip(mine, states):
                state.merge(incoming)

    def results(self) -> list[dict]:
        """Final output rows, ordered and limited per the query."""
        if self._group_by is None and not self._groups:
            # SQL: an ungrouped aggregate over zero rows yields one row
            # (COUNT = 0, other aggregates NULL); a grouped one yields none.
            self._states_for(None)
        rows: list[dict] = []
        for key, states in self._groups.items():
            row: dict = {}
            if self._group_by is not None:
                row[self._group_by] = key
            for item, state in zip(self._items, states):
                if item.is_aggregate:
                    row[item.label()] = state.finalize(
                        item.aggregate, distinct=item.distinct  # type: ignore[arg-type]
                    )
                elif item.column is not None and item.column != self._group_by:
                    row[item.column] = key
            rows.append(row)
        order_by = self._query.order_by
        if order_by is not None:
            rows.sort(
                key=lambda row: (row.get(order_by) is None, row.get(order_by)),
                reverse=self._query.order_desc,
            )
        elif self._group_by is not None:
            rows.sort(key=lambda row: (row.get(self._group_by) is None, row.get(self._group_by)))
        if self._query.limit is not None:
            rows = rows[: self._query.limit]
        return rows


def apply_order_limit(
    query: ParsedQuery, rows: list[dict], vectorized: bool = False
) -> list[dict]:
    """ORDER BY / LIMIT for non-aggregate queries.

    With ``vectorized`` the sort runs through the argsort top-k kernel
    (rank keys once, ``argpartition`` when a LIMIT bounds the output) —
    identical ordering to the stable python sort, including null
    placement and tie order.  Keys the kernel cannot rank (mixed
    incomparable types) fall back to the python path.
    """
    order_by = query.order_by
    if order_by is not None:
        if vectorized:
            from repro.query.kernels import top_k_order

            order = top_k_order(
                [row.get(order_by) for row in rows],
                desc=query.order_desc,
                limit=query.limit,
            )
            if order is not None:
                return [rows[i] for i in order.tolist()]
        rows = sorted(
            rows,
            key=lambda row: (row.get(order_by) is None, row.get(order_by)),
            reverse=query.order_desc,
        )
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows
