"""Minimal SQL dialect for log retrieval.

LogStore speaks the SQL protocol (Figure 3: "Application (SQL
Protocol)").  This parser covers the query shapes the paper evaluates::

    SELECT log FROM request_log
    WHERE tenant_id = 12276
      AND ts >= '2020-11-11 00:00:00' AND ts <= '2020-11-11 01:00:00'
      AND ip = '192.168.0.1' AND latency >= 100 AND fail = 'false'

    SELECT ip, COUNT(*) FROM request_log
    WHERE tenant_id = 3 AND MATCH(log, 'error timeout')
    GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 10

Supported: SELECT list (columns / * / aggregates COUNT, SUM, AVG, MIN,
MAX), WHERE with AND/OR/NOT, comparisons, BETWEEN, IN, MATCH(col,
'terms'), GROUP BY one column, ORDER BY, LIMIT.  Literal coercion to
the column's type (timestamps from 'YYYY-MM-DD HH:MM:SS', booleans from
'true'/'false' — note the paper's own sample writes ``fail = 'false'``)
happens in the planner, which knows the schema.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import SqlParseError
from repro.query.ast import And, Between, CmpOp, Comparison, Expr, In, Like, Match, Not, Or

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "between", "in",
    "match", "like", "group", "by", "order", "limit", "asc", "desc",
    "count", "sum", "avg", "min", "max", "distinct", "approx_count_distinct",
}

_AGG_FUNCS = {"count", "sum", "avg", "min", "max", "approx_count_distinct"}


@dataclass(frozen=True)
class SelectItem:
    """One projection: a plain column or an aggregate call."""

    column: str | None  # None for COUNT(*)
    aggregate: str | None = None  # None for plain column reference
    distinct: bool = False  # COUNT(DISTINCT col)

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    def label(self) -> str:
        if self.aggregate is None:
            return self.column or "*"
        inner = self.column if self.column is not None else "*"
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.aggregate.upper()}({inner})"


@dataclass
class ParsedQuery:
    """Result of parsing one SELECT statement."""

    table: str
    select: list[SelectItem]
    where: Expr | None = None
    group_by: str | None = None
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None
    select_star: bool = False
    raw_sql: str = ""

    @property
    def is_aggregate(self) -> bool:
        return any(item.is_aggregate for item in self.select)

    def projected_columns(self) -> list[str]:
        """Plain (non-aggregate) columns referenced in the select list."""
        return [item.column for item in self.select if not item.is_aggregate and item.column]

    def aggregate_input_columns(self) -> list[str]:
        """Columns whose values aggregation actually consumes.

        The GROUP BY key plus every aggregated column — the exact set
        the tier-3 columnar path reads; COUNT(*) consumes none.  Order
        is deterministic (GROUP BY first, then select-list order).
        """
        out: list[str] = []
        if self.group_by is not None:
            out.append(self.group_by)
        for item in self.select:
            if item.is_aggregate and item.column is not None and item.column not in out:
                out.append(item.column)
        return out


class _Tokens:
    def __init__(self, sql: str) -> None:
        self._tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(sql):
            match = _TOKEN_RE.match(sql, pos)
            if match is None:
                remaining = sql[pos:].strip()
                if not remaining:
                    break
                raise SqlParseError(f"unexpected character at: {remaining[:20]!r}")
            pos = match.end()
            for kind in ("string", "number", "op", "punct", "word"):
                text = match.group(kind)
                if text is not None:
                    self._tokens.append((kind, text))
                    break
        self._pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end of query")
        self._pos += 1
        return token

    def accept_word(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "word" and token[1].lower() == word:
            self._pos += 1
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise SqlParseError(f"expected {word.upper()!r} near {self.peek()}")

    def accept_punct(self, punct: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "punct" and token[1] == punct:
            self._pos += 1
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            raise SqlParseError(f"expected {punct!r} near {self.peek()}")

    def expect_identifier(self) -> str:
        kind, text = self.next()
        if kind != "word" or text.lower() in _KEYWORDS:
            raise SqlParseError(f"expected identifier, got {text!r}")
        return text

    def at_end(self) -> bool:
        return self.peek() is None


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def _parse_literal(tokens: _Tokens):
    kind, text = tokens.next()
    if kind == "string":
        return _unquote(text)
    if kind == "number":
        return float(text) if "." in text else int(text)
    if kind == "word" and text.lower() in ("true", "false"):
        return text.lower() == "true"
    raise SqlParseError(f"expected literal, got {text!r}")


def _parse_select_item(tokens: _Tokens) -> SelectItem:
    token = tokens.peek()
    if token is None:
        raise SqlParseError("expected select item")
    if token[0] == "punct" and token[1] == "*":
        tokens.next()
        return SelectItem(column=None, aggregate=None)
    kind, text = tokens.next()
    if kind != "word":
        raise SqlParseError(f"expected column or aggregate, got {text!r}")
    lower = text.lower()
    if lower in _AGG_FUNCS:
        tokens.expect_punct("(")
        if tokens.accept_punct("*"):
            if lower != "count":
                raise SqlParseError(f"{lower.upper()}(*) is only valid for COUNT")
            tokens.expect_punct(")")
            return SelectItem(column=None, aggregate="count")
        distinct = tokens.accept_word("distinct")
        if distinct and lower != "count":
            raise SqlParseError(f"DISTINCT is only supported inside COUNT, not {lower.upper()}")
        column = tokens.expect_identifier()
        tokens.expect_punct(")")
        return SelectItem(column=column, aggregate=lower, distinct=distinct)
    if lower in _KEYWORDS:
        raise SqlParseError(f"unexpected keyword {text!r} in select list")
    return SelectItem(column=text, aggregate=None)


def _parse_or(tokens: _Tokens) -> Expr:
    left = _parse_and(tokens)
    children = [left]
    while tokens.accept_word("or"):
        children.append(_parse_and(tokens))
    return children[0] if len(children) == 1 else Or(tuple(children))


def _parse_and(tokens: _Tokens) -> Expr:
    left = _parse_primary(tokens)
    children = [left]
    while tokens.accept_word("and"):
        children.append(_parse_primary(tokens))
    return children[0] if len(children) == 1 else And(tuple(children))


def _parse_primary(tokens: _Tokens) -> Expr:
    if tokens.accept_word("not"):
        return Not(_parse_primary(tokens))
    if tokens.accept_punct("("):
        inner = _parse_or(tokens)
        tokens.expect_punct(")")
        return inner
    if tokens.accept_word("match"):
        tokens.expect_punct("(")
        column = tokens.expect_identifier()
        tokens.expect_punct(",")
        kind, text = tokens.next()
        if kind != "string":
            raise SqlParseError("MATCH requires a string literal")
        tokens.expect_punct(")")
        return Match(column, _unquote(text))
    column = tokens.expect_identifier()
    if tokens.accept_word("like"):
        return _parse_like(tokens, column)
    if tokens.accept_word("between"):
        low = _parse_literal(tokens)
        tokens.expect_word("and")
        high = _parse_literal(tokens)
        return Between(column, low, high)
    if tokens.accept_word("not"):
        tokens.expect_word("in")
        return Not(_parse_in(tokens, column))
    if tokens.accept_word("in"):
        return _parse_in(tokens, column)
    kind, text = tokens.next()
    if kind != "op":
        raise SqlParseError(f"expected comparison operator after {column!r}, got {text!r}")
    op_text = "!=" if text == "<>" else text
    op = CmpOp(op_text)
    value = _parse_literal(tokens)
    return Comparison(column, op, value)


def _parse_like(tokens: _Tokens, column: str) -> Like:
    kind, text = tokens.next()
    if kind != "string":
        raise SqlParseError("LIKE requires a string literal")
    pattern = _unquote(text)
    if not pattern.endswith("%") or "%" in pattern[:-1] or "_" in pattern:
        raise SqlParseError(
            f"only prefix LIKE patterns ('abc%') are supported, got {pattern!r}"
        )
    return Like(column, pattern[:-1])


def _parse_in(tokens: _Tokens, column: str) -> In:
    tokens.expect_punct("(")
    values = [_parse_literal(tokens)]
    while tokens.accept_punct(","):
        values.append(_parse_literal(tokens))
    tokens.expect_punct(")")
    return In(column, tuple(values))


def parse_sql(sql: str) -> ParsedQuery:
    """Parse one SELECT statement of the minimal dialect."""
    tokens = _Tokens(sql)
    tokens.expect_word("select")
    select = [_parse_select_item(tokens)]
    while tokens.accept_punct(","):
        select.append(_parse_select_item(tokens))
    tokens.expect_word("from")
    table = tokens.expect_identifier()
    where: Expr | None = None
    if tokens.accept_word("where"):
        where = _parse_or(tokens)
    group_by: str | None = None
    if tokens.accept_word("group"):
        tokens.expect_word("by")
        group_by = tokens.expect_identifier()
    order_by: str | None = None
    order_desc = False
    if tokens.accept_word("order"):
        tokens.expect_word("by")
        token = tokens.peek()
        if token is not None and token[0] == "word" and token[1].lower() in _AGG_FUNCS:
            item = _parse_select_item(tokens)
            order_by = item.label()
        else:
            order_by = tokens.expect_identifier()
        if tokens.accept_word("desc"):
            order_desc = True
        else:
            tokens.accept_word("asc")
    limit: int | None = None
    if tokens.accept_word("limit"):
        value = _parse_literal(tokens)
        if not isinstance(value, int) or value < 0:
            raise SqlParseError(f"LIMIT requires a non-negative integer, got {value!r}")
        limit = value
    if not tokens.at_end():
        raise SqlParseError(f"trailing tokens near {tokens.peek()}")

    select_star = any(item.column is None and item.aggregate is None for item in select)
    parsed = ParsedQuery(
        table=table,
        select=select,
        where=where,
        group_by=group_by,
        order_by=order_by,
        order_desc=order_desc,
        limit=limit,
        select_star=select_star,
        raw_sql=sql,
    )
    _validate(parsed)
    return parsed


def _validate(query: ParsedQuery) -> None:
    has_aggregate = query.is_aggregate
    plain = [item for item in query.select if not item.is_aggregate and item.column is not None]
    if has_aggregate and plain:
        if query.group_by is None:
            raise SqlParseError("mixing columns and aggregates requires GROUP BY")
        for item in plain:
            if item.column != query.group_by:
                raise SqlParseError(
                    f"column {item.column!r} must appear in GROUP BY"
                )
    if query.group_by is not None and not has_aggregate:
        raise SqlParseError("GROUP BY requires at least one aggregate in SELECT")
