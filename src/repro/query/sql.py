"""Minimal SQL dialect for log retrieval and the front-door statements.

LogStore speaks the SQL protocol (Figure 3: "Application (SQL
Protocol)").  This parser covers the query shapes the paper evaluates::

    SELECT log FROM request_log
    WHERE tenant_id = 12276
      AND ts >= '2020-11-11 00:00:00' AND ts <= '2020-11-11 01:00:00'
      AND ip = '192.168.0.1' AND latency >= 100 AND fail = 'false'

    SELECT ip, COUNT(*) FROM request_log
    WHERE tenant_id = 3 AND MATCH(log, 'error timeout')
    GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 10

plus the statement classes the :mod:`repro.frontdoor` session layer
dispatches (:func:`parse_statement`)::

    INSERT INTO workflow_runs (run_id, status) VALUES ('r1', 'running')

    CREATE TABLE workflow_runs (
        tenant_id INT64, ts TIMESTAMP, run_id STRING,
        status STRING, version INT64,
        VERSION BY run_id
    )

    SELECT run_id, status FROM (
        SELECT *, ROW_NUMBER() OVER (
            PARTITION BY run_id ORDER BY version DESC) AS rn
        FROM workflow_runs WHERE tenant_id = 7
    ) WHERE rn = 1

Supported in SELECT: select list (columns / * / aggregates COUNT, SUM,
AVG, MIN, MAX), WHERE with AND/OR/NOT, comparisons, BETWEEN, IN,
IS [NOT] NULL, MATCH(col, 'terms'), one-level FROM (subquery) with a
single ROW_NUMBER() window, GROUP BY one column, ORDER BY, LIMIT.
Literal coercion to the column's type happens in the planner, which
knows the schema.

The tokenizer tracks character offsets, so every
:class:`~repro.common.errors.SqlParseError` carries a ``position`` and
a caret-context snippet (:func:`caret_context`) pointing at the
offending character — front-door clients see *where* a statement broke.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import SqlParseError
from repro.query.ast import (
    And,
    Between,
    CmpOp,
    Comparison,
    Expr,
    In,
    IsNull,
    Like,
    Match,
    Not,
    Or,
)

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+|-?\d+)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*.])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "between", "in",
    "match", "like", "group", "by", "order", "limit", "asc", "desc",
    "count", "sum", "avg", "min", "max", "distinct", "approx_count_distinct",
    "insert", "into", "values", "create", "table", "as", "is", "null",
    "over", "partition", "row_number",
}

_AGG_FUNCS = {"count", "sum", "avg", "min", "max", "approx_count_distinct"}

# CREATE TABLE type words → canonical physical type names.
_TYPE_WORDS = {
    "int": "INT64", "int64": "INT64", "bigint": "INT64", "integer": "INT64",
    "float": "FLOAT64", "float64": "FLOAT64", "double": "FLOAT64",
    "string": "STRING", "text": "STRING", "varchar": "STRING",
    "bool": "BOOL", "boolean": "BOOL",
    "timestamp": "TIMESTAMP", "datetime": "TIMESTAMP",
}


def caret_context(sql: str, position: int, width: int = 30) -> str:
    """Two-line snippet of ``sql`` with a caret under ``position``."""
    position = max(0, min(position, len(sql)))
    start = max(0, position - width)
    end = min(len(sql), position + width)
    prefix = "..." if start > 0 else ""
    suffix = "..." if end < len(sql) else ""
    snippet = sql[start:end].replace("\n", " ")
    caret_at = len(prefix) + (position - start)
    return f"{prefix}{snippet}{suffix}\n{' ' * caret_at}^"


@dataclass(frozen=True)
class SelectItem:
    """One projection: a plain column or an aggregate call."""

    column: str | None  # None for COUNT(*)
    aggregate: str | None = None  # None for plain column reference
    distinct: bool = False  # COUNT(DISTINCT col)

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    def label(self) -> str:
        if self.aggregate is None:
            return self.column or "*"
        inner = self.column if self.column is not None else "*"
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.aggregate.upper()}({inner})"


@dataclass(frozen=True)
class WindowFunc:
    """``ROW_NUMBER() OVER (PARTITION BY k ORDER BY v [DESC]) AS alias``.

    The only window shape the dialect supports — the "latest row per
    key" idiom of append-only versioned tables (ROADMAP item 1).
    """

    partition_by: str
    order_by: str
    order_desc: bool
    alias: str
    func: str = "row_number"

    def label(self) -> str:
        direction = "DESC" if self.order_desc else "ASC"
        return (
            f"ROW_NUMBER() OVER (PARTITION BY {self.partition_by} "
            f"ORDER BY {self.order_by} {direction}) AS {self.alias}"
        )


@dataclass
class ParsedQuery:
    """Result of parsing one SELECT statement."""

    table: str
    select: list[SelectItem]
    where: Expr | None = None
    group_by: str | None = None
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None
    select_star: bool = False
    raw_sql: str = ""
    # One-level subquery support: SELECT ... FROM (SELECT ...) WHERE ...
    subquery: "ParsedQuery | None" = None
    # The (at most one) ROW_NUMBER window item of this SELECT list.
    window: WindowFunc | None = None
    # Set by the semantic rewriter / planner when the window pattern is
    # recognized: a repro.query.dedup.DedupSpec.  Never set by parsing.
    dedup: object | None = None

    @property
    def is_aggregate(self) -> bool:
        return any(item.is_aggregate for item in self.select)

    def projected_columns(self) -> list[str]:
        """Plain (non-aggregate) columns referenced in the select list."""
        return [item.column for item in self.select if not item.is_aggregate and item.column]

    def aggregate_input_columns(self) -> list[str]:
        """Columns whose values aggregation actually consumes.

        The GROUP BY key plus every aggregated column — the exact set
        the tier-3 columnar path reads; COUNT(*) consumes none.  Order
        is deterministic (GROUP BY first, then select-list order).
        """
        out: list[str] = []
        if self.group_by is not None:
            out.append(self.group_by)
        for item in self.select:
            if item.is_aggregate and item.column is not None and item.column not in out:
                out.append(item.column)
        return out


@dataclass(frozen=True)
class ColumnDef:
    """One column definition of a CREATE TABLE statement."""

    name: str
    type_name: str  # canonical: INT64 / FLOAT64 / STRING / BOOL / TIMESTAMP
    tokenize: bool = False


@dataclass
class ParsedCreateTable:
    """Result of parsing one CREATE TABLE statement."""

    table: str
    columns: tuple[ColumnDef, ...]
    version_by: str | None = None
    if_not_exists: bool = False
    raw_sql: str = ""


@dataclass
class ParsedInsert:
    """Result of parsing one INSERT statement."""

    table: str
    columns: tuple[str, ...] | None  # None = full schema order
    rows: list[tuple]
    raw_sql: str = ""


@dataclass
class ParsedAlterTenant:
    """Result of parsing ``ALTER TENANT <id> SET RETENTION ...``.

    ``ttl`` / ``cold_age`` hold the raw duration value (a suffixed
    string like ``'7d'``, a number of seconds, or None for NULL);
    ``set_ttl`` / ``set_cold_age`` record which clauses were present,
    so an omitted knob is left untouched rather than cleared.
    """

    tenant_id: int
    ttl: str | float | int | None = None
    cold_age: str | float | int | None = None
    set_ttl: bool = False
    set_cold_age: bool = False
    raw_sql: str = ""


class _Tokens:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self._tokens: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(sql):
            match = _TOKEN_RE.match(sql, pos)
            if match is None:
                stripped = sql[pos:].lstrip()
                if not stripped:
                    break
                at = len(sql) - len(stripped)
                raise SqlParseError(
                    f"unexpected character {stripped[0]!r} at position {at}\n"
                    + caret_context(sql, at),
                    position=at,
                )
            for kind in ("string", "number", "op", "punct", "word"):
                text = match.group(kind)
                if text is not None:
                    self._tokens.append((kind, text, match.start(kind)))
                    break
            pos = match.end()
        self._pos = 0

    def error(self, message: str, position: int | None = None) -> SqlParseError:
        """Build a parse error anchored at ``position`` (default: the
        current token, or end-of-statement when input ran out)."""
        if position is None:
            token = self.peek()
            position = token[2] if token is not None else len(self.sql)
        return SqlParseError(
            f"{message} at position {position}\n" + caret_context(self.sql, position),
            position=position,
        )

    def peek(self) -> tuple[str, str, int] | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def peek_ahead(self, offset: int) -> tuple[str, str, int] | None:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of statement")
        self._pos += 1
        return token

    def accept_word(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "word" and token[1].lower() == word:
            self._pos += 1
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            token = self.peek()
            got = f"{token[1]!r}" if token is not None else "end of statement"
            raise self.error(f"expected {word.upper()!r}, got {got}")

    def accept_punct(self, punct: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "punct" and token[1] == punct:
            self._pos += 1
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            token = self.peek()
            got = f"{token[1]!r}" if token is not None else "end of statement"
            raise self.error(f"expected {punct!r}, got {got}")

    def expect_identifier(self) -> str:
        kind, text, pos = self.next()
        if kind != "word" or text.lower() in _KEYWORDS:
            raise self.error(f"expected identifier, got {text!r}", pos)
        return text

    def at_end(self) -> bool:
        return self.peek() is None


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def _number_value(text: str):
    return float(text) if ("." in text or "e" in text or "E" in text) else int(text)


def _parse_literal(tokens: _Tokens):
    kind, text, pos = tokens.next()
    if kind == "string":
        return _unquote(text)
    if kind == "number":
        return _number_value(text)
    if kind == "word" and text.lower() in ("true", "false"):
        return text.lower() == "true"
    if kind == "word" and text.lower() == "null":
        return None
    raise tokens.error(f"expected literal, got {text!r}", pos)


def _parse_window(tokens: _Tokens) -> WindowFunc:
    """``ROW_NUMBER() OVER (PARTITION BY k ORDER BY v [DESC]) AS alias``."""
    tokens.expect_punct("(")
    tokens.expect_punct(")")
    tokens.expect_word("over")
    tokens.expect_punct("(")
    tokens.expect_word("partition")
    tokens.expect_word("by")
    partition_by = tokens.expect_identifier()
    tokens.expect_word("order")
    tokens.expect_word("by")
    order_by = tokens.expect_identifier()
    order_desc = False
    if tokens.accept_word("desc"):
        order_desc = True
    else:
        tokens.accept_word("asc")
    tokens.expect_punct(")")
    if not tokens.accept_word("as"):
        raise tokens.error("window function requires 'AS <alias>'")
    alias = tokens.expect_identifier()
    return WindowFunc(
        partition_by=partition_by, order_by=order_by, order_desc=order_desc, alias=alias
    )


def _parse_select_item(tokens: _Tokens) -> SelectItem | WindowFunc:
    token = tokens.peek()
    if token is None:
        raise tokens.error("expected select item")
    if token[0] == "punct" and token[1] == "*":
        tokens.next()
        return SelectItem(column=None, aggregate=None)
    kind, text, pos = tokens.next()
    if kind != "word":
        raise tokens.error(f"expected column or aggregate, got {text!r}", pos)
    lower = text.lower()
    if lower == "row_number":
        return _parse_window(tokens)
    if lower in _AGG_FUNCS:
        tokens.expect_punct("(")
        if tokens.accept_punct("*"):
            if lower != "count":
                raise tokens.error(f"{lower.upper()}(*) is only valid for COUNT", pos)
            tokens.expect_punct(")")
            return SelectItem(column=None, aggregate="count")
        distinct = tokens.accept_word("distinct")
        if distinct and lower != "count":
            raise tokens.error(
                f"DISTINCT is only supported inside COUNT, not {lower.upper()}", pos
            )
        column = tokens.expect_identifier()
        tokens.expect_punct(")")
        return SelectItem(column=column, aggregate=lower, distinct=distinct)
    if lower in _KEYWORDS:
        raise tokens.error(f"unexpected keyword {text!r} in select list", pos)
    return SelectItem(column=text, aggregate=None)


def _parse_or(tokens: _Tokens) -> Expr:
    left = _parse_and(tokens)
    children = [left]
    while tokens.accept_word("or"):
        children.append(_parse_and(tokens))
    return children[0] if len(children) == 1 else Or(tuple(children))


def _parse_and(tokens: _Tokens) -> Expr:
    left = _parse_primary(tokens)
    children = [left]
    while tokens.accept_word("and"):
        children.append(_parse_primary(tokens))
    return children[0] if len(children) == 1 else And(tuple(children))


def _parse_primary(tokens: _Tokens) -> Expr:
    if tokens.accept_word("not"):
        return Not(_parse_primary(tokens))
    if tokens.accept_punct("("):
        inner = _parse_or(tokens)
        tokens.expect_punct(")")
        return inner
    if tokens.accept_word("match"):
        tokens.expect_punct("(")
        column = tokens.expect_identifier()
        tokens.expect_punct(",")
        kind, text, pos = tokens.next()
        if kind != "string":
            raise tokens.error("MATCH requires a string literal", pos)
        tokens.expect_punct(")")
        return Match(column, _unquote(text))
    column = tokens.expect_identifier()
    if tokens.accept_word("is"):
        negated = tokens.accept_word("not")
        tokens.expect_word("null")
        null_test: Expr = IsNull(column)
        return Not(null_test) if negated else null_test
    if tokens.accept_word("like"):
        return _parse_like(tokens, column)
    if tokens.accept_word("between"):
        low = _parse_literal(tokens)
        tokens.expect_word("and")
        high = _parse_literal(tokens)
        return Between(column, low, high)
    if tokens.accept_word("not"):
        tokens.expect_word("in")
        return Not(_parse_in(tokens, column))
    if tokens.accept_word("in"):
        return _parse_in(tokens, column)
    kind, text, pos = tokens.next()
    if kind != "op":
        raise tokens.error(
            f"expected comparison operator after {column!r}, got {text!r}", pos
        )
    op_text = "!=" if text == "<>" else text
    op = CmpOp(op_text)
    value = _parse_literal(tokens)
    return Comparison(column, op, value)


def _parse_like(tokens: _Tokens, column: str) -> Like:
    kind, text, pos = tokens.next()
    if kind != "string":
        raise tokens.error("LIKE requires a string literal", pos)
    pattern = _unquote(text)
    if not pattern.endswith("%") or "%" in pattern[:-1] or "_" in pattern:
        raise tokens.error(
            f"only prefix LIKE patterns ('abc%') are supported, got {pattern!r}", pos
        )
    return Like(column, pattern[:-1])


def _parse_in(tokens: _Tokens, column: str) -> In:
    tokens.expect_punct("(")
    values = [_parse_literal(tokens)]
    while tokens.accept_punct(","):
        values.append(_parse_literal(tokens))
    tokens.expect_punct(")")
    return In(column, tuple(values))


def _parse_select(tokens: _Tokens, depth: int = 0) -> ParsedQuery:
    tokens.expect_word("select")
    select: list[SelectItem] = []
    window: WindowFunc | None = None

    def add_item() -> None:
        nonlocal window
        item = _parse_select_item(tokens)
        if isinstance(item, WindowFunc):
            if window is not None:
                raise tokens.error("at most one window function per SELECT")
            window = item
        else:
            select.append(item)

    add_item()
    while tokens.accept_punct(","):
        add_item()
    if not select and window is None:
        raise tokens.error("empty select list")

    tokens.expect_word("from")
    subquery: ParsedQuery | None = None
    if tokens.accept_punct("("):
        if depth >= 1:
            raise tokens.error("nested subqueries are not supported")
        subquery = _parse_select(tokens, depth=depth + 1)
        tokens.expect_punct(")")
        table = subquery.table
        if tokens.accept_word("as"):
            tokens.expect_identifier()  # alias accepted, unused
        else:
            ahead = tokens.peek()
            if ahead is not None and ahead[0] == "word" and ahead[1].lower() not in _KEYWORDS:
                tokens.next()  # bare alias
    else:
        table = tokens.expect_identifier()
        # Qualified names (one dot): the `_system.<table>` namespace.
        if tokens.accept_punct("."):
            table = f"{table}.{tokens.expect_identifier()}"

    where: Expr | None = None
    if tokens.accept_word("where"):
        where = _parse_or(tokens)
    group_by: str | None = None
    if tokens.accept_word("group"):
        tokens.expect_word("by")
        group_by = tokens.expect_identifier()
    order_by: str | None = None
    order_desc = False
    if tokens.accept_word("order"):
        tokens.expect_word("by")
        token = tokens.peek()
        if token is not None and token[0] == "word" and token[1].lower() in _AGG_FUNCS:
            item = _parse_select_item(tokens)
            order_by = item.label()
        else:
            order_by = tokens.expect_identifier()
        if tokens.accept_word("desc"):
            order_desc = True
        else:
            tokens.accept_word("asc")
    limit: int | None = None
    if tokens.accept_word("limit"):
        limit_token = tokens.peek()
        value = _parse_literal(tokens)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            position = limit_token[2] if limit_token is not None else None
            raise tokens.error(
                f"LIMIT requires a non-negative integer, got {value!r}", position
            )
        limit = value

    select_star = any(item.column is None and item.aggregate is None for item in select)
    return ParsedQuery(
        table=table,
        select=select,
        where=where,
        group_by=group_by,
        order_by=order_by,
        order_desc=order_desc,
        limit=limit,
        select_star=select_star,
        raw_sql=tokens.sql,
        subquery=subquery,
        window=window,
    )


def parse_sql(sql: str) -> ParsedQuery:
    """Parse one SELECT statement of the minimal dialect."""
    tokens = _Tokens(sql)
    head = tokens.peek()
    if head is not None and head[0] == "word" and head[1].lower() in ("insert", "create"):
        raise tokens.error(
            f"expected a SELECT statement, got {head[1].upper()} "
            "(use parse_statement / a front-door session for writes and DDL)"
        )
    parsed = _parse_select(tokens)
    if not tokens.at_end():
        raise tokens.error(f"trailing tokens starting with {tokens.peek()[1]!r}")
    _validate(parsed, tokens)
    return parsed


def _parse_insert(tokens: _Tokens) -> ParsedInsert:
    tokens.expect_word("insert")
    tokens.expect_word("into")
    table = tokens.expect_identifier()
    columns: tuple[str, ...] | None = None
    if tokens.accept_punct("("):
        names = [tokens.expect_identifier()]
        while tokens.accept_punct(","):
            names.append(tokens.expect_identifier())
        tokens.expect_punct(")")
        if len(set(names)) != len(names):
            raise tokens.error("duplicate column in INSERT column list")
        columns = tuple(names)
    tokens.expect_word("values")
    rows: list[tuple] = []
    while True:
        tokens.expect_punct("(")
        values = [_parse_literal(tokens)]
        while tokens.accept_punct(","):
            values.append(_parse_literal(tokens))
        tokens.expect_punct(")")
        if columns is not None and len(values) != len(columns):
            raise tokens.error(
                f"INSERT row has {len(values)} values for {len(columns)} columns"
            )
        if rows and len(values) != len(rows[0]):
            raise tokens.error("INSERT rows have inconsistent arity")
        rows.append(tuple(values))
        if not tokens.accept_punct(","):
            break
    if not tokens.at_end():
        raise tokens.error(f"trailing tokens starting with {tokens.peek()[1]!r}")
    return ParsedInsert(table=table, columns=columns, rows=rows, raw_sql=tokens.sql)


def _parse_create(tokens: _Tokens) -> ParsedCreateTable:
    tokens.expect_word("create")
    tokens.expect_word("table")
    if_not_exists = False
    if tokens.accept_word("if"):
        tokens.expect_word("not")
        tokens.expect_word("exists")
        if_not_exists = True
    table = tokens.expect_identifier()
    tokens.expect_punct("(")
    columns: list[ColumnDef] = []
    version_by: str | None = None
    while True:
        head = tokens.peek()
        ahead = tokens.peek_ahead(1)
        is_version_clause = (
            head is not None
            and head[0] == "word"
            and head[1].lower() == "version"
            and ahead is not None
            and ahead[0] == "word"
            and ahead[1].lower() == "by"
        )
        if is_version_clause:
            if version_by is not None:
                raise tokens.error("duplicate VERSION BY clause")
            tokens.next()  # VERSION
            tokens.next()  # BY
            version_by = tokens.expect_identifier()
        else:
            name = tokens.expect_identifier()
            kind, text, pos = tokens.next()
            type_name = _TYPE_WORDS.get(text.lower()) if kind == "word" else None
            if type_name is None:
                raise tokens.error(f"unknown column type {text!r}", pos)
            tokenize = bool(tokens.accept_word("tokenized") or tokens.accept_word("tokenize"))
            if tokenize and type_name != "STRING":
                raise tokens.error(f"TOKENIZED applies only to STRING columns, not {type_name}")
            columns.append(ColumnDef(name=name, type_name=type_name, tokenize=tokenize))
        if not tokens.accept_punct(","):
            break
    tokens.expect_punct(")")
    if not tokens.at_end():
        raise tokens.error(f"trailing tokens starting with {tokens.peek()[1]!r}")
    if not columns:
        raise tokens.error("CREATE TABLE requires at least one column")
    names = [c.name for c in columns]
    if len(set(names)) != len(names):
        raise tokens.error(f"duplicate column name in CREATE TABLE {table!r}")
    if version_by is not None and version_by not in names:
        raise tokens.error(f"VERSION BY references undeclared column {version_by!r}")
    return ParsedCreateTable(
        table=table,
        columns=tuple(columns),
        version_by=version_by,
        if_not_exists=if_not_exists,
        raw_sql=tokens.sql,
    )


def _parse_alter(tokens: _Tokens) -> ParsedAlterTenant:
    """``ALTER TENANT <id> SET RETENTION [TTL <dur>] [COLD AFTER <dur>]``.

    Durations are string literals with a unit suffix (``'7d'``,
    ``'12h'``, ``'30m'``, ``'45s'``), bare numbers of seconds, or NULL
    to clear the knob.  At least one clause is required.
    """
    tokens.expect_word("alter")
    tokens.expect_word("tenant")
    kind, text, pos = tokens.next()
    if kind != "number" or not text.isdigit():
        raise tokens.error(f"expected tenant id, got {text!r}", pos)
    tenant_id = int(text)
    tokens.expect_word("set")
    tokens.expect_word("retention")
    parsed = ParsedAlterTenant(tenant_id=tenant_id, raw_sql=tokens.sql)
    while not tokens.at_end():
        if tokens.accept_word("ttl"):
            if parsed.set_ttl:
                raise tokens.error("duplicate TTL clause")
            parsed.ttl = _parse_literal(tokens)
            parsed.set_ttl = True
        elif tokens.accept_word("cold"):
            if parsed.set_cold_age:
                raise tokens.error("duplicate COLD AFTER clause")
            tokens.expect_word("after")
            parsed.cold_age = _parse_literal(tokens)
            parsed.set_cold_age = True
        else:
            raise tokens.error(
                f"expected TTL or COLD AFTER, got {tokens.peek()[1]!r}"
            )
    if not parsed.set_ttl and not parsed.set_cold_age:
        raise tokens.error("SET RETENTION requires a TTL or COLD AFTER clause")
    return parsed


def parse_statement(
    sql: str,
) -> ParsedQuery | ParsedInsert | ParsedCreateTable | ParsedAlterTenant:
    """Parse one statement of any class (SELECT / INSERT / CREATE TABLE
    / ALTER TENANT)."""
    tokens = _Tokens(sql)
    head = tokens.peek()
    if head is None:
        raise tokens.error("empty statement")
    word = head[1].lower() if head[0] == "word" else ""
    if word == "insert":
        return _parse_insert(tokens)
    if word == "create":
        return _parse_create(tokens)
    if word == "alter":
        return _parse_alter(tokens)
    parsed = _parse_select(tokens)
    if not tokens.at_end():
        raise tokens.error(f"trailing tokens starting with {tokens.peek()[1]!r}")
    _validate(parsed, tokens)
    return parsed


def _validate(query: ParsedQuery, tokens: _Tokens | None = None) -> None:
    def fail(message: str) -> SqlParseError:
        if tokens is not None:
            return tokens.error(message, position=0)
        return SqlParseError(message)

    has_aggregate = query.is_aggregate
    plain = [item for item in query.select if not item.is_aggregate and item.column is not None]
    if has_aggregate and plain:
        if query.group_by is None:
            raise fail("mixing columns and aggregates requires GROUP BY")
        for item in plain:
            if item.column != query.group_by:
                raise fail(f"column {item.column!r} must appear in GROUP BY")
    if query.group_by is not None and not has_aggregate:
        raise fail("GROUP BY requires at least one aggregate in SELECT")
    if query.window is not None:
        if has_aggregate:
            raise fail("window functions cannot be mixed with aggregates")
        if query.group_by is not None:
            raise fail("window functions cannot be combined with GROUP BY")
        if query.subquery is not None:
            raise fail("window functions are only supported in the inner query")
    inner = query.subquery
    if inner is not None:
        _validate(inner, tokens)
        if inner.window is not None:
            alias = inner.window.alias
            if alias in query.projected_columns():
                raise fail(
                    f"selecting the window alias {alias!r} in the outer query "
                    "is not supported"
                )
            if query.order_by == alias:
                raise fail(f"ORDER BY the window alias {alias!r} is not supported")


# -- parameter binding (prepared-statement support) -------------------------


def render_literal(value) -> str:
    """Render a Python value as a SQL literal of this dialect.

    The exact inverse of :func:`_parse_literal` — strings are quoted
    with doubled-quote escaping, booleans become TRUE/FALSE words, None
    becomes NULL.  Used by parameter binding and round-trip tests.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SqlParseError(f"cannot render non-finite float {value!r} as a literal")
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SqlParseError(f"cannot render {type(value).__name__} as a SQL literal")


def bind_parameters(sql: str, params) -> str:
    """Substitute ``?`` placeholders with rendered literals.

    Placeholders inside string literals are left alone (the scanner
    honours doubled-quote escaping).  Raises with the placeholder's
    position when the parameter count does not match.
    """
    params = list(params)
    out: list[str] = []
    index = 0
    in_string = False
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if in_string:
            if char == "'":
                if position + 1 < length and sql[position + 1] == "'":
                    out.append("''")
                    position += 2
                    continue
                in_string = False
            out.append(char)
            position += 1
            continue
        if char == "'":
            in_string = True
            out.append(char)
            position += 1
            continue
        if char == "?":
            if index >= len(params):
                raise SqlParseError(
                    f"statement has more placeholders than parameters "
                    f"({len(params)} given)\n" + caret_context(sql, position),
                    position=position,
                )
            out.append(render_literal(params[index]))
            index += 1
            position += 1
            continue
        out.append(char)
        position += 1
    if index != len(params):
        raise SqlParseError(
            f"statement has {index} placeholder(s) but {len(params)} parameter(s) given"
        )
    return "".join(out)
