"""Vectorized scan kernels: predicate AST → columnar boolean masks.

The §8 "vectorized query execution" compile layer.  :func:`compile_expr`
turns an :mod:`repro.query.ast` predicate tree into a kernel that
evaluates whole column batches at once — comparisons, IN/range and null
checks via :func:`repro.logblock.pruning.vectorized_block_mask` (the
single source of truth for leaf mask semantics), AND/OR/NOT via boolean
mask algebra.  Batches come in two flavours:

* archived LogBlocks expose decoded ``(values, null_mask)`` arrays
  through ``LogBlockReader.read_block_arrays`` (the per-leaf scan in
  :mod:`repro.logblock.pruning` consumes those directly);
* real-time row-store rows are wrapped by :class:`RowListBatch`, which
  extracts per-column array views from the row dicts on demand.

Shapes without a vector form — MATCH / LIKE-prefix leaves, mixed-type
columns, values outside int64 range, expression nodes the compiler does
not know — raise :class:`VectorizeFallback`; callers then run the
interpreted ``evaluate_row`` path, which is byte-identical by
construction (the differential test suite pins this).

The module also provides :func:`top_k_order`, the argsort-based ORDER
BY/LIMIT kernel, and :func:`classify_expr`, the static classification
the planner prints on the EXPLAIN ``vectorized:`` line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logblock.pruning import (
    EqPredicate,
    InPredicate,
    NePredicate,
    NotNullPredicate,
    NullPredicate,
    RangePredicate,
    vectorized_block_mask,
)
from repro.logblock.schema import ColumnType
from repro.query.ast import And, Expr, Not, Or

# Leaf predicate shapes with a vector kernel (everything
# `vectorized_block_mask` answers).  MATCH and LIKE-prefix are absent
# on purpose: token/prefix matching has no mask form here.
VECTOR_LEAVES = (
    EqPredicate,
    NePredicate,
    RangePredicate,
    InPredicate,
    NullPredicate,
    NotNullPredicate,
)


class VectorizeFallback(Exception):
    """Raised when an expression or batch has no safe vector form.

    ``reason`` is a short human-readable label surfaced in EXPLAIN
    ANALYZE fallback accounting.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# -- column batches ----------------------------------------------------------


class RowListBatch:
    """Per-column array views over a list of row dicts.

    The realtime counterpart of ``read_block_arrays``: columns are
    extracted lazily (only predicate columns pay) and memoized.  Null
    slots carry a type-neutral placeholder (0 / "" / False) and are
    masked out by ``null_mask``, mirroring the archived block encoding.
    A column whose values do not conform to the schema type — mixed
    types, bools in an INT64 column, ints beyond int64 — raises
    :class:`VectorizeFallback` instead of silently coercing.
    """

    def __init__(self, rows: list[dict], schema) -> None:
        self._rows = rows
        self._schema = schema
        self._arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def arrays(self, column: str) -> tuple[np.ndarray, np.ndarray]:
        cached = self._arrays.get(column)
        if cached is not None:
            return cached
        ctype = self._schema.column(column).ctype
        raw = [row.get(column) for row in self._rows]
        count = len(raw)
        null_mask = np.fromiter((v is None for v in raw), dtype=bool, count=count)
        if ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
            if any(v is not None and (isinstance(v, bool) or not isinstance(v, int)) for v in raw):
                raise VectorizeFallback(f"column {column}: mixed-type values")
            try:
                values = np.fromiter(
                    (0 if v is None else v for v in raw), dtype=np.int64, count=count
                )
            except OverflowError:
                raise VectorizeFallback(f"column {column}: value beyond int64") from None
        elif ctype is ColumnType.FLOAT64:
            if any(
                v is not None
                and (isinstance(v, bool) or not isinstance(v, (int, float)))
                for v in raw
            ):
                raise VectorizeFallback(f"column {column}: mixed-type values")
            values = np.fromiter(
                (0.0 if v is None else v for v in raw), dtype=np.float64, count=count
            )
        elif ctype is ColumnType.BOOL:
            if any(v is not None and not isinstance(v, bool) for v in raw):
                raise VectorizeFallback(f"column {column}: mixed-type values")
            values = np.fromiter(
                (False if v is None else v for v in raw), dtype=bool, count=count
            )
        elif ctype is ColumnType.STRING:
            if any(v is not None and not isinstance(v, str) for v in raw):
                raise VectorizeFallback(f"column {column}: mixed-type values")
            values = np.array(["" if v is None else v for v in raw], dtype=object)
        else:
            raise VectorizeFallback(f"column {column}: unsupported type {ctype.name}")
        self._arrays[column] = (values, null_mask)
        return values, null_mask


# -- the compiler ------------------------------------------------------------


def _leaf_fallback_reason(expr: Expr) -> str:
    name = type(expr).__name__
    column = next(iter(expr.columns()), "?")
    return f"{name}({column}) has no vector kernel"


def _compile(expr: Expr):
    if isinstance(expr, And):
        children = [_compile(child) for child in expr.children]

        def eval_and(batch, children=children):
            mask = children[0](batch)
            for child in children[1:]:
                if not mask.any():
                    break
                mask = mask & child(batch)
            return mask

        return eval_and
    if isinstance(expr, Or):
        children = [_compile(child) for child in expr.children]

        def eval_or(batch, children=children):
            mask = children[0](batch)
            for child in children[1:]:
                if mask.all():
                    break
                mask = mask | child(batch)
            return mask

        return eval_or
    if isinstance(expr, Not):
        child = _compile(expr.child)
        return lambda batch: ~child(batch)
    to_predicate = getattr(expr, "to_column_predicate", None)
    if to_predicate is None:
        raise VectorizeFallback(f"unknown expression {type(expr).__name__}")
    predicate = to_predicate()
    if not isinstance(predicate, VECTOR_LEAVES):
        raise VectorizeFallback(_leaf_fallback_reason(expr))

    def eval_leaf(batch, predicate=predicate):
        values, null_mask = batch.arrays(predicate.column)
        mask = vectorized_block_mask(predicate, values, null_mask)
        if mask is None:  # unreachable for VECTOR_LEAVES; belt-and-braces
            raise VectorizeFallback(_leaf_fallback_reason(expr))
        return mask

    return eval_leaf


@dataclass
class CompiledKernel:
    """A predicate compiled to columnar form.

    ``evaluate(batch)`` returns a boolean match mask over the batch's
    rows; the batch must expose ``arrays(column) → (values, null_mask)``
    (and may raise :class:`VectorizeFallback` when it cannot).
    """

    expr: Expr
    _evaluate: object

    def evaluate(self, batch) -> np.ndarray:
        return self._evaluate(batch)


def compile_expr(expr: Expr) -> CompiledKernel:
    """Compile a predicate tree; raises :class:`VectorizeFallback`."""
    return CompiledKernel(expr, _compile(expr))


# -- EXPLAIN classification --------------------------------------------------


@dataclass(frozen=True)
class VectorizedInfo:
    """Static vectorization verdict for one predicate tree."""

    mode: str  # "full" | "partial" | "none"
    reasons: tuple[str, ...] = ()

    def describe(self) -> str:
        if not self.reasons:
            return self.mode
        return f"{self.mode} ({'; '.join(self.reasons)})"


def classify_expr(expr: Expr, schema=None) -> VectorizedInfo:
    """How much of the predicate the vector kernels can evaluate.

    ``full`` — every leaf has a vector kernel; ``partial`` — some do
    (the archived path vectorizes per leaf, so partial trees still win);
    ``none`` — nothing does and every row takes the interpreted path.
    ``reasons`` lists each unsupported leaf plus, when a ``schema`` is
    given, the STRING columns whose *archived* blocks decode to python
    lists and scan interpreted even though the realtime path vectorizes
    them as object arrays.
    """
    supported = 0
    unsupported = 0
    reasons: list[str] = []

    def note(reason: str) -> None:
        if reason not in reasons:
            reasons.append(reason)

    def walk(node: Expr) -> None:
        nonlocal supported, unsupported
        if isinstance(node, (And, Or)):
            for child in node.children:
                walk(child)
            return
        if isinstance(node, Not):
            walk(node.child)
            return
        to_predicate = getattr(node, "to_column_predicate", None)
        predicate = to_predicate() if to_predicate is not None else None
        if predicate is None or not isinstance(predicate, VECTOR_LEAVES):
            unsupported += 1
            note(_leaf_fallback_reason(node) if predicate is not None
                 else f"unknown expression {type(node).__name__}")
            return
        supported += 1
        if schema is not None:
            column = predicate.column
            try:
                ctype = schema.column(column).ctype
            except Exception:
                return
            if ctype is ColumnType.STRING and not isinstance(
                predicate, (NullPredicate, NotNullPredicate)
            ):
                note(f"{column} is STRING: archived PLAIN blocks scan interpreted")

    walk(expr)
    if not supported:
        return VectorizedInfo("none", tuple(reasons))
    if unsupported:
        return VectorizedInfo("partial", tuple(reasons))
    return VectorizedInfo("full", tuple(reasons))


# -- ORDER BY / LIMIT top-k --------------------------------------------------


def top_k_order(keys: list, desc: bool = False, limit: int | None = None) -> np.ndarray | None:
    """Stable sort order over ``keys`` as row indices, or ``None``.

    Reproduces exactly ``sorted(key=(k is None, k), reverse=desc)`` —
    ascending puts nulls last, descending puts them first, and ties keep
    their original order (python's stable sort never reverses equal
    elements, even with ``reverse=True``).  Keys are ranked through
    ``np.unique`` and packed with their index into one int64 sort key,
    so a LIMIT takes the ``argpartition`` top-k path instead of a full
    sort.  Returns ``None`` when the keys are not vector-sortable
    (mixed incomparable types) — callers fall back to python sort.
    """
    count = len(keys)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    null_mask = np.fromiter((k is None for k in keys), dtype=bool, count=count)
    non_null = [k for k in keys if k is not None]
    try:
        if non_null:
            _, inverse = np.unique(np.array(non_null, dtype=object), return_inverse=True)
            distinct = int(inverse.max()) + 1
        else:
            inverse = np.empty(0, dtype=np.int64)
            distinct = 0
    except (TypeError, ValueError):
        return None
    score = np.empty(count, dtype=np.int64)
    if desc:
        # Python's (is_none, key) tuple with reverse=True sorts nulls
        # first, then values descending.
        score[null_mask] = 0
        score[~null_mask] = distinct - inverse.astype(np.int64)
    else:
        score[null_mask] = distinct
        score[~null_mask] = inverse.astype(np.int64)
    combined = score * np.int64(count + 1) + np.arange(count, dtype=np.int64)
    if limit is not None and 0 < limit < count:
        top = np.argpartition(combined, limit - 1)[:limit]
        return top[np.argsort(combined[top])]
    order = np.argsort(combined)
    if limit is not None:
        order = order[:limit]
    return order
