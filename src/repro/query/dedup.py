"""Latest-version deduplication for append-only versioned tables.

A versioned table (``CREATE TABLE ... VERSION BY key``) treats every
INSERT as an UPDATE: rows are immutable and append-only (the LogBase
"log as database" model), and a read of the *current* state keeps only
the newest row per key.  SQL expresses that with the window idiom::

    SELECT ... FROM (
        SELECT *, ROW_NUMBER() OVER (
            PARTITION BY key ORDER BY version DESC) AS rn
        FROM t WHERE ...
    ) WHERE rn = 1

The naive plan materializes every version of every key and ranks them
after the fact.  The :class:`LatestVersionDedup` operator instead runs
the tournament on narrow ``(key, version)`` columns and materializes
only the winners — the semantic rewriter (:mod:`repro.frontdoor.rewrite`)
maps the window idiom onto it.

Both paths share one winner definition (:class:`LatestVersionDedup`),
so the differential tests can require *byte-identical* output:

* the winning row of a key is the one with the greatest version;
* version ties break toward the later arrival (INSERT-as-UPDATE: the
  last write wins), which the executor guarantees by offering rows in
  stream order;
* a null version loses to any non-null version;
* output rows appear in the stream order of their winning offer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.aggregate import Aggregator, apply_order_limit
from repro.query.ast import Expr
from repro.query.sql import ParsedQuery, SelectItem, WindowFunc


@dataclass(frozen=True)
class DedupSpec:
    """Plan-level description of a latest-version dedup.

    ``post_filter`` holds outer-query conjuncts that must run *after*
    the tournament (filtering versions before ranking them would change
    which row wins — e.g. ``status = 'done'`` must not resurrect an old
    finished version of a run whose latest version is still running).
    """

    key_column: str
    version_column: str
    post_filter: Expr | None = None

    def describe(self) -> str:
        text = f"partition by {self.key_column} order by {self.version_column} desc"
        if self.post_filter is not None:
            text += ", post-filter applied to winners"
        return text


def version_sort_key(version):
    """Total order over version values with nulls first (= weakest)."""
    return (version is not None, version)


@dataclass
class _Entry:
    version: object
    seq: int
    payload: object


@dataclass
class LatestVersionDedup:
    """Streaming one-pass tournament: newest row per key wins.

    ``offer`` consumes ``(key, version, payload)`` triples in stream
    order; ``winners`` returns the surviving entries ordered by the
    stream position of the *winning* offer, which is what makes the
    operator's output order reproducible and identical between the
    archived columnar path and the naive materialization.
    """

    _entries: dict = field(default_factory=dict)
    _seq: int = 0
    offers: int = 0

    def offer(self, key, version, payload) -> None:
        seq = self._seq
        self._seq += 1
        self.offers += 1
        current = self._entries.get(key)
        if current is None or version_sort_key(version) >= version_sort_key(current.version):
            # >= : a tie goes to the later arrival (last write wins).
            self._entries[key] = _Entry(version=version, seq=seq, payload=payload)

    def winners(self) -> list[_Entry]:
        return sorted(self._entries.values(), key=lambda entry: entry.seq)

    def __len__(self) -> int:
        return len(self._entries)


def window_dedup_rows(rows: list[dict], key_column: str, version_column: str) -> list[dict]:
    """Reference dedup over fully materialized rows.

    Runs the exact same tournament the plan operator runs, so the
    differential tests can compare operator output against this on the
    same input and require equality byte for byte.
    """
    dedup = LatestVersionDedup()
    for row in rows:
        dedup.offer(row.get(key_column), row.get(version_column), row)
    return [entry.payload for entry in dedup.winners()]


def apply_window(rows: list[dict], window: WindowFunc) -> list[dict]:
    """Materialize a ROW_NUMBER window over row dicts (the naive plan).

    Returns copies of the input rows (original order preserved) with
    the rank stored under ``window.alias``.  Within a partition the
    sort is stable on :func:`version_sort_key`, so rank 1 with DESC is
    the latest arrival among maximal versions — the same winner the
    dedup operator picks.
    """
    partitions: dict = {}
    for index, row in enumerate(rows):
        partitions.setdefault(row.get(window.partition_by), []).append(index)
    ranked = [dict(row) for row in rows]
    for indices in partitions.values():
        ordered = sorted(
            indices,
            key=lambda i: version_sort_key(rows[i].get(window.order_by)),
            reverse=window.order_desc,
        )
        if window.order_desc:
            # Stable descending sort puts the *earlier* arrival first
            # among ties; INSERT-as-UPDATE wants the later one. Within
            # each equal-version run, reverse back to reversed-stream
            # order so rank 1 is the last write.
            ordered = _latest_first_within_ties(ordered, rows, window.order_by)
        for rank, i in enumerate(ordered, start=1):
            ranked[i][window.alias] = rank
    return ranked


def _latest_first_within_ties(ordered: list[int], rows: list[dict], order_by: str) -> list[int]:
    out: list[int] = []
    run: list[int] = []
    run_key = object()
    for i in ordered:
        key = version_sort_key(rows[i].get(order_by))
        if run and key != run_key:
            out.extend(reversed(run))
            run = []
        run.append(i)
        run_key = key
    out.extend(reversed(run))
    return out


def run_window_query(outer: ParsedQuery, rows: list[dict]) -> list[dict]:
    """Execute the naive two-level window query over materialized rows.

    ``rows`` are the inner query's matches (already filtered by the
    inner WHERE).  Applies the window, evaluates the outer WHERE on the
    ranked rows, strips the window alias, and finalizes projection /
    aggregation / ORDER BY / LIMIT.
    """
    inner = outer.subquery
    if inner is None or inner.window is None:
        raise ValueError("run_window_query requires an outer query over a window subquery")
    ranked = apply_window(rows, inner.window)
    if outer.where is not None:
        ranked = [row for row in ranked if outer.where.evaluate_row(row)]
    alias = inner.window.alias
    for row in ranked:
        row.pop(alias, None)
    return finalize_outer(outer, ranked)


def naive_scan_query(outer: ParsedQuery) -> ParsedQuery:
    """The inner scan the naive window plan executes: every version,
    every column, filtered only by the inner WHERE."""
    inner = outer.subquery
    if inner is None:
        raise ValueError("naive_scan_query requires a subquery")
    return ParsedQuery(
        table=inner.table,
        select=[SelectItem(column=None, aggregate=None)],
        where=inner.where,
        select_star=True,
        raw_sql=outer.raw_sql,
    )


def finalize_outer(query: ParsedQuery, rows: list[dict]) -> list[dict]:
    """Outer-query finalization shared by the naive and operator paths."""
    if query.is_aggregate:
        aggregator = Aggregator(query)
        aggregator.consume_many(rows)
        return aggregator.results()
    rows = apply_order_limit(query, rows)
    if query.select_star:
        return rows
    columns = query.projected_columns()
    return [{column: row.get(column) for column in columns} for row in rows]
