"""Distinct counting: exact sets and HyperLogLog sketches.

Log analytics constantly asks cardinality questions ("how many unique
IPs hit this API today?").  The SQL layer supports:

* ``COUNT(DISTINCT col)`` — exact, backed by a per-group hash set;
* ``APPROX_COUNT_DISTINCT(col)`` — a HyperLogLog sketch (Flajolet et
  al.), constant memory per group and mergeable across shards, which is
  what a broker needs to combine per-shard partial aggregates.

The HLL implementation uses the standard 2^p registers with the
bias-corrected estimator and linear counting for the small-cardinality
regime.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.common.errors import QueryError

DEFAULT_PRECISION = 12  # 4096 registers, ~1.6% standard error


def _hash64(value) -> int:
    data = repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HyperLogLog:
    """Mergeable cardinality sketch with 2**precision registers."""

    def __init__(self, precision: int = DEFAULT_PRECISION) -> None:
        if not 4 <= precision <= 18:
            raise QueryError(f"HLL precision must be in [4, 18], got {precision}")
        self.precision = precision
        self.m = 1 << precision
        self._registers = np.zeros(self.m, dtype=np.uint8)

    @property
    def alpha(self) -> float:
        if self.m == 16:
            return 0.673
        if self.m == 32:
            return 0.697
        if self.m == 64:
            return 0.709
        return 0.7213 / (1 + 1.079 / self.m)

    def add(self, value) -> None:
        """Observe one value (hashed internally; any hashable repr works)."""
        hashed = _hash64(value)
        register = hashed >> (64 - self.precision)
        remaining = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - remaining.bit_length() + 1
        if rank > self._registers[register]:
            self._registers[register] = rank

    def merge(self, other: "HyperLogLog") -> None:
        """Union with another sketch (register-wise max)."""
        if other.precision != self.precision:
            raise QueryError(
                f"cannot merge HLL precisions {self.precision} and {other.precision}"
            )
        np.maximum(self._registers, other._registers, out=self._registers)

    def estimate(self) -> int:
        """Estimated distinct count."""
        registers = self._registers.astype(np.float64)
        raw = self.alpha * self.m * self.m / np.sum(np.exp2(-registers))
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * self.m and zeros:
            # Small-range correction: linear counting.
            return int(round(self.m * math.log(self.m / zeros)))
        return int(round(raw))

    def to_bytes(self) -> bytes:
        return bytes([self.precision]) + self._registers.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "HyperLogLog":
        if not data:
            raise QueryError("empty HLL payload")
        sketch = cls(precision=data[0])
        registers = np.frombuffer(data, dtype=np.uint8, offset=1)
        if len(registers) != sketch.m:
            raise QueryError(
                f"HLL payload has {len(registers)} registers, expected {sketch.m}"
            )
        sketch._registers = registers.copy()
        return sketch


class ExactDistinct:
    """Exact distinct counter (a set), mergeable like the sketch."""

    def __init__(self) -> None:
        self._values: set = set()

    def add(self, value) -> None:
        self._values.add(value)

    def merge(self, other: "ExactDistinct") -> None:
        self._values |= other._values

    def estimate(self) -> int:
        return len(self._values)
