"""Query execution over archived LogBlocks (§5, Figure 8 steps 2–5).

For each LogBlock surviving the LogBlock-map filter:

1. load ``meta`` (through the object + block caches);
2. optionally prefetch the index members of indexed predicate columns
   in one parallel batch (§5.2);
3. evaluate the predicate tree to a row-id bitset using SMA pruning,
   index lookups, and block scans (:mod:`repro.logblock.pruning`);
4. optionally prefetch exactly the column blocks containing matched
   rows for the output columns;
5. materialize the matched rows.

The same executor also filters real-time (row store) rows by direct
expression evaluation — the row store deliberately has no indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.multilevel import CachingRangeReader, MultiLevelCache
from repro.common.bitset import Bitset
from repro.common.utils import wave_elapsed
from repro.logblock.pruning import PruneStats, evaluate_predicates
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import IndexType
from repro.logblock.writer import (
    META_MEMBER,
    LogBlockMeta,
    block_member,
    bloom_member,
    index_member,
)
from repro.logblock.sma import Sma
from repro.meta.catalog import TIER_COLD, LogBlockEntry
from repro.metrics.stats import PushdownCounters
from repro.prefetch.executor import ParallelPrefetcher
from repro.prefetch.planner import PrefetchPlanner
from repro.query.aggregate import Aggregator
from repro.query.ast import And, CmpOp, Comparison, Expr, In, IsNull, Not, Or
from repro.query.dedup import LatestVersionDedup
from repro.query.kernels import RowListBatch, VectorizeFallback, compile_expr
from repro.query.planner import QueryPlan
from repro.tarpack.reader import PackReader, SubrangeReader


@dataclass
class ExecutionOptions:
    """Knobs for the §6.3 experiments."""

    use_skipping: bool = True       # Figure 15: data skipping on/off
    use_indexes: bool = True        # ablation: SMA-only skipping
    use_prefetch: bool = True       # Figure 16: parallel prefetch on/off
    prefetch_threads: int = 32      # §6.3.2 "using 32 threads"
    prefetch_merge_gap: int = 4096
    # §8 vectorized execution: evaluate scan-path predicates on numpy
    # column vectors (archived blocks and realtime row batches) and run
    # ORDER BY/LIMIT through the argsort top-k kernel.  Unsafe shapes
    # fall back to the interpreted path with identical results.
    use_vectorized_scan: bool = True
    use_semantic_rewrite: bool = True  # frontdoor rewrite pass on/off

    # Aggregate pushdown tier ceiling: 0 = off (row materialization),
    # 1 = catalog-only, 2 = +SMA fold, 3 = +columnar late
    # materialization.  Tiers are cumulative; a block ineligible for
    # the enabled tiers falls through to the next one down.
    agg_pushdown_level: int = 3

    # CPU cost model, charged to the same virtual clock as the I/O.
    # These bound the OSS-vs-local and first-vs-repeat latency ratios
    # exactly the way real decode/evaluation CPU does in the paper.
    cpu_decode_bytes_per_s: float = 50e6   # decompress + decode rate
    cpu_scan_rows_per_s: float = 2e6       # predicate evaluation by scan
    cpu_index_lookup_s: float = 0.0005     # one index probe + bitset merge
    cpu_per_block_s: float = 0.001         # per-LogBlock plan/merge overhead
    # Row-dict materialization vs columnar aggregation fold, per value.
    # Building python dicts is the slow path the tier-3 pushdown avoids.
    cpu_materialize_values_per_s: float = 5e6
    cpu_agg_values_per_s: float = 20e6


@dataclass
class ExecutionStats:
    """Work accounting for one query."""

    blocks_visited: int = 0
    cold_blocks_visited: int = 0
    rows_matched: int = 0
    prune: PruneStats = field(default_factory=PruneStats)
    prefetch_requests: int = 0
    prefetch_bytes: int = 0
    pushdown: PushdownCounters = field(default_factory=PushdownCounters)
    # Latest-version dedup accounting: versions offered to the
    # tournament vs winners actually materialized.
    dedup_candidates: int = 0
    dedup_winners: int = 0
    # Realtime scan-mode accounting (the archived counterpart lives in
    # ``prune``): rows whose predicate ran on column vectors vs the
    # per-row interpreter, and why vectorization fell back.
    realtime_rows_vectorized: int = 0
    realtime_rows_interpreted: int = 0
    realtime_fallbacks: dict = field(default_factory=dict)

    @property
    def rows_evaluated_vectorized(self) -> int:
        """Rows evaluated on numpy vectors, archived + realtime."""
        return self.prune.rows_vectorized + self.realtime_rows_vectorized

    @property
    def rows_evaluated_interpreted(self) -> int:
        """Rows evaluated by the per-row interpreter, archived + realtime."""
        return self.prune.rows_interpreted + self.realtime_rows_interpreted

    @property
    def vectorized_fallbacks(self) -> dict:
        """Merged fallback reasons (reason → count) across both paths."""
        merged = dict(self.prune.fallbacks)
        for reason, count in self.realtime_fallbacks.items():
            merged[reason] = merged.get(reason, 0) + count
        return merged


def _equality_string_leaves(expr: Expr) -> dict[str, list]:
    """column → Eq/In leaves with string literals (Bloom-answerable)."""
    leaves: dict[str, list] = {}

    def walk(node: Expr) -> None:
        if isinstance(node, And) or isinstance(node, Or):
            for child in node.children:
                walk(child)
        elif isinstance(node, Not):
            walk(node.child)
        elif isinstance(node, Comparison):
            if node.op is CmpOp.EQ and isinstance(node.value, str):
                leaves.setdefault(node.column, []).append(node)
        elif isinstance(node, In):
            if all(isinstance(v, str) for v in node.values):
                leaves.setdefault(node.column, []).append(node)

    walk(expr)
    return leaves


def _all_leaves_for_column(expr: Expr, column: str) -> list:
    """Every leaf node referencing ``column`` anywhere in the tree."""
    out: list = []

    def walk(node: Expr) -> None:
        if isinstance(node, (And, Or)):
            for child in node.children:
                walk(child)
        elif isinstance(node, Not):
            walk(node.child)
        elif column in node.columns():
            out.append(node)

    walk(expr)
    return out


def _leaf_may_match_bloom(leaf, bloom) -> bool:
    if isinstance(leaf, Comparison):
        return bloom.might_contain(leaf.value)
    if isinstance(leaf, In):
        return any(bloom.might_contain(v) for v in leaf.values)
    return True


class BlockExecutor:
    """Executes plans against LogBlocks in one OSS bucket."""

    def __init__(
        self,
        range_reader: CachingRangeReader,
        bucket: str,
        options: ExecutionOptions | None = None,
    ) -> None:
        self._reader = range_reader
        self._bucket = bucket
        self.options = options if options is not None else ExecutionOptions()
        self._planner = PrefetchPlanner(merge_gap=self.options.prefetch_merge_gap)
        self._charge = range_reader.store.clock.sleep

    @property
    def cache(self) -> MultiLevelCache:
        return self._reader.cache

    # -- per-block machinery --------------------------------------------

    def _open_block_from_pack(self, pack: PackReader) -> LogBlockReader:
        decode_rate = self.options.cpu_decode_bytes_per_s
        reader = LogBlockReader(
            pack, decode_charge=lambda nbytes: self._charge(nbytes / decode_rate)
        )
        # Decoded-meta object cache: parsing the meta member is the most
        # repeated deserialization across queries of the same tenant.
        meta_key = (self._bucket, pack.key, META_MEMBER)
        meta = self.cache.objects.get(meta_key)
        if meta is None:
            meta = LogBlockMeta.from_bytes(pack.read_member(META_MEMBER))
            self.cache.objects.put(meta_key, meta, approx_bytes=4096 + 64 * meta.n_blocks)
        reader.attach_meta(meta)
        # Bloom filters and index members decoded by any reader of this
        # blob are shared the same way (keys: (bucket, key, member)).
        reader.attach_shared_cache(self.cache.objects, self._bucket)
        return reader

    def _open_pack(self, path: str, entry: LogBlockEntry | None = None) -> PackReader:
        """A PackReader with its parsed header served from the object cache.

        The preamble + manifest of a packed LogBlock are immutable once
        written, so re-fetching and re-parsing them for every query of
        the same blob is pure waste; the decoded manifest (plus the
        retained head chunk that serves early members request-free) is
        cached alongside the decoded meta/bloom objects.

        A cold-tier entry's bytes live inside a tar-packed segment
        object; a :class:`SubrangeReader` window over the segment makes
        the member readable by the unmodified pack/LogBlock stack, with
        every ranged GET (and cached byte range) landing on the segment
        object so members of one segment share cache entries.
        """
        if entry is not None and entry.segment_path is not None:
            window = SubrangeReader(
                self._reader,
                self._bucket,
                entry.segment_path,
                entry.segment_offset,
                entry.segment_length,
            )
            pack = PackReader(window, self._bucket, path)
        else:
            pack = PackReader(self._reader, self._bucket, path)
        header_key = (self._bucket, path, "__pack_header__")
        cached = self.cache.objects.get(header_key)
        if cached is not None:
            pack.attach_manifest(*cached)
        else:
            manifest = pack.manifest()
            head = pack.head_bytes
            self.cache.objects.put(
                header_key,
                (manifest, pack.data_start, head),
                approx_bytes=len(head) + 64 * len(manifest.names()),
            )
        return pack

    def _open_block(self, entry: LogBlockEntry) -> LogBlockReader:
        return self._open_block_from_pack(self._open_pack(entry.path, entry))

    def _prefetch_batch(self, pack: PackReader, members: list[str], stats) -> None:
        # Members inside the retained head chunk need no request at all.
        members = [m for m in members if not pack.covered_by_head(m)]
        if not members:
            return
        manifest = pack.manifest()
        plan = self._planner.plan(
            self._bucket, pack.key, manifest, pack.data_start, members
        )
        extents = [pack.member_extent(m) for m in members]
        prefetcher = ParallelPrefetcher(pack.store, self.options.prefetch_threads)
        prefetcher.execute(plan, extents)
        stats.prefetch_requests += prefetcher.stats.requests_issued
        stats.prefetch_bytes += prefetcher.stats.bytes_loaded

    def _prefetch_meta_and_indexes(
        self,
        pack: PackReader,
        schema,
        expr: Expr | None,
        meta_cached: bool,
        stats: ExecutionStats,
    ) -> LogBlockReader:
        """Two-stage parallel load of everything evaluation will touch.

        Stage 1 (one overlapped batch): the meta member plus the Bloom
        filters of equality-probed string columns.  Stage 2: the index
        members — but only for columns the Bloom filters could not rule
        out, so a needle query probing an absent value never pays for
        the (much larger) inverted index.  This is §5.2's loading
        workflow (Figures 9/10) with Bloom short-circuiting.
        """
        manifest = pack.manifest()
        stage1: list[str] = []
        if not meta_cached:
            stage1.append(META_MEMBER)
        eq_leaves = _equality_string_leaves(expr) if expr is not None else {}
        for column in sorted(eq_leaves):
            member = bloom_member(column)
            # A cached decoded Bloom needs no byte prefetch at all.
            if member in manifest and not self.cache.objects.contains(
                (self._bucket, pack.key, member)
            ):
                stage1.append(member)
        self._prefetch_batch(pack, stage1, stats)

        reader = self._open_block_from_pack(pack)
        if expr is None or not self.options.use_indexes:
            return reader

        stage2: list[str] = []
        for column in sorted(expr.columns()):
            spec = schema.column(column)
            member = index_member(column)
            if spec.index is IndexType.NONE or member not in manifest:
                continue
            if self.cache.objects.contains((self._bucket, pack.key, member)):
                continue  # decoded index already shared; skip the bytes
            leaves = eq_leaves.get(column)
            if leaves is not None and leaves and reader.has_bloom(column):
                bloom = reader.read_bloom(column)
                if bloom is not None and not any(
                    _leaf_may_match_bloom(leaf, bloom) for leaf in leaves
                ):
                    # Every probe of this column is provably absent and
                    # the column has no other predicate shapes: the
                    # index cannot contribute — skip fetching it.
                    only_eq_leaves = all(
                        isinstance(leaf, (Comparison, In))
                        for leaf in _all_leaves_for_column(expr, column)
                    )
                    if only_eq_leaves:
                        continue
            stage2.append(member)
        self._prefetch_batch(pack, stage2, stats)
        return reader

    def _prefetch_output_blocks(
        self,
        reader: LogBlockReader,
        matched: Bitset,
        columns: list[str],
        stats: ExecutionStats,
    ) -> None:
        """Batch-load exactly the column blocks holding matched rows.

        The needed block set comes from one vectorized pass over the
        bitset's indices against the block row boundaries — O(blocks)
        distinct results, never a per-matched-row ``block_of_row`` walk.
        """
        meta = reader.meta()
        needed_blocks = np.unique(reader.blocks_of_rows(matched.indices())).tolist()
        members = [
            block_member(meta.schema.column_index(column), block_idx)
            for column in columns
            for block_idx in needed_blocks
        ]
        if not members:
            return
        manifest = reader.pack.manifest()
        plan = self._planner.plan(
            self._bucket, reader.pack.key, manifest, reader.pack.data_start, members
        )
        extents = [reader.pack.member_extent(m) for m in members]
        prefetcher = ParallelPrefetcher(reader.pack.store, self.options.prefetch_threads)
        prefetcher.execute(plan, extents)
        stats.prefetch_requests += prefetcher.stats.requests_issued
        stats.prefetch_bytes += prefetcher.stats.bytes_loaded

    def _evaluate_expr(
        self, reader: LogBlockReader, expr: Expr, stats: ExecutionStats
    ) -> Bitset:
        """Recursive bitset evaluation of the predicate tree on one block."""
        row_count = reader.row_count
        if isinstance(expr, And):
            result = Bitset.full(row_count)
            for child in expr.children:
                if not result.any():
                    break
                result = result & self._evaluate_expr(reader, child, stats)
            return result
        if isinstance(expr, Or):
            result = Bitset(row_count)
            for child in expr.children:
                result = result | self._evaluate_expr(reader, child, stats)
            return result
        if isinstance(expr, Not):
            return ~self._evaluate_expr(reader, expr.child, stats)
        # A column added by DDL after this block was written: every leaf
        # evaluates to null ⇒ False for all of the block's rows — except
        # IS NULL, whose whole job is to match those nulls.
        leaf_columns = expr.columns()
        block_columns = set(reader.meta().schema.column_names())
        if not leaf_columns <= block_columns:
            if isinstance(expr, IsNull):
                return Bitset.full(row_count)
            return Bitset(row_count)
        predicate = expr.to_column_predicate()  # type: ignore[union-attr]
        return evaluate_predicates(
            reader,
            [predicate],
            use_skipping=self.options.use_skipping,
            use_indexes=self.options.use_indexes,
            vectorized=self.options.use_vectorized_scan,
            stats=stats.prune,
        )

    # -- entry points ------------------------------------------------------

    def _match_block(
        self,
        entry: LogBlockEntry,
        plan: QueryPlan,
        stats: ExecutionStats,
    ) -> tuple[LogBlockReader, Bitset]:
        """Open one LogBlock and evaluate the predicate to a bitset."""
        if self.options.use_prefetch:
            pack = self._open_pack(entry.path, entry)
            meta_cached = (
                self.cache.objects.get((self._bucket, entry.path, META_MEMBER)) is not None
            )
            reader = self._prefetch_meta_and_indexes(
                pack, plan.schema, plan.where, meta_cached, stats
            )
        else:
            reader = self._open_block(entry)
        stats.blocks_visited += 1
        if entry.tier == TIER_COLD:
            stats.cold_blocks_visited += 1
        self._charge(self.options.cpu_per_block_s)
        scanned_before = stats.prune.blocks_scanned
        lookups_before = stats.prune.index_lookups
        if plan.where is not None:
            matched = self._evaluate_expr(reader, plan.where, stats)
        else:
            matched = Bitset.full(reader.row_count)
        # CPU cost of evaluation: scanned blocks pay per-row evaluation,
        # index probes pay a constant (the decode itself was charged at
        # the reader through decode_charge).
        scanned = stats.prune.blocks_scanned - scanned_before
        lookups = stats.prune.index_lookups - lookups_before
        if scanned:
            rows_scanned = scanned * reader.meta().block_rows
            self._charge(rows_scanned / self.options.cpu_scan_rows_per_s)
        if lookups:
            self._charge(lookups * self.options.cpu_index_lookup_s)
        return reader, matched

    def _materialize_rows(
        self,
        reader: LogBlockReader,
        matched: Bitset,
        columns: list[str],
        stats: ExecutionStats,
    ) -> list[dict]:
        """Row-dict materialization of the matched rows (the slow path).

        Columnar construction: each present column is read once as a
        flat value vector and the row dicts are zipped together in one
        pass — DDL-added columns (absent from this block) are padded
        with one shared null tail instead of the old
        O(rows × missing-columns) per-row dict-write loop.
        """
        block_columns = set(reader.meta().schema.column_names())
        # Columns added by DDL after this block was written read as null.
        present = [c for c in columns if c in block_columns]
        missing = [c for c in columns if c not in block_columns]
        if self.options.use_prefetch and present:
            self._prefetch_output_blocks(reader, matched, present, stats)
        count = matched.count()
        self._charge(
            count * max(1, len(present)) / self.options.cpu_materialize_values_per_s
        )
        if not present:
            return [dict.fromkeys(missing) for _ in range(count)]
        vectors = [reader.read_column_values(c, matched) for c in present]
        names = present + missing
        pad = (None,) * len(missing)
        return [dict(zip(names, values + pad)) for values in zip(*vectors)]

    def execute_block(
        self,
        entry: LogBlockEntry,
        plan: QueryPlan,
        stats: ExecutionStats,
    ) -> list[dict]:
        """Matched, projected rows of one LogBlock."""
        reader, matched = self._match_block(entry, plan, stats)
        count = matched.count()
        if not count:
            return []
        stats.rows_matched += count
        columns = plan.output_columns or plan.schema.column_names()
        return self._materialize_rows(reader, matched, columns, stats)

    # -- aggregate pushdown (tiers 2/3 are per-block; tier 1 is per-entry) --

    def _sma_foldable(self, plan: QueryPlan, reader: LogBlockReader) -> bool:
        """Whether every aggregate folds from this block's meta alone.

        SUM/AVG require the per-column sum recorded by meta format v3;
        legacy (v2) blocks report ``sum_value=None`` for columns that
        actually hold values, which sends the block down to tier 3.
        """
        meta = reader.meta()
        block_columns = set(meta.schema.column_names())
        for item in plan.query.select:
            if item.column is None or item.column not in block_columns:
                continue  # COUNT(*) / DDL-added column (reads as null)
            if item.aggregate in ("sum", "avg"):
                sma = meta.column_smas[meta.schema.column_index(item.column)]
                if sma.sum_value is None and sma.row_count > sma.null_count:
                    return False
        return True

    def _aggregate_block(
        self,
        entry: LogBlockEntry,
        plan: QueryPlan,
        aggregator: Aggregator,
        stats: ExecutionStats,
    ) -> None:
        """Fold one LogBlock into the aggregator by the cheapest tier."""
        pushdown = plan.agg_pushdown
        level = self.options.agg_pushdown_level
        reader, matched = self._match_block(entry, plan, stats)
        count = matched.count()
        if not count:
            return
        stats.rows_matched += count
        meta = reader.meta()

        # Tier 2: every row matches — fold from the (already loaded)
        # meta's column SMAs; zero column blocks are read.
        if (
            level >= 2
            and pushdown is not None
            and pushdown.sma_eligible
            and count == meta.row_count
            and self._sma_foldable(plan, reader)
        ):
            block_columns = set(meta.schema.column_names())
            smas = {
                column: meta.column_smas[meta.schema.column_index(column)]
                for column in pushdown.input_columns
                if column in block_columns
            }
            aggregator.consume_sma(smas, meta.row_count)
            stats.pushdown.agg_sma_blocks += 1
            return

        # Tier 3: late materialization — read only the aggregated
        # columns as value vectors, never build row dicts.
        if level >= 3 and pushdown is not None:
            block_columns = set(meta.schema.column_names())
            present = [c for c in pushdown.input_columns if c in block_columns]
            if self.options.use_prefetch and present:
                self._prefetch_output_blocks(reader, matched, present, stats)
            vectors = {c: reader.read_column_values(c, matched) for c in present}
            group_by = plan.query.group_by
            group_keys = vectors.get(group_by) if group_by is not None else None
            aggregator.consume_columns(group_keys, vectors, count)
            self._charge(
                count * max(1, len(present)) / self.options.cpu_agg_values_per_s
            )
            stats.pushdown.agg_columnar_blocks += 1
            return

        # Fallback: the naive path — materialize dicts and fold per row.
        columns = plan.output_columns or plan.schema.column_names()
        rows = self._materialize_rows(reader, matched, columns, stats)
        aggregator.consume_many(rows)
        stats.pushdown.agg_row_blocks += 1

    def execute_aggregate(self, plan: QueryPlan) -> tuple[Aggregator, ExecutionStats]:
        """Run an aggregate plan; returns a mergeable partial aggregator.

        Tier 1 (catalog-only): when the plan is COUNT(*)/MIN(ts)/MAX(ts)
        over a tenant/ts-only predicate, every LogBlock whose catalog
        time range is fully covered is folded from its
        :class:`LogBlockEntry` — the pack is never opened, so such
        entries cost zero requests, zero bytes, and zero virtual time.
        Remaining blocks run tiers 2/3 under the same §5.2 parallel
        overlap model as row execution.
        """
        stats = ExecutionStats()
        aggregator = Aggregator(plan.query)
        pushdown = plan.agg_pushdown
        level = self.options.agg_pushdown_level
        catalog_tier = (
            level >= 1 and pushdown is not None and pushdown.catalog_eligible
        )
        remaining: list[LogBlockEntry] = []
        for entry in plan.blocks:
            if catalog_tier and entry.covered_by(
                pushdown.ts_low,
                pushdown.ts_high,
                pushdown.ts_low_inclusive,
                pushdown.ts_high_inclusive,
            ):
                aggregator.consume_sma(
                    {
                        pushdown.ts_column: Sma(
                            entry.min_ts, entry.max_ts, entry.row_count, 0
                        )
                    },
                    entry.row_count,
                )
                stats.rows_matched += entry.row_count
                stats.pushdown.agg_catalog_hits += 1
            else:
                remaining.append(entry)

        clock = getattr(self._reader.store, "clock", None)
        overlap = (
            self.options.use_prefetch
            and len(remaining) > 1
            and clock is not None
            and hasattr(clock, "deferred")
        )
        if not overlap:
            for entry in remaining:
                self._aggregate_block(entry, plan, aggregator, stats)
            return aggregator, stats
        durations: list[float] = []
        for entry in remaining:
            with clock.deferred() as charges:
                self._aggregate_block(entry, plan, aggregator, stats)
            durations.append(charges.total)
        clock.sleep(self._wave_elapsed(durations))
        return aggregator, stats

    def _wave_elapsed(self, durations: list[float]) -> float:
        """Total time of `prefetch_threads`-wide waves, slowest per wave."""
        return wave_elapsed(durations, max(1, self.options.prefetch_threads))

    # -- latest-version dedup (the LatestVersionDedup plan operator) -------

    def _dedup_block(
        self,
        entry: LogBlockEntry,
        plan: QueryPlan,
        dedup: LatestVersionDedup,
        stats: ExecutionStats,
    ) -> None:
        """Offer one LogBlock's matched (key, version) pairs.

        Reads only the two tournament columns as late-materialized
        vectors — the wide payload columns are fetched later, and only
        for winners.  Payloads are ``(reader, row_id)`` handles.
        """
        spec = plan.dedup
        assert spec is not None
        reader, matched = self._match_block(entry, plan, stats)
        count = matched.count()
        if not count:
            return
        stats.rows_matched += count
        block_columns = set(reader.meta().schema.column_names())
        present = [
            c for c in (spec.key_column, spec.version_column) if c in block_columns
        ]
        if self.options.use_prefetch and present:
            self._prefetch_output_blocks(reader, matched, present, stats)
        vectors = {c: reader.read_column_values(c, matched) for c in present}
        self._charge(count * max(1, len(present)) / self.options.cpu_agg_values_per_s)
        keys = vectors.get(spec.key_column, [None] * count)
        versions = vectors.get(spec.version_column, [None] * count)
        row_ids = matched.indices().tolist()
        for key, version, row_id in zip(keys, versions, row_ids):
            dedup.offer(key, version, (reader, row_id))
        stats.dedup_candidates += count

    def execute_dedup(self, plan: QueryPlan) -> tuple[LatestVersionDedup, ExecutionStats]:
        """Run the tournament over all archived LogBlocks of the plan.

        Blocks are visited in plan order (catalog sort order), so offer
        sequence equals stream order — the tie-break the naive window
        materialization also uses.  The caller then offers real-time
        rows and finishes with :meth:`materialize_dedup`.
        """
        stats = ExecutionStats()
        dedup = LatestVersionDedup()
        clock = getattr(self._reader.store, "clock", None)
        overlap = (
            self.options.use_prefetch
            and len(plan.blocks) > 1
            and clock is not None
            and hasattr(clock, "deferred")
        )
        if not overlap:
            for entry in plan.blocks:
                self._dedup_block(entry, plan, dedup, stats)
            return dedup, stats
        durations: list[float] = []
        for entry in plan.blocks:
            with clock.deferred() as charges:
                self._dedup_block(entry, plan, dedup, stats)
            durations.append(charges.total)
        clock.sleep(self._wave_elapsed(durations))
        return dedup, stats

    def materialize_dedup(
        self,
        plan: QueryPlan,
        dedup: LatestVersionDedup,
        stats: ExecutionStats,
    ) -> list[dict]:
        """Fetch the winners' full rows, preserving winner order.

        Archived payloads are ``(reader, row_id)`` handles grouped per
        reader into one bitset materialization each; real-time payloads
        are already row dicts (projected by the caller) and pass
        through.  Only here do the wide output columns get read — the
        losing versions never touch them.
        """
        winners = dedup.winners()
        stats.dedup_winners += len(winners)
        columns = plan.output_columns or plan.schema.column_names()
        by_reader: dict[int, tuple[LogBlockReader, list[tuple[int, int]]]] = {}
        output: list[dict | None] = [None] * len(winners)
        for position, entry in enumerate(winners):
            payload = entry.payload
            if isinstance(payload, dict):
                output[position] = {c: payload.get(c) for c in columns}
                continue
            reader, row_id = payload
            group = by_reader.setdefault(id(reader), (reader, []))
            group[1].append((position, row_id))

        clock = getattr(self._reader.store, "clock", None)
        overlap = (
            self.options.use_prefetch
            and len(by_reader) > 1
            and clock is not None
            and hasattr(clock, "deferred")
        )
        durations: list[float] = []
        for reader, pairs in by_reader.values():
            def fetch(reader=reader, pairs=pairs) -> None:
                row_ids = sorted({row_id for _, row_id in pairs})
                matched = Bitset.from_indices(reader.row_count, row_ids)
                rows = self._materialize_rows(reader, matched, list(columns), stats)
                row_for_id = dict(zip(row_ids, rows))
                for position, row_id in pairs:
                    output[position] = row_for_id[row_id]
            if overlap:
                with clock.deferred() as charges:
                    fetch()
                durations.append(charges.total)
            else:
                fetch()
        if overlap:
            clock.sleep(self._wave_elapsed(durations))
        return [row for row in output if row is not None]

    def execute(self, plan: QueryPlan) -> tuple[list[dict], ExecutionStats]:
        """Run the plan over all its LogBlocks; returns (rows, stats).

        With prefetch enabled, LogBlocks are processed by the §5.2
        parallel loading pool (Figure 10): each block's I/O + decode
        time is collected separately and the blocks overlap up to
        ``prefetch_threads`` wide, so the query pays the slowest wave
        rather than the sum.  Without prefetch (or on a wall clock),
        blocks serialize.
        """
        stats = ExecutionStats()
        rows: list[dict] = []
        clock = getattr(self._reader.store, "clock", None)
        overlap = (
            self.options.use_prefetch
            and len(plan.blocks) > 1
            and clock is not None
            and hasattr(clock, "deferred")
        )
        limit = plan.row_limit
        if not overlap:
            for entry in plan.blocks:
                rows.extend(self.execute_block(entry, plan, stats))
                if limit is not None and len(rows) >= limit:
                    break  # LIMIT pushdown: enough rows, skip later blocks
            return rows, stats

        durations: list[float] = []
        for entry in plan.blocks:
            with clock.deferred() as charges:
                rows.extend(self.execute_block(entry, plan, stats))
            durations.append(charges.total)
            if limit is not None and len(rows) >= limit:
                break
        # Waves of `prefetch_threads` concurrent blocks; each wave costs
        # its slowest member.
        clock.sleep(self._wave_elapsed(durations))
        return rows, stats


def filter_realtime_rows(
    plan: QueryPlan,
    rows,
    limit: int | None = None,
    options: ExecutionOptions | None = None,
    stats: ExecutionStats | None = None,
) -> list[dict]:
    """Apply the plan's predicate + projection to row-store rows.

    ``limit`` stops the scan after that many matches — safe only when
    the plan has no ORDER BY or aggregation (i.e. ``plan.row_limit``
    semantics: any N matching rows satisfy the query).

    With ``options.use_vectorized_scan`` the predicate is compiled to a
    columnar kernel and evaluated over per-column array views of the
    whole batch; rows are projected only for survivors.  Shapes the
    compiler cannot vectorize (MATCH/LIKE, mixed-type columns) fall
    back to the interpreted per-row path with identical results.
    """
    columns = plan.output_columns or plan.schema.column_names()
    use_vectorized = (
        options is not None and options.use_vectorized_scan and plan.where is not None
    )
    if use_vectorized:
        row_list = rows if isinstance(rows, list) else list(rows)
        rows = row_list  # the fallback path re-reads the materialized list
        try:
            kernel = compile_expr(plan.where)
            mask = kernel.evaluate(RowListBatch(row_list, plan.schema))
        except VectorizeFallback as fallback:
            if stats is not None:
                stats.realtime_fallbacks[fallback.reason] = (
                    stats.realtime_fallbacks.get(fallback.reason, 0) + 1
                )
        else:
            if stats is not None:
                stats.realtime_rows_vectorized += len(row_list)
            hits = np.flatnonzero(mask)
            if limit is not None:
                hits = hits[: max(limit, 0)]
            return [
                {column: row_list[i].get(column) for column in columns}
                for i in hits.tolist()
            ]
    matched: list[dict] = []
    evaluated = 0
    for row in rows:
        evaluated += 1
        if plan.where is None or plan.where.evaluate_row(row):
            matched.append({column: row.get(column) for column in columns})
            if limit is not None and len(matched) >= limit:
                break
    if stats is not None and plan.where is not None:
        stats.realtime_rows_interpreted += evaluated
    return matched
