"""Query planning: literal coercion, tenant/ts extraction, block pruning.

Produces a :class:`QueryPlan` that lists exactly which LogBlocks survive
the LogBlock-map filter (Figure 8 step 1) and carries the coerced
predicate tree for per-block evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.common.errors import AuthError, QueryError, SchemaError
from repro.logblock.schema import ColumnType, TableSchema
from repro.meta.catalog import TIER_COLD, Catalog, LogBlockEntry
from repro.query.ast import (
    And,
    Between,
    CmpOp,
    Comparison,
    Expr,
    In,
    IsNull,
    Like,
    Match,
    Not,
    NotNull,
    Or,
    conjuncts,
    extract_eq,
    extract_ts_range,
)
from repro.query.dedup import DedupSpec
from repro.query.kernels import VectorizedInfo, classify_expr
from repro.query.sql import ParsedQuery

MICROS = 1_000_000


def parse_timestamp(text: str) -> int:
    """'YYYY-MM-DD HH:MM:SS[.ffffff]' (UTC) → microseconds since epoch."""
    for fmt in ("%Y-%m-%d %H:%M:%S.%f", "%Y-%m-%d %H:%M:%S", "%Y-%m-%d"):
        try:
            moment = datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
            return int(moment.timestamp() * MICROS)
        except ValueError:
            continue
    raise QueryError(f"unparseable timestamp literal {text!r}")


def format_timestamp(micros: int) -> str:
    """Inverse of :func:`parse_timestamp` (second precision)."""
    moment = datetime.fromtimestamp(micros / MICROS, tz=timezone.utc)
    return moment.strftime("%Y-%m-%d %H:%M:%S")


def _coerce_literal(value, ctype: ColumnType):
    """Coerce a parsed literal to the column's storage type."""
    if value is None:
        return None
    if ctype is ColumnType.TIMESTAMP:
        if isinstance(value, str):
            return parse_timestamp(value)
        if isinstance(value, (int, float)):
            return int(value)
    if ctype is ColumnType.BOOL:
        # The paper's own sample query writes ``fail = 'false'``.
        if isinstance(value, str):
            lowered = value.lower()
            if lowered in ("true", "false"):
                return lowered == "true"
            raise QueryError(f"cannot coerce {value!r} to BOOL")
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
    if ctype is ColumnType.INT64:
        if isinstance(value, bool):
            raise QueryError("boolean literal for INT64 column")
        if isinstance(value, (int, float)):
            return int(value)
    if ctype is ColumnType.FLOAT64:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    if ctype is ColumnType.STRING and isinstance(value, str):
        return value
    raise QueryError(f"cannot coerce literal {value!r} to {ctype.name}")


def coerce_expr(expr: Expr, schema: TableSchema) -> Expr:
    """Rewrite literals in the tree to match schema column types."""
    if isinstance(expr, Comparison):
        ctype = schema.column(expr.column).ctype
        return Comparison(expr.column, expr.op, _coerce_literal(expr.value, ctype))
    if isinstance(expr, Between):
        ctype = schema.column(expr.column).ctype
        return Between(
            expr.column,
            _coerce_literal(expr.low, ctype),
            _coerce_literal(expr.high, ctype),
        )
    if isinstance(expr, In):
        ctype = schema.column(expr.column).ctype
        return In(expr.column, tuple(_coerce_literal(v, ctype) for v in expr.values))
    if isinstance(expr, Match):
        spec = schema.column(expr.column)
        if spec.ctype is not ColumnType.STRING:
            raise QueryError(f"MATCH on non-string column {expr.column!r}")
        return expr
    if isinstance(expr, Like):
        spec = schema.column(expr.column)
        if spec.ctype is not ColumnType.STRING:
            raise QueryError(f"LIKE on non-string column {expr.column!r}")
        return expr
    if isinstance(expr, (IsNull, NotNull)):
        schema.column(expr.column)  # existence check only; no literal
        return expr
    if isinstance(expr, And):
        return And(tuple(coerce_expr(child, schema) for child in expr.children))
    if isinstance(expr, Or):
        return Or(tuple(coerce_expr(child, schema) for child in expr.children))
    if isinstance(expr, Not):
        return Not(coerce_expr(expr.child, schema))
    raise QueryError(f"unknown expression node {type(expr).__name__}")


@dataclass(frozen=True)
class AggPushdown:
    """Planner decision on the aggregate fast path (tiers 1–3).

    * tier 1 (``catalog_eligible``): the query is COUNT(*) (optionally
      with MIN/MAX of the timestamp column), ungrouped, and its
      predicate constrains only ``tenant_id`` (equality) and the
      timestamp — any LogBlock whose catalog time range is fully inside
      the bound is answered from its :class:`LogBlockEntry` alone;
    * tier 2 (``sma_eligible``): every aggregate is a non-DISTINCT
      COUNT/SUM/AVG/MIN/MAX, ungrouped — blocks whose predicate bitset
      matches every row fold from the meta's column SMAs;
    * tier 3: always available for aggregates — partially matched
      blocks aggregate from late-materialized column vectors
      (``input_columns``) instead of row dicts.
    """

    catalog_eligible: bool
    sma_eligible: bool
    ts_column: str = "ts"
    ts_low: int | None = None
    ts_low_inclusive: bool = True
    ts_high: int | None = None
    ts_high_inclusive: bool = True
    input_columns: tuple[str, ...] = ()

    def mode(self) -> str:
        if self.catalog_eligible:
            return "catalog-only"
        if self.sma_eligible:
            return "sma+columnar"
        return "columnar"


def _tier1_time_bound(
    where: Expr | None, tenant_column: str, ts_column: str
) -> tuple[bool, int | None, bool, int | None, bool]:
    """Whether the predicate is tier-1 shaped, and its exact ts interval.

    Tier-1 shape: a conjunction whose every leaf is ``tenant_id = k``
    (one value) or a range/equality bound on the timestamp column.
    Unlike :func:`extract_ts_range` this keeps strict-vs-inclusive
    bounds exact, because catalog-only answers must not over-count rows
    sitting exactly on an open endpoint.
    """
    if where is None:
        return True, None, True, None, True
    low: int | None = None
    high: int | None = None
    low_inclusive = True
    high_inclusive = True
    tenant_values: list = []

    def tighten_low(value, inclusive: bool) -> None:
        nonlocal low, low_inclusive
        if low is None or value > low:
            low, low_inclusive = value, inclusive
        elif value == low:
            low_inclusive = low_inclusive and inclusive

    def tighten_high(value, inclusive: bool) -> None:
        nonlocal high, high_inclusive
        if high is None or value < high:
            high, high_inclusive = value, inclusive
        elif value == high:
            high_inclusive = high_inclusive and inclusive

    for node in conjuncts(where):
        if isinstance(node, Comparison) and node.column == tenant_column and node.op is CmpOp.EQ:
            tenant_values.append(node.value)
            continue
        if isinstance(node, In) and node.column == tenant_column and len(node.values) == 1:
            tenant_values.append(node.values[0])
            continue
        if isinstance(node, Between) and node.column == ts_column:
            tighten_low(node.low, True)
            tighten_high(node.high, True)
            continue
        if isinstance(node, Comparison) and node.column == ts_column:
            if node.op is CmpOp.GE:
                tighten_low(node.value, True)
            elif node.op is CmpOp.GT:
                tighten_low(node.value, False)
            elif node.op is CmpOp.LE:
                tighten_high(node.value, True)
            elif node.op is CmpOp.LT:
                tighten_high(node.value, False)
            elif node.op is CmpOp.EQ:
                tighten_low(node.value, True)
                tighten_high(node.value, True)
            else:  # != cannot be answered from a coverage check
                return False, None, True, None, True
            continue
        return False, None, True, None, True
    if len(set(tenant_values)) > 1:
        # Contradictory tenant equalities: let the normal path prove 0.
        return False, None, True, None, True
    return True, low, low_inclusive, high, high_inclusive


_TIER1_TIME_AGGS = ("min", "max")
_SMA_FOLDABLE_AGGS = ("count", "sum", "avg", "min", "max")


def _plan_agg_pushdown(
    query: ParsedQuery, where: Expr | None, tenant_column: str, ts_column: str
) -> AggPushdown:
    """Classify an aggregate query for the executor's tiered fast path.

    ``where`` is the *coerced* predicate tree — timestamp literals must
    already be microseconds so the coverage bound compares against
    catalog entries directly.
    """
    ungrouped = query.group_by is None
    sma_eligible = ungrouped and all(
        item.is_aggregate
        and not item.distinct
        and item.aggregate in _SMA_FOLDABLE_AGGS
        for item in query.select
    )
    catalog_items = ungrouped and all(
        item.is_aggregate
        and not item.distinct
        and (
            (item.aggregate == "count" and item.column is None)
            or (item.aggregate in _TIER1_TIME_AGGS and item.column == ts_column)
        )
        for item in query.select
    )
    tier1_shape, low, low_inc, high, high_inc = _tier1_time_bound(
        where, tenant_column, ts_column
    )
    return AggPushdown(
        catalog_eligible=catalog_items and tier1_shape,
        sma_eligible=sma_eligible,
        ts_column=ts_column,
        ts_low=low,
        ts_low_inclusive=low_inc,
        ts_high=high,
        ts_high_inclusive=high_inc,
        input_columns=tuple(query.aggregate_input_columns()),
    )


@dataclass
class QueryPlan:
    """Everything the executor needs to run one query."""

    query: ParsedQuery
    schema: TableSchema
    where: Expr | None
    tenant_id: int | None
    min_ts: int | None
    max_ts: int | None
    blocks: list[LogBlockEntry] = field(default_factory=list)
    blocks_pruned_by_map: int = 0
    output_columns: list[str] = field(default_factory=list)
    # LIMIT pushdown: when the query has a LIMIT but no ORDER BY and no
    # aggregation, any `row_limit` matching rows satisfy it — the
    # executor stops visiting LogBlocks once it has enough.
    row_limit: int | None = None
    # Aggregate pushdown decision; set iff the query aggregates.
    agg_pushdown: AggPushdown | None = None
    # Latest-version dedup (set by the semantic rewriter via the query).
    dedup: DedupSpec | None = None
    # Names of semantic-rewrite rules that produced this query shape.
    rewrites: list[str] = field(default_factory=list)
    # The session's tenant scope that authorized (and bounded) this plan.
    tenant_scope: int | None = None
    # Static vectorization verdict for the predicate tree (None when the
    # plan has no predicate): how much of it the scan kernels can
    # evaluate on column vectors, and why the rest falls back.
    vectorized: VectorizedInfo | None = None


def explain_plan(plan: QueryPlan) -> str:
    """Human-readable description of what a plan will do.

    Shows the LogBlock-map pruning outcome, the predicate tree, the
    projected columns and the pushdown hints — the EXPLAIN output a
    downstream user debugs selectivity with.
    """
    lines = [f"query: {plan.query.raw_sql or '<built>'}"]
    scope = f"tenant {plan.tenant_id}" if plan.tenant_id is not None else "ALL tenants"
    lines.append(f"scope: {scope}")
    if plan.tenant_scope is not None:
        lines.append(f"session scope: tenant {plan.tenant_scope}")
    if plan.rewrites:
        lines.append(f"semantic rewrites: {', '.join(plan.rewrites)}")
    if plan.dedup is not None:
        lines.append(f"latest-version dedup: {plan.dedup.describe()}")
    if plan.min_ts is not None or plan.max_ts is not None:
        lines.append(
            "time range: "
            f"[{format_timestamp(plan.min_ts) if plan.min_ts is not None else '-inf'}, "
            f"{format_timestamp(plan.max_ts) if plan.max_ts is not None else '+inf'}]"
        )
    total = len(plan.blocks) + plan.blocks_pruned_by_map
    lines.append(
        f"LogBlock map: {len(plan.blocks)} of {total} blocks survive "
        f"({plan.blocks_pruned_by_map} pruned)"
    )
    n_cold = sum(1 for entry in plan.blocks if entry.tier == TIER_COLD)
    if n_cold:
        lines.append(
            f"storage tiers: {len(plan.blocks) - n_cold} hot, "
            f"{n_cold} cold (tar-packed segment members)"
        )
    for entry in plan.blocks[:8]:
        tier = "  tier=cold" if entry.tier == TIER_COLD else ""
        lines.append(
            f"  {entry.path}  rows={entry.row_count} "
            f"[{format_timestamp(entry.min_ts)} .. {format_timestamp(entry.max_ts)}]"
            f"{tier}"
        )
    if len(plan.blocks) > 8:
        lines.append(f"  ... {len(plan.blocks) - 8} more")
    lines.append(f"predicates: {plan.where!r}" if plan.where is not None else "predicates: none")
    if plan.vectorized is not None:
        lines.append(f"vectorized: {plan.vectorized.describe()}")
    lines.append(f"output columns: {plan.output_columns or ['<all>']}")
    if plan.row_limit is not None:
        lines.append(f"LIMIT pushdown: stop after {plan.row_limit} rows")
    if plan.query.is_aggregate:
        lines.append(
            "aggregation: "
            + ", ".join(item.label() for item in plan.query.select if item.is_aggregate)
            + (f" GROUP BY {plan.query.group_by}" if plan.query.group_by else "")
        )
        if plan.agg_pushdown is not None:
            lines.append(f"agg pushdown: {plan.agg_pushdown.mode()}")
    return "\n".join(lines)


class QueryPlanner:
    """Builds plans against the controller catalog."""

    def __init__(self, catalog: Catalog, tenant_column: str = "tenant_id", ts_column: str = "ts"):
        self._catalog = catalog
        self._tenant_column = tenant_column
        self._ts_column = ts_column

    def plan(
        self,
        query: ParsedQuery,
        tenant_scope: int | None = None,
        rewrites: list[str] | None = None,
    ) -> QueryPlan:
        schema = self._catalog.schema
        if query.subquery is not None:
            raise QueryError(
                "subqueries must be rewritten or materialized before planning "
                "(the broker handles the window-subquery form)"
            )
        if query.table != schema.name:
            if query.table.startswith("_system."):
                raise QueryError(
                    f"system table {query.table!r} is served by the broker, "
                    "not the planner"
                )
            raise QueryError(f"unknown table {query.table!r} (expected {schema.name!r})")
        try:
            for item in query.select:
                if item.column is not None:
                    schema.column(item.column)
            if query.group_by is not None:
                schema.column(query.group_by)
        except SchemaError as exc:
            raise QueryError(str(exc)) from exc
        for item in query.select:
            # SUM/AVG over non-numeric columns silently totalled 0.0 in
            # the row-fold path; reject at plan time instead.
            if item.aggregate in ("sum", "avg") and item.column is not None:
                ctype = schema.column(item.column).ctype
                if ctype in (ColumnType.STRING, ColumnType.BOOL):
                    raise QueryError(
                        f"{item.aggregate.upper()}({item.column}) is not defined "
                        f"for {ctype.name} columns"
                    )

        where = coerce_expr(query.where, schema) if query.where is not None else None

        tenant_id = None
        min_ts = None
        max_ts = None
        if where is not None:
            tenant_value = extract_eq(where, self._tenant_column)
            if tenant_value is not None:
                if not isinstance(tenant_value, int):
                    raise QueryError(f"tenant id must be an integer, got {tenant_value!r}")
                tenant_id = tenant_value
            min_ts, max_ts = extract_ts_range(where, self._ts_column)

        if tenant_scope is not None:
            # Session authorization: a scoped session may only read its
            # own tenant.  An explicit matching filter is fine; a
            # conflicting one is a typed rejection, not an empty result;
            # an absent one gets the scope injected (AND-conjoining a
            # tenant equality can only narrow the match set).
            if tenant_id is None:
                scope_filter = Comparison(self._tenant_column, CmpOp.EQ, tenant_scope)
                where = scope_filter if where is None else And((scope_filter, where))
                tenant_id = tenant_scope
            elif tenant_id != tenant_scope:
                raise AuthError(
                    f"session is scoped to tenant {tenant_scope} but the "
                    f"statement addresses tenant {tenant_id}"
                )

        # Figure 8 step 1: LogBlock-map filter by <tenant_id, min_ts, max_ts>.
        if tenant_id is not None:
            candidates = self._catalog.blocks_for(tenant_id)
            surviving = [b for b in candidates if b.overlaps(min_ts, max_ts)]
            pruned = len(candidates) - len(surviving)
        else:
            # Cross-tenant queries are allowed but expensive by design.
            candidates = self._catalog.all_blocks()
            surviving = [b for b in candidates if b.overlaps(min_ts, max_ts)]
            pruned = len(candidates) - len(surviving)

        dedup = query.dedup
        if dedup is not None:
            if not isinstance(dedup, DedupSpec):
                raise QueryError(f"unexpected dedup spec {dedup!r}")
            try:
                schema.column(dedup.key_column)
                schema.column(dedup.version_column)
            except SchemaError as exc:
                raise QueryError(str(exc)) from exc
            if dedup.post_filter is not None:
                dedup = DedupSpec(
                    key_column=dedup.key_column,
                    version_column=dedup.version_column,
                    post_filter=coerce_expr(dedup.post_filter, schema),
                )

        if query.select_star:
            output_columns = schema.column_names()
        else:
            output_columns = list(dict.fromkeys(query.projected_columns()))
            if query.group_by is not None and query.group_by not in output_columns:
                output_columns.append(query.group_by)
            for item in query.select:
                if item.is_aggregate and item.column is not None:
                    if item.column not in output_columns:
                        output_columns.append(item.column)
            if dedup is not None:
                # Winner materialization must also feed the post-filter
                # and the outer ORDER BY, not just the projection.
                extra = [dedup.key_column, dedup.version_column]
                if dedup.post_filter is not None:
                    extra.extend(sorted(dedup.post_filter.columns()))
                if query.order_by is not None:
                    extra.append(query.order_by)
                for column in extra:
                    if column not in output_columns:
                        output_columns.append(column)
            if not output_columns:  # e.g. bare SELECT COUNT(*)
                output_columns = []

        row_limit = None
        if (
            query.limit is not None
            and query.order_by is None
            and not query.is_aggregate
            and dedup is None
        ):
            row_limit = query.limit

        agg_pushdown = None
        if query.is_aggregate and dedup is None:
            agg_pushdown = _plan_agg_pushdown(
                query, where, self._tenant_column, self._ts_column
            )

        return QueryPlan(
            query=query,
            schema=schema,
            where=where,
            tenant_id=tenant_id,
            min_ts=min_ts,
            max_ts=max_ts,
            blocks=sorted(surviving, key=LogBlockEntry.sort_key),
            blocks_pruned_by_map=pruned,
            output_columns=output_columns,
            row_limit=row_limit,
            agg_pushdown=agg_pushdown,
            dedup=dedup,
            rewrites=list(rewrites) if rewrites else [],
            tenant_scope=tenant_scope,
            vectorized=classify_expr(where, schema) if where is not None else None,
        )
