"""Query layer: SQL parsing, planning, skipping-aware execution (§5)."""

from repro.query.aggregate import Aggregator, apply_order_limit
from repro.query.ast import (
    And,
    Between,
    CmpOp,
    Comparison,
    Expr,
    In,
    Match,
    Not,
    Or,
)
from repro.query.distinct import ExactDistinct, HyperLogLog
from repro.query.executor import (
    BlockExecutor,
    ExecutionOptions,
    ExecutionStats,
    filter_realtime_rows,
)
from repro.query.planner import QueryPlan, QueryPlanner, format_timestamp, parse_timestamp
from repro.query.sql import ParsedQuery, SelectItem, parse_sql

__all__ = [
    "Aggregator",
    "apply_order_limit",
    "And",
    "Between",
    "CmpOp",
    "Comparison",
    "Expr",
    "In",
    "Match",
    "Not",
    "Or",
    "ExactDistinct",
    "HyperLogLog",
    "BlockExecutor",
    "ExecutionOptions",
    "ExecutionStats",
    "filter_realtime_rows",
    "QueryPlan",
    "QueryPlanner",
    "format_timestamp",
    "parse_timestamp",
    "ParsedQuery",
    "SelectItem",
    "parse_sql",
]
