"""Predicate/expression AST for log-retrieval queries.

Leaves are single-column comparisons (the only shape the paper's query
templates use); boolean AND/OR/NOT combine them.  Every node supports:

* ``evaluate_row(row)`` — direct evaluation against a dict row (used on
  the real-time row store, which has no indexes by design);
* compilation of leaves to :mod:`repro.logblock.pruning` column
  predicates (used on LogBlocks, where SMA/index evaluation applies).

Null semantics are *boolean*, not SQL three-valued: every leaf evaluates
to False on a null value, and NOT flips its child's boolean result (so
``NOT (ip = 'x')`` matches rows with null ``ip``, while ``ip != 'x'``
does not).  This keeps row-store evaluation and LogBlock bitset algebra
exactly consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import QueryError
from repro.logblock.pruning import (
    ColumnPredicate,
    EqPredicate,
    InPredicate,
    MatchPredicate,
    NePredicate,
    NotNullPredicate,
    NullPredicate,
    RangePredicate,
)
from repro.logblock.tokenizer import tokenize


class CmpOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class Expr:
    """Base class for expression nodes."""

    def evaluate_row(self, row: dict) -> bool:
        raise NotImplementedError

    def columns(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Expr):
    """``column <op> literal``."""

    column: str
    op: CmpOp
    value: object

    def evaluate_row(self, row: dict) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        if self.op is CmpOp.EQ:
            return actual == self.value
        if self.op is CmpOp.NE:
            return actual != self.value
        if self.op is CmpOp.LT:
            return actual < self.value
        if self.op is CmpOp.LE:
            return actual <= self.value
        if self.op is CmpOp.GT:
            return actual > self.value
        if self.op is CmpOp.GE:
            return actual >= self.value
        raise AssertionError(f"unhandled op {self.op}")

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        if self.op is CmpOp.EQ:
            return EqPredicate(self.column, self.value)
        if self.op is CmpOp.NE:
            return NePredicate(self.column, self.value)
        if self.op is CmpOp.LT:
            return RangePredicate(self.column, high=self.value, high_inclusive=False)
        if self.op is CmpOp.LE:
            return RangePredicate(self.column, high=self.value)
        if self.op is CmpOp.GT:
            return RangePredicate(self.column, low=self.value, low_inclusive=False)
        if self.op is CmpOp.GE:
            return RangePredicate(self.column, low=self.value)
        raise AssertionError(f"unhandled op {self.op}")


@dataclass(frozen=True)
class Between(Expr):
    """``column BETWEEN low AND high`` (inclusive both ends, SQL semantics)."""

    column: str
    low: object
    high: object

    def evaluate_row(self, row: dict) -> bool:
        actual = row.get(self.column)
        return actual is not None and self.low <= actual <= self.high

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        return RangePredicate(self.column, low=self.low, high=self.high)


@dataclass(frozen=True)
class In(Expr):
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple

    def evaluate_row(self, row: dict) -> bool:
        actual = row.get(self.column)
        return actual is not None and actual in self.values

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        return InPredicate(self.column, tuple(self.values))


@dataclass(frozen=True)
class Like(Expr):
    """``column LIKE 'prefix%'`` — only prefix patterns are supported.

    Case-sensitive, like standard SQL LIKE (and like the raw-value
    inverted index that answers it).
    """

    column: str
    prefix: str

    def evaluate_row(self, row: dict) -> bool:
        actual = row.get(self.column)
        return actual is not None and str(actual).startswith(self.prefix)

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        from repro.logblock.pruning import PrefixPredicate

        return PrefixPredicate(self.column, self.prefix)


@dataclass(frozen=True)
class Match(Expr):
    """Full-text ``MATCH(column, 'query terms')`` — all terms must occur."""

    column: str
    query: str

    def evaluate_row(self, row: dict) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        terms = set(tokenize(actual))
        return all(term in terms for term in tokenize(self.query))

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        return MatchPredicate(self.column, self.query)


@dataclass(frozen=True)
class IsNull(Expr):
    """``column IS NULL`` — the deliberate exception to leaf null
    semantics: this is the one leaf that matches null values (that's
    its whole job).  ``NOT (col IS NULL)`` therefore matches exactly
    the non-null rows, same as :class:`NotNull`.
    """

    column: str

    def evaluate_row(self, row: dict) -> bool:
        return row.get(self.column) is None

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        return NullPredicate(self.column)


@dataclass(frozen=True)
class NotNull(Expr):
    """``column IS NOT NULL`` as a pushdown-friendly leaf.

    The parser emits ``Not(IsNull(col))``; the semantic rewriter folds
    that into this node so the LogBlock path can prune via SMA null
    counts instead of materializing a NOT over a bitset.
    """

    column: str

    def evaluate_row(self, row: dict) -> bool:
        return row.get(self.column) is not None

    def columns(self) -> set[str]:
        return {self.column}

    def to_column_predicate(self) -> ColumnPredicate:
        return NotNullPredicate(self.column)


@dataclass(frozen=True)
class And(Expr):
    children: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 1:
            raise QueryError("AND requires at least one child")

    def evaluate_row(self, row: dict) -> bool:
        return all(child.evaluate_row(row) for child in self.children)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out


@dataclass(frozen=True)
class Or(Expr):
    children: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 1:
            raise QueryError("OR requires at least one child")

    def evaluate_row(self, row: dict) -> bool:
        return any(child.evaluate_row(row) for child in self.children)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out


@dataclass(frozen=True)
class Not(Expr):
    child: Expr

    def evaluate_row(self, row: dict) -> bool:
        return not self.child.evaluate_row(row)

    def columns(self) -> set[str]:
        return self.child.columns()


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten nested ANDs into a conjunct list (top-level only)."""
    if isinstance(expr, And):
        out: list[Expr] = []
        for child in expr.children:
            out.extend(conjuncts(child))
        return out
    return [expr]


def extract_eq(expr: Expr, column: str) -> object | None:
    """Value of a top-level ``column = value`` conjunct, if present."""
    for node in conjuncts(expr):
        if isinstance(node, Comparison) and node.op is CmpOp.EQ and node.column == column:
            return node.value
        if isinstance(node, In) and node.column == column and len(node.values) == 1:
            return node.values[0]
    return None


def extract_ts_range(expr: Expr, column: str) -> tuple[object | None, object | None]:
    """(min, max) bound on ``column`` implied by top-level conjuncts.

    Used for the LogBlock-map filter (Figure 8 step 1).  Conservative:
    only inspects top-level AND children; OR branches contribute nothing.
    """
    low = None
    high = None
    for node in conjuncts(expr):
        if isinstance(node, Between) and node.column == column:
            low = node.low if low is None else max(low, node.low)
            high = node.high if high is None else min(high, node.high)
        elif isinstance(node, Comparison) and node.column == column:
            if node.op in (CmpOp.GE, CmpOp.GT):
                low = node.value if low is None else max(low, node.value)
            elif node.op in (CmpOp.LE, CmpOp.LT):
                high = node.value if high is None else min(high, node.value)
            elif node.op is CmpOp.EQ:
                low = node.value if low is None else max(low, node.value)
                high = node.value if high is None else min(high, node.value)
    return low, high
