"""Consistent hashing for the initial tenant → shard placement.

Algorithm 1 line 5: ``P_j ← ConsistentHash(K_i)`` — before any
balancing, each tenant is mapped to one shard by a hash ring with
virtual nodes, so adding/removing shards relocates only ~1/n of the
tenants.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.common.errors import FlowError


def _hash64(data: str) -> int:
    digest = hashlib.sha1(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A hash ring over shard ids with virtual nodes."""

    def __init__(self, shards: list[int], virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise FlowError(f"virtual_nodes must be positive, got {virtual_nodes}")
        self._virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, int]] = []  # (hash, shard)
        self._shards: set[int] = set()
        for shard in shards:
            self.add_shard(shard)

    def add_shard(self, shard: int) -> None:
        if shard in self._shards:
            raise FlowError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        for replica in range(self._virtual_nodes):
            self._ring.append((_hash64(f"shard:{shard}:{replica}"), shard))
        self._ring.sort()

    def remove_shard(self, shard: int) -> None:
        if shard not in self._shards:
            raise FlowError(f"shard {shard} not on the ring")
        self._shards.discard(shard)
        self._ring = [(h, s) for h, s in self._ring if s != shard]

    def shard_for(self, tenant_id: int) -> int:
        """The shard owning this tenant's position on the ring."""
        if not self._ring:
            raise FlowError("hash ring is empty")
        point = _hash64(f"tenant:{tenant_id}")
        idx = bisect_right(self._ring, (point, 1 << 62)) % len(self._ring)
        return self._ring[idx][1]

    def shards(self) -> list[int]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)
