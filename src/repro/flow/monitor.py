"""Traffic monitor (§4.1.3): collect metrics, detect hot spots.

"The monitor detects hotspots by collecting runtime traffic or load
metrics of tenants, shards, and workers" and "fill[s] in the input data
(nodes and edges in G(V,E)) required to run the flow network
algorithm."  Hotspot detection combines utilization with queueing
signals, since "skewed shards have higher CPU utilization, but the
reverse is not necessarily true".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flow.graph import ClusterTopology

DEFAULT_MONITOR_INTERVAL_S = 300.0  # §4.1.3: "every 300 seconds"
DEFAULT_HOT_SHARD_UTILIZATION = 0.9
DEFAULT_HOT_QUEUE_SATURATION = 0.8


@dataclass
class TrafficSample:
    """One monitoring window's measurements.

    All traffic values are records/second averaged over the window.
    ``shard_queue_saturation`` carries the blocked-request signal the
    paper lists among its indicators.
    """

    tenant_traffic: dict[int, float] = field(default_factory=dict)
    shard_traffic: dict[int, float] = field(default_factory=dict)
    worker_traffic: dict[str, float] = field(default_factory=dict)
    shard_queue_saturation: dict[int, float] = field(default_factory=dict)
    # tenant → shard → traffic observed on that route
    route_traffic: dict[int, dict[int, float]] = field(default_factory=dict)

    def tenants_on_shard(self, shard: int) -> dict[int, float]:
        """Γ_Pj — tenants contributing traffic on shard ``shard``."""
        out: dict[int, float] = {}
        for tenant, flows in self.route_traffic.items():
            if shard in flows and flows[shard] > 0:
                out[tenant] = flows[shard]
        return out


@dataclass
class HotspotReport:
    """Output of one detection pass."""

    hot_shards: list[int] = field(default_factory=list)
    hot_workers: list[str] = field(default_factory=list)
    shard_utilization: dict[int, float] = field(default_factory=dict)
    worker_utilization: dict[str, float] = field(default_factory=dict)

    @property
    def any_hot(self) -> bool:
        return bool(self.hot_shards or self.hot_workers)


class TrafficMonitor:
    """Evaluates samples against the topology to find hot spots."""

    def __init__(
        self,
        topology: ClusterTopology,
        hot_shard_utilization: float = DEFAULT_HOT_SHARD_UTILIZATION,
        hot_queue_saturation: float = DEFAULT_HOT_QUEUE_SATURATION,
    ) -> None:
        if not 0 < hot_shard_utilization <= 1:
            raise ValueError("hot_shard_utilization must be in (0, 1]")
        self._topology = topology
        self._hot_util = hot_shard_utilization
        self._hot_queue = hot_queue_saturation

    def check(self, sample: TrafficSample) -> HotspotReport:
        """CheckHotSpot over every shard and worker (Algorithm 1 lines 10-15)."""
        report = HotspotReport()
        for shard in self._topology.shards:
            capacity = self._topology.shard_capacity[shard]
            traffic = sample.shard_traffic.get(shard, 0.0)
            utilization = traffic / capacity if capacity > 0 else 0.0
            report.shard_utilization[shard] = utilization
            queue = sample.shard_queue_saturation.get(shard, 0.0)
            if utilization >= self._hot_util or queue >= self._hot_queue:
                report.hot_shards.append(shard)
        for worker in self._topology.workers:
            capacity = self._topology.worker_capacity[worker]
            traffic = sample.worker_traffic.get(worker, 0.0)
            utilization = traffic / capacity if capacity > 0 else 0.0
            report.worker_utilization[worker] = utilization
            if utilization >= self._topology.alpha:
                report.hot_workers.append(worker)
        return report

    def cluster_headroom(self, sample: TrafficSample) -> bool:
        """Algorithm 1 line 17: Σ f(D_k) <= α · Σ c(D_k).

        True ⇒ rebalancing can absorb the traffic; False ⇒ the cluster
        itself is saturated and must scale out.
        """
        total_traffic = sum(sample.worker_traffic.values())
        total_capacity = self._topology.total_worker_capacity()
        return total_traffic <= self._topology.alpha * total_capacity

    @staticmethod
    def derive_shard_and_worker_traffic(
        sample: TrafficSample, topology: ClusterTopology
    ) -> None:
        """Fill shard/worker traffic from per-route traffic in place."""
        shard_traffic: dict[int, float] = {shard: 0.0 for shard in topology.shards}
        for flows in sample.route_traffic.values():
            for shard, traffic in flows.items():
                shard_traffic[shard] = shard_traffic.get(shard, 0.0) + traffic
        sample.shard_traffic = shard_traffic
        worker_traffic: dict[str, float] = {worker: 0.0 for worker in topology.workers}
        for shard, traffic in shard_traffic.items():
            worker = topology.shard_worker[shard]
            worker_traffic[worker] += traffic
        sample.worker_traffic = worker_traffic
