"""Balancer: Algorithms 1–3 of the paper (§4.1.4).

Three interchangeable ``TrafficSchedule()`` strategies:

* :class:`NoBalancer` — keep the initial consistent-hash placement
  (the paper's "Before Balancing" baseline in Figures 12–14);
* :class:`GreedyBalancer` — Algorithm 2: split the hottest tenants of
  hot shards across the least-loaded shards with *equal* weights;
* :class:`MaxFlowBalancer` — Algorithm 3: solve the flow network with
  Dinic's algorithm, reweight existing routes first, and add edges only
  while the achievable max flow is below the offered traffic.

:class:`GlobalTrafficController` is the Algorithm 1 framework that runs
monitor → balancer → router on a period and falls back to scaling the
cluster when even the high-watermark capacity cannot absorb demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.common.errors import CapacityExceeded
from repro.flow.graph import ClusterTopology, TrafficFlowNetwork
from repro.flow.monitor import HotspotReport, TrafficMonitor, TrafficSample
from repro.flow.router import RoutingTable


@dataclass
class BalanceResult:
    """What one TrafficSchedule() run decided."""

    plan: dict[int, dict[int, float]] = field(default_factory=dict)
    edges_added: int = 0
    achievable_flow: float = 0.0
    demand: float = 0.0

    @property
    def satisfied(self) -> bool:
        return self.achievable_flow >= self.demand * 0.999


class Balancer(Protocol):
    """A TrafficSchedule() strategy."""

    def schedule(
        self,
        sample: TrafficSample,
        report: HotspotReport,
        routes: dict[int, dict[int, float]],
    ) -> BalanceResult: ...


def pick_hotspot_tenants(sample: TrafficSample, hot_shards: list[int]) -> list[int]:
    """Algorithm 2/3 lines 2-4: the largest-traffic tenant of each hot shard."""
    hot_tenants: list[int] = []
    seen: set[int] = set()
    for shard in hot_shards:
        contributors = sample.tenants_on_shard(shard)
        if not contributors:
            continue
        tenant = max(contributors, key=lambda t: (contributors[t], -t))
        if tenant not in seen:
            seen.add(tenant)
            hot_tenants.append(tenant)
    return hot_tenants


class _ShardLoadTracker:
    """Projected shard loads used by GreedyFindLeastLoad(P)."""

    def __init__(self, topology: ClusterTopology, sample: TrafficSample) -> None:
        self._topology = topology
        self._load = {
            shard: sample.shard_traffic.get(shard, 0.0) for shard in topology.shards
        }

    def least_loaded(self, exclude: set[int] = frozenset()) -> int:
        candidates = [s for s in self._topology.shards if s not in exclude]
        if not candidates:
            candidates = self._topology.shards
        return min(
            candidates,
            key=lambda s: (
                self._load[s] / max(self._topology.shard_capacity[s], 1e-9),
                s,
            ),
        )

    def add_load(self, shard: int, amount: float) -> None:
        self._load[shard] += amount


class NoBalancer:
    """Baseline: never changes routes."""

    def schedule(
        self,
        sample: TrafficSample,
        report: HotspotReport,
        routes: dict[int, dict[int, float]],
    ) -> BalanceResult:
        demand = sum(sample.tenant_traffic.values())
        return BalanceResult(plan={}, edges_added=0, achievable_flow=0.0, demand=demand)


class GreedyBalancer:
    """Algorithm 2: split hot tenants to least-loaded shards, equal weights."""

    def __init__(self, topology: ClusterTopology, per_tenant_shard_limit: float) -> None:
        if per_tenant_shard_limit <= 0:
            raise ValueError("per_tenant_shard_limit must be positive")
        self._topology = topology
        self._edge_limit = per_tenant_shard_limit

    def schedule(
        self,
        sample: TrafficSample,
        report: HotspotReport,
        routes: dict[int, dict[int, float]],
    ) -> BalanceResult:
        result = BalanceResult(demand=sum(sample.tenant_traffic.values()))
        hot_tenants = pick_hotspot_tenants(sample, report.hot_shards)
        tracker = _ShardLoadTracker(self._topology, sample)
        for tenant in hot_tenants:
            traffic = sample.tenant_traffic.get(tenant, 0.0)
            current_shards = set(routes.get(tenant, {}))
            # CalculateAddRoutesNum: total shards needed for this traffic.
            # A tenant picked from a hot shard is *split* (Algorithm 2
            # "splits and distributes their traffic"), so it always gains
            # at least one new shard even when the per-shard limit alone
            # would not demand one — its current shard is overloaded.
            n_total = max(
                math.ceil(traffic / self._edge_limit),
                len(current_shards) + 1,
            )
            n_add = max(0, n_total - len(current_shards))
            new_shards = set(current_shards)
            per_shard_share = traffic / max(n_total, 1)
            while n_add > 0:
                shard = tracker.least_loaded(exclude=new_shards)
                if shard in new_shards:
                    break  # no more distinct shards available
                new_shards.add(shard)
                tracker.add_load(shard, per_shard_share)
                result.edges_added += 1
                n_add -= 1
            # Lines 16-19: evenly distribute by averaging the weights.
            weight = 1.0 / len(new_shards)
            result.plan[tenant] = {shard: weight for shard in sorted(new_shards)}
        result.achievable_flow = result.demand  # greedy assumes success
        return result


class MaxFlowBalancer:
    """Algorithm 3: Dinic max-flow; reweight first, add edges only if needed."""

    def __init__(
        self,
        topology: ClusterTopology,
        per_tenant_shard_limit: float,
        max_edge_additions: int = 10_000,
        min_weight: float = 0.02,
    ) -> None:
        if per_tenant_shard_limit <= 0:
            raise ValueError("per_tenant_shard_limit must be positive")
        if not 0 <= min_weight < 1:
            raise ValueError("min_weight must be in [0, 1)")
        self._topology = topology
        self._edge_limit = per_tenant_shard_limit
        self._max_additions = max_edge_additions
        # §4.1.1 "keeping the edges as few as possible": edges that end up
        # carrying a negligible share of a tenant's flow after the solve
        # are dropped (their flow is absorbed by the remaining shards).
        self._min_weight = min_weight

    def schedule(
        self,
        sample: TrafficSample,
        report: HotspotReport,
        routes: dict[int, dict[int, float]],
    ) -> BalanceResult:
        network = TrafficFlowNetwork(self._topology, sample.tenant_traffic, self._edge_limit)
        demand = network.demand()
        result = BalanceResult(demand=demand)

        topology_routes: dict[int, set[int]] = {
            tenant: set(weights) for tenant, weights in routes.items()
        }
        for tenant in sample.tenant_traffic:
            topology_routes.setdefault(tenant, set())

        hot_tenants = pick_hotspot_tenants(sample, report.hot_shards)
        solution = network.solve(topology_routes)
        additions = 0

        # Algorithm 3 lines 9-19: add one edge per unsatisfied hot tenant
        # per iteration until max flow covers demand (or we run out).
        while solution.max_flow < demand * 0.999 and additions < self._max_additions:
            tracker = _ShardLoadTracker(self._topology, sample)
            # Account flows already assigned by the last solve.
            for flows in solution.tenant_shard_flow.values():
                for shard, flow in flows.items():
                    tracker.add_load(shard, flow)
            progressed = False
            unsatisfied = [
                tenant
                for tenant in (hot_tenants or sorted(sample.tenant_traffic))
                if sample.tenant_traffic.get(tenant, 0.0)
                > sum(solution.tenant_shard_flow.get(tenant, {}).values()) + 1e-9
            ]
            for tenant in unsatisfied:
                shard = tracker.least_loaded(exclude=topology_routes[tenant])
                if shard in topology_routes[tenant]:
                    continue
                topology_routes[tenant].add(shard)
                tracker.add_load(shard, 0.0)
                additions += 1
                progressed = True
            if not progressed:
                break
            solution = network.solve(topology_routes)

        result.edges_added = additions
        result.achievable_flow = solution.max_flow

        # Lines 20-25: weights from the max-flow edge flows.
        weights = solution.weights()
        for tenant, tenant_weights in list(weights.items()):
            kept = {s: w for s, w in tenant_weights.items() if w >= self._min_weight}
            if kept and len(kept) < len(tenant_weights):
                total = sum(kept.values())
                weights[tenant] = {s: w / total for s, w in kept.items()}
        for tenant, traffic in sample.tenant_traffic.items():
            if tenant in weights:
                result.plan[tenant] = weights[tenant]
            elif topology_routes.get(tenant):
                # Starved or zero-flow tenant: keep its routes, equal split.
                shards = sorted(topology_routes[tenant])
                result.plan[tenant] = {shard: 1.0 / len(shards) for shard in shards}
        return result


@dataclass
class ControllerEvent:
    """One Algorithm-1 iteration's outcome (for logging/benches)."""

    time_s: float
    hot_shards: list[int]
    rebalanced: bool
    scaled: bool
    routes_after: int
    achievable_flow: float
    demand: float


class GlobalTrafficController:
    """Algorithm 1: the periodic monitor → balance → route loop."""

    def __init__(
        self,
        topology: ClusterTopology,
        monitor: TrafficMonitor,
        balancer: Balancer,
        routing_table: RoutingTable,
        scale_cluster: Callable[[], ClusterTopology] | None = None,
        balancer_factory: Callable[[ClusterTopology], Balancer] | None = None,
        interval_s: float = 300.0,
    ) -> None:
        self.topology = topology
        self._monitor = monitor
        self._balancer = balancer
        self._routing = routing_table
        self.scale_cluster = scale_cluster
        # After ScaleCluster() the balancer must target the new topology;
        # the factory rebuilds it (Algorithm 1 lines 25-27).
        self._balancer_factory = balancer_factory
        self.interval_s = interval_s
        self.events: list[ControllerEvent] = []

    @property
    def routing_table(self) -> RoutingTable:
        return self._routing

    def run_once(self, sample: TrafficSample, now_s: float = 0.0) -> ControllerEvent:
        """One iteration of the Algorithm 1 loop body."""
        TrafficMonitor.derive_shard_and_worker_traffic(sample, self.topology)
        report = self._monitor.check(sample)
        rebalanced = False
        scaled = False
        achievable = 0.0
        demand = sum(sample.tenant_traffic.values())
        if report.any_hot:
            if self._monitor.cluster_headroom(sample):
                result = self._balancer.schedule(sample, report, self._routing.snapshot())
                if result.plan:
                    self._routing.apply_plan(result.plan)
                    rebalanced = True
                achievable = result.achievable_flow
            else:
                if self.scale_cluster is None:
                    raise CapacityExceeded(
                        f"demand {demand:.0f} exceeds high-watermark capacity "
                        f"{self.topology.alpha * self.topology.total_worker_capacity():.0f} "
                        "and no scale_cluster hook is configured"
                    )
                self.topology = self.scale_cluster()
                self._monitor = TrafficMonitor(self.topology)
                if self._balancer_factory is not None:
                    self._balancer = self._balancer_factory(self.topology)
                scaled = True
        event = ControllerEvent(
            time_s=now_s,
            hot_shards=list(report.hot_shards),
            rebalanced=rebalanced,
            scaled=scaled,
            routes_after=self._routing.total_routes(),
            achievable_flow=achievable,
            demand=demand,
        )
        self.events.append(event)
        return event
