"""Dinic's maximum-flow algorithm (§4.1.4: "MaxFlowAlgorithm(G)
calculates the maximum flow of the deterministic graph G(V,E) using
Dinic's algorithm").

Standard adjacency-list implementation with BFS level graphs and DFS
blocking flows; integer capacities.  Correctness is property-tested
against ``networkx.maximum_flow`` in the test suite.
"""

from __future__ import annotations

from collections import deque


class DinicGraph:
    """Mutable flow network on integer node ids."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        # Edge arrays: to[i], cap[i] (residual), paired edge is i ^ 1.
        self._to: list[int] = []
        self._cap: list[int] = []
        self._head: list[list[int]] = [[] for _ in range(n_nodes)]
        self._original_cap: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge; returns its edge id (for flow readback)."""
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise IndexError(f"edge ({u}, {v}) outside graph of {self.n_nodes} nodes")
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        edge_id = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._original_cap.append(capacity)
        self._head[u].append(edge_id)
        # Residual (reverse) edge.
        self._to.append(u)
        self._cap.append(0)
        self._original_cap.append(0)
        self._head[v].append(edge_id + 1)
        return edge_id

    def edge_flow(self, edge_id: int) -> int:
        """Flow currently pushed through edge ``edge_id``."""
        return self._original_cap[edge_id] - self._cap[edge_id]

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        levels = [-1] * self.n_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge_id in self._head[u]:
                v = self._to[edge_id]
                if self._cap[edge_id] > 0 and levels[v] < 0:
                    levels[v] = levels[u] + 1
                    queue.append(v)
        return levels if levels[sink] >= 0 else None

    def _dfs_push(
        self,
        u: int,
        sink: int,
        pushed: int,
        levels: list[int],
        iters: list[int],
    ) -> int:
        if u == sink:
            return pushed
        while iters[u] < len(self._head[u]):
            edge_id = self._head[u][iters[u]]
            v = self._to[edge_id]
            if self._cap[edge_id] > 0 and levels[v] == levels[u] + 1:
                flow = self._dfs_push(v, sink, min(pushed, self._cap[edge_id]), levels, iters)
                if flow > 0:
                    self._cap[edge_id] -= flow
                    self._cap[edge_id ^ 1] += flow
                    return flow
            iters[u] += 1
        return 0

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                return total
            iters = [0] * self.n_nodes
            while True:
                pushed = self._dfs_push(source, sink, _INF, levels, iters)
                if pushed == 0:
                    break
                total += pushed


_INF = 1 << 60
