"""Tenant routing tables (§4.1.2, §4.1.5).

The controller pushes rules of the form::

    Rules{T0: {P0: X00, P1: X01, P3: X03}, T1: {P3: X13} ...}

to every broker.  Brokers split each tenant's write traffic across its
shards proportionally to the weights.  On an update, the *read* routing
table is the merge of old and new plans for a grace period, "because
the tenant's read request needs to be forwarded to the nodes in both
old and new plans within a period of time" (§4.1.5) — recent data may
still sit in the old shards' row stores until the builder flushes it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import FlowError

_WEIGHT_EPSILON = 1e-9


@dataclass(frozen=True)
class RouteRule:
    """Write-routing rule for one tenant: shard → weight (sums to 1)."""

    tenant_id: int
    weights: tuple[tuple[int, float], ...]

    @classmethod
    def from_dict(cls, tenant_id: int, weights: dict[int, float]) -> "RouteRule":
        if not weights:
            raise FlowError(f"tenant {tenant_id}: empty routing rule")
        total = sum(weights.values())
        if total <= 0:
            raise FlowError(f"tenant {tenant_id}: non-positive total weight")
        normalized = tuple(
            (shard, weight / total)
            for shard, weight in sorted(weights.items())
            if weight / total > _WEIGHT_EPSILON
        )
        if not normalized:
            raise FlowError(f"tenant {tenant_id}: all weights negligible")
        return cls(tenant_id, normalized)

    def shards(self) -> list[int]:
        return [shard for shard, _w in self.weights]

    def as_dict(self) -> dict[int, float]:
        return dict(self.weights)

    @property
    def route_count(self) -> int:
        """Number of edges this rule contributes (Figure 12c metric)."""
        return len(self.weights)


class RoutingTable:
    """Versioned tenant → rule mapping with deterministic splitting."""

    def __init__(self, version: int = 0) -> None:
        self.version = version
        self._rules: dict[int, RouteRule] = {}
        self._read_extra: dict[int, set[int]] = {}  # old shards kept for reads
        self._counters: dict[int, itertools.count] = {}

    def set_rule(self, rule: RouteRule) -> None:
        previous = self._rules.get(rule.tenant_id)
        if previous is not None:
            stale = set(previous.shards()) - set(rule.shards())
            if stale:
                self._read_extra.setdefault(rule.tenant_id, set()).update(stale)
        self._rules[rule.tenant_id] = rule
        self._counters.pop(rule.tenant_id, None)

    def rule_for(self, tenant_id: int) -> RouteRule | None:
        return self._rules.get(tenant_id)

    def tenants(self) -> list[int]:
        return sorted(self._rules)

    def total_routes(self) -> int:
        """Total number of routing edges — the paper's "routes" metric."""
        return sum(rule.route_count for rule in self._rules.values())

    # -- write routing ------------------------------------------------------

    def route_write(self, tenant_id: int) -> int:
        """Pick the shard for one write of this tenant.

        Deterministic weighted round-robin: over N consecutive writes the
        realized split converges to the rule's weights without any RNG,
        which keeps simulations reproducible.
        """
        rule = self._rules.get(tenant_id)
        if rule is None:
            raise FlowError(f"no routing rule for tenant {tenant_id}")
        if len(rule.weights) == 1:
            return rule.weights[0][0]
        counter = self._counters.setdefault(tenant_id, itertools.count())
        tick = next(counter)
        # Low-discrepancy selection: walk the cumulative weights with a
        # golden-ratio stride so interleavings stay smooth.
        position = (tick * 0.61803398875) % 1.0
        cumulative = 0.0
        for shard, weight in rule.weights:
            cumulative += weight
            if position < cumulative:
                return shard
        return rule.weights[-1][0]

    def split_batch(self, tenant_id: int, batch_size: int) -> dict[int, int]:
        """Split ``batch_size`` records across the tenant's shards.

        Uses largest-remainder apportionment so the counts match the
        weights as closely as integers allow.
        """
        rule = self._rules.get(tenant_id)
        if rule is None:
            raise FlowError(f"no routing rule for tenant {tenant_id}")
        if batch_size < 0:
            raise FlowError(f"negative batch size {batch_size}")
        exact = [(shard, weight * batch_size) for shard, weight in rule.weights]
        floors = {shard: int(value) for shard, value in exact}
        remainder = batch_size - sum(floors.values())
        by_fraction = sorted(exact, key=lambda sv: sv[1] - int(sv[1]), reverse=True)
        for shard, _value in by_fraction[:remainder]:
            floors[shard] += 1
        return {shard: count for shard, count in floors.items() if count > 0}

    # -- read routing -------------------------------------------------------

    def route_read(self, tenant_id: int) -> list[int]:
        """All shards that may hold recent data for this tenant.

        Union of the current plan and not-yet-flushed old shards.
        """
        rule = self._rules.get(tenant_id)
        shards = set(rule.shards()) if rule is not None else set()
        shards |= self._read_extra.get(tenant_id, set())
        return sorted(shards)

    def clear_read_extra(self, tenant_id: int, shard: int) -> None:
        """Drop an old shard from read routing once its data is on OSS."""
        extra = self._read_extra.get(tenant_id)
        if extra is not None:
            extra.discard(shard)
            if not extra:
                del self._read_extra[tenant_id]

    # -- plan application --------------------------------------------------

    def apply_plan(self, plan: dict[int, dict[int, float]]) -> None:
        """Install a balancer-produced plan atomically (one version bump)."""
        for tenant_id, weights in plan.items():
            self.set_rule(RouteRule.from_dict(tenant_id, weights))
        self.version += 1

    def snapshot(self) -> dict[int, dict[int, float]]:
        """Copy of the current rules (for inspection and tests)."""
        return {tenant: rule.as_dict() for tenant, rule in self._rules.items()}
