"""Global traffic control: flow-network load balancing (§4)."""

from repro.flow.balancer import (
    BalanceResult,
    GlobalTrafficController,
    GreedyBalancer,
    MaxFlowBalancer,
    NoBalancer,
    pick_hotspot_tenants,
)
from repro.flow.consistent_hash import ConsistentHashRing
from repro.flow.dinic import DinicGraph
from repro.flow.graph import ClusterTopology, FlowSolution, TrafficFlowNetwork
from repro.flow.monitor import HotspotReport, TrafficMonitor, TrafficSample
from repro.flow.router import RouteRule, RoutingTable

__all__ = [
    "BalanceResult",
    "GlobalTrafficController",
    "GreedyBalancer",
    "MaxFlowBalancer",
    "NoBalancer",
    "pick_hotspot_tenants",
    "ConsistentHashRing",
    "DinicGraph",
    "ClusterTopology",
    "FlowSolution",
    "TrafficFlowNetwork",
    "HotspotReport",
    "TrafficMonitor",
    "TrafficSample",
    "RouteRule",
    "RoutingTable",
]
