"""The LogStore traffic flow network (§4.1.1, Figure 5).

A single-source/single-sink network ``S → tenants → shards → workers →
T``:

* ``S → K_i``   capacity = f(K_i), the tenant's observed traffic;
* ``K_i → P_j`` capacity = per-tenant-per-shard processing limit (the
  paper's "one shard is limited to process up to 100K logs belonging to
  the same tenant"), present only where a routing rule exists;
* ``P_j → D_k`` capacity = c(P_j), the shard's capacity, fixed by the
  shard's placement on its worker;
* ``D_k → T``   capacity = α · c(D_k), the worker high-watermark.

``max_flow`` then answers: how much of the offered tenant traffic can
the current topology absorb?  Per-edge flows read back from the Dinic
run become the routing weights X_ij = f(X_ij)/f(K_i) (§4.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import FlowError
from repro.flow.dinic import DinicGraph

DEFAULT_ALPHA = 0.85


@dataclass
class ClusterTopology:
    """Static-ish description of shards, workers and their capacities.

    ``shard_worker[p]`` is the worker id hosting shard ``p``; capacities
    are in records/second.  Heterogeneous workers (§4, "Heterogeneity of
    ECS nodes") simply get different capacities.
    """

    shard_worker: dict[int, str]
    shard_capacity: dict[int, float]
    worker_capacity: dict[str, float]
    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise FlowError(f"alpha must be in (0, 1], got {self.alpha}")
        for shard, worker in self.shard_worker.items():
            if worker not in self.worker_capacity:
                raise FlowError(f"shard {shard} placed on unknown worker {worker!r}")
            if shard not in self.shard_capacity:
                raise FlowError(f"shard {shard} missing capacity")

    @property
    def shards(self) -> list[int]:
        return sorted(self.shard_worker)

    @property
    def workers(self) -> list[str]:
        return sorted(self.worker_capacity)

    def shards_on(self, worker: str) -> list[int]:
        return [s for s, w in sorted(self.shard_worker.items()) if w == worker]

    def total_worker_capacity(self) -> float:
        return sum(self.worker_capacity.values())


@dataclass
class FlowSolution:
    """Result of one max-flow evaluation."""

    max_flow: float
    # tenant → shard → absolute flow assigned (records/s)
    tenant_shard_flow: dict[int, dict[int, float]] = field(default_factory=dict)

    def weights(self) -> dict[int, dict[int, float]]:
        """Normalized routing weights X_ij per tenant (sum to 1)."""
        out: dict[int, dict[int, float]] = {}
        for tenant, flows in self.tenant_shard_flow.items():
            total = sum(flows.values())
            if total <= 0:
                continue
            out[tenant] = {shard: flow / total for shard, flow in flows.items() if flow > 0}
        return out


class TrafficFlowNetwork:
    """Builds and solves the Figure 5 network for given routes."""

    # Traffic values are floats (records/s); Dinic needs integers, so we
    # scale.  1e-3 resolution on records/s is far below measurement noise.
    SCALE = 1000

    def __init__(
        self,
        topology: ClusterTopology,
        tenant_traffic: dict[int, float],
        per_tenant_shard_limit: float,
    ) -> None:
        if per_tenant_shard_limit <= 0:
            raise FlowError("per_tenant_shard_limit must be positive")
        self._topology = topology
        self._traffic = {t: f for t, f in tenant_traffic.items() if f > 0}
        self._edge_limit = per_tenant_shard_limit

    def solve(self, routes: dict[int, set[int]]) -> FlowSolution:
        """Max flow under the given tenant→shards topology.

        ``routes[tenant]`` is the set of shards the tenant may use.
        """
        tenants = sorted(self._traffic)
        shards = self._topology.shards
        workers = self._topology.workers

        # Node numbering: 0 = S, then tenants, shards, workers, sink.
        tenant_node = {t: 1 + i for i, t in enumerate(tenants)}
        shard_node = {p: 1 + len(tenants) + i for i, p in enumerate(shards)}
        worker_node = {w: 1 + len(tenants) + len(shards) + i for i, w in enumerate(workers)}
        sink = 1 + len(tenants) + len(shards) + len(workers)
        graph = DinicGraph(sink + 1)

        scale = self.SCALE
        for tenant in tenants:
            graph.add_edge(0, tenant_node[tenant], int(self._traffic[tenant] * scale))

        route_edges: dict[tuple[int, int], int] = {}
        for tenant in tenants:
            for shard in sorted(routes.get(tenant, ())):
                if shard not in shard_node:
                    raise FlowError(f"route references unknown shard {shard}")
                edge_id = graph.add_edge(
                    tenant_node[tenant], shard_node[shard], int(self._edge_limit * scale)
                )
                route_edges[(tenant, shard)] = edge_id

        for shard in shards:
            worker = self._topology.shard_worker[shard]
            graph.add_edge(
                shard_node[shard],
                worker_node[worker],
                int(self._topology.shard_capacity[shard] * scale),
            )

        for worker in workers:
            capacity = self._topology.alpha * self._topology.worker_capacity[worker]
            graph.add_edge(worker_node[worker], sink, int(capacity * scale))

        total = graph.max_flow(0, sink)

        solution = FlowSolution(max_flow=total / scale)
        for (tenant, shard), edge_id in route_edges.items():
            flow = graph.edge_flow(edge_id) / scale
            if flow > 0:
                solution.tenant_shard_flow.setdefault(tenant, {})[shard] = flow
        # Tenants whose routes carry zero flow still need an entry so
        # weight normalization can detect starvation.
        for tenant in tenants:
            solution.tenant_shard_flow.setdefault(tenant, {})
        return solution

    def demand(self) -> float:
        """Total offered traffic  Σ f(K_i)."""
        return sum(self._traffic.values())
