"""Column-block encoders/decoders for each physical type.

A *column block* is the unit of the fifth part of the LogBlock layout
(Figure 4): the values of one column for a horizontal slice of rows,
together with a null bitset.  The encoded payload is compressed by the
writer with the block's codec; this module produces/consumes the
*uncompressed* payload.

Encodings:

* INT64/TIMESTAMP — null bitset + raw little-endian int64 vector.
* FLOAT64        — null bitset + raw float64 vector.
* BOOL           — null bitset + value bitset.
* STRING         — null bitset + either PLAIN (offsets + utf-8 bytes) or
  DICT (distinct values + per-row codes) chosen by cardinality, like the
  frequency-based dictionary compression the paper cites from DB2 BLU.
"""

from __future__ import annotations

import numpy as np

from repro.common.bitset import Bitset
from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.errors import SerializationError
from repro.logblock.schema import ColumnType

_STRING_PLAIN = 0
_STRING_DICT = 1

# Use dictionary encoding when distinct values are at most this fraction
# of the row count (and the block is non-trivial).
_DICT_MAX_CARDINALITY_FRACTION = 0.5


def encode_block(values: list, ctype: ColumnType) -> bytes:
    """Encode one column block of python values (``None`` = null)."""
    writer = BinaryWriter()
    nulls = Bitset.from_bool_array(np.array([v is None for v in values], dtype=bool))
    writer.write_len_prefixed(nulls.to_bytes())
    if ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
        vector = np.array([0 if v is None else int(v) for v in values], dtype=np.int64)
        writer.write_bytes(vector.tobytes())
    elif ctype is ColumnType.FLOAT64:
        vector = np.array([0.0 if v is None else float(v) for v in values], dtype=np.float64)
        writer.write_bytes(vector.tobytes())
    elif ctype is ColumnType.BOOL:
        bits = Bitset.from_bool_array(np.array([bool(v) for v in values], dtype=bool))
        writer.write_len_prefixed(bits.to_bytes())
    elif ctype is ColumnType.STRING:
        _encode_strings(writer, values)
    else:
        raise SerializationError(f"unsupported column type {ctype}")
    return writer.getvalue()


def decode_block(data: bytes, ctype: ColumnType, row_count: int) -> list:
    """Decode a column block back into python values (``None`` = null)."""
    reader = BinaryReader(data)
    nulls = Bitset.from_bytes(reader.read_len_prefixed())
    if len(nulls) != row_count:
        raise SerializationError(
            f"null bitset size {len(nulls)} does not match row count {row_count}"
        )
    null_mask = nulls.to_bool_array()
    if ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
        vector = np.frombuffer(reader.read_bytes(row_count * 8), dtype=np.int64)
        return [None if null_mask[i] else int(vector[i]) for i in range(row_count)]
    if ctype is ColumnType.FLOAT64:
        vector = np.frombuffer(reader.read_bytes(row_count * 8), dtype=np.float64)
        return [None if null_mask[i] else float(vector[i]) for i in range(row_count)]
    if ctype is ColumnType.BOOL:
        bits = Bitset.from_bytes(reader.read_len_prefixed())
        mask = bits.to_bool_array()
        return [None if null_mask[i] else bool(mask[i]) for i in range(row_count)]
    if ctype is ColumnType.STRING:
        return _decode_strings(reader, null_mask, row_count)
    raise SerializationError(f"unsupported column type {ctype}")


def decode_block_arrays(
    data: bytes, ctype: ColumnType, row_count: int
) -> tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, list, np.ndarray] | None:
    """Vectorized decode into numpy arrays.

    Numeric/bool columns return ``(values, null_mask)``.  DICT-encoded
    string blocks return ``(codes, dictionary, null_mask)`` — codes are
    int64 with 0 = null and ``code - 1`` indexing the sorted
    ``dictionary``, so equality/IN/range predicates evaluate as integer
    compares on the codes (the dictionary is sorted, hence codes are
    order-isomorphic to the values).  PLAIN string blocks return
    ``None`` (callers fall back to :func:`decode_block`).  This is the
    data path for the vectorized scan mode (the paper's §8 future work:
    "vectorized query execution").
    """
    reader = BinaryReader(data)
    nulls = Bitset.from_bytes(reader.read_len_prefixed())
    if len(nulls) != row_count:
        raise SerializationError(
            f"null bitset size {len(nulls)} does not match row count {row_count}"
        )
    null_mask = nulls.to_bool_array()
    if ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
        values = np.frombuffer(reader.read_bytes(row_count * 8), dtype=np.int64)
        return values, null_mask
    if ctype is ColumnType.FLOAT64:
        values = np.frombuffer(reader.read_bytes(row_count * 8), dtype=np.float64)
        return values, null_mask
    if ctype is ColumnType.BOOL:
        bits = Bitset.from_bytes(reader.read_len_prefixed())
        return bits.to_bool_array(), null_mask
    if ctype is ColumnType.STRING:
        if reader.read_u8() != _STRING_DICT:
            return None
        dict_size = reader.read_uvarint()
        dictionary = [reader.read_str() for _ in range(dict_size)]
        if dict_size < 0x80:
            # Every code (≤ dict_size) fits one LEB128 byte: bulk-read.
            raw = reader.read_bytes(row_count)
            codes = np.frombuffer(raw, dtype=np.uint8).astype(np.int64)
        else:
            codes = np.empty(row_count, dtype=np.int64)
            for i in range(row_count):
                codes[i] = reader.read_uvarint()
        return codes, dictionary, null_mask
    return None


def _encode_strings(writer: BinaryWriter, values: list) -> None:
    present = [v for v in values if v is not None]
    distinct = set(present)
    use_dict = (
        len(values) >= 16 and len(distinct) <= _DICT_MAX_CARDINALITY_FRACTION * len(present)
        if present
        else False
    )
    if use_dict:
        writer.write_u8(_STRING_DICT)
        ordered = sorted(distinct)
        code_of = {value: code for code, value in enumerate(ordered)}
        writer.write_uvarint(len(ordered))
        for value in ordered:
            writer.write_str(value)
        for value in values:
            # Code 0 is reserved for null; real codes are shifted by one.
            writer.write_uvarint(0 if value is None else code_of[value] + 1)
    else:
        writer.write_u8(_STRING_PLAIN)
        for value in values:
            writer.write_str("" if value is None else value)


def _decode_strings(reader: BinaryReader, null_mask: np.ndarray, row_count: int) -> list:
    encoding = reader.read_u8()
    if encoding == _STRING_DICT:
        dict_size = reader.read_uvarint()
        dictionary = [reader.read_str() for _ in range(dict_size)]
        out: list = []
        for i in range(row_count):
            code = reader.read_uvarint()
            if code == 0 or null_mask[i]:
                out.append(None)
            else:
                out.append(dictionary[code - 1])
        return out
    if encoding == _STRING_PLAIN:
        out = []
        for i in range(row_count):
            text = reader.read_str()  # nulls were written as "" placeholders
            out.append(None if null_mask[i] else text)
        return out
    raise SerializationError(f"unknown string encoding {encoding}")
