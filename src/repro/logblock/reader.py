"""LogBlockReader: lazy, part-wise reads of a packed LogBlock.

The reader never fetches the whole blob.  It reads the ``meta`` member
once, then fetches only the indexes and column blocks the query plan
needs — each fetch is a single ranged GET against the object store (or a
cache hit through the multi-level cache when one is attached upstream).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.codec import get_codec
from repro.common.errors import QueryError
from repro.logblock.bkd import BkdIndex
from repro.logblock.column import decode_block
from repro.logblock.inverted import InvertedIndex
from repro.logblock.schema import ColumnSpec, IndexType
from repro.logblock.bloom import BloomFilter
from repro.logblock.writer import (
    META_MEMBER,
    LogBlockMeta,
    block_member,
    bloom_member,
    index_member,
)
from repro.tarpack.reader import PackReader


class LogBlockReader:
    """Read-side view of one LogBlock stored in an object store.

    ``decode_charge``, when provided, is called with the *compressed*
    byte count each time a member is actually decompressed and decoded
    (memoized re-reads are free) — the hook the virtual-time executor
    uses to account CPU cost alongside the metered I/O cost.
    """

    def __init__(self, pack: PackReader, decode_charge=None) -> None:
        self._pack = pack
        self._meta: LogBlockMeta | None = None
        self._decode_charge = decode_charge
        self._index_cache: dict[str, InvertedIndex | BkdIndex] = {}
        self._block_cache: dict[tuple[int, int], list] = {}

    @property
    def pack(self) -> PackReader:
        return self._pack

    def meta(self) -> LogBlockMeta:
        """Fetch (once) and parse the meta member."""
        if self._meta is None:
            self._meta = LogBlockMeta.from_bytes(self._pack.read_member(META_MEMBER))
        return self._meta

    def attach_meta(self, meta: LogBlockMeta) -> None:
        """Install an externally cached meta, skipping the GET."""
        self._meta = meta

    @property
    def row_count(self) -> int:
        return self.meta().row_count

    def column(self, name: str) -> ColumnSpec:
        return self.meta().schema.column(name)

    # -- indexes ---------------------------------------------------------

    def has_index(self, column: str) -> bool:
        return self.column(column).index is not IndexType.NONE

    def read_index(self, column: str) -> InvertedIndex | BkdIndex:
        """Fetch and decode a column's index (memoized per reader)."""
        if column in self._index_cache:
            return self._index_cache[column]
        meta = self.meta()
        spec = meta.schema.column(column)
        if spec.index is IndexType.NONE:
            raise QueryError(f"column {column!r} has no index")
        codec = get_codec(meta.codec_id)
        raw = self._pack.read_member(index_member(column))
        if self._decode_charge is not None:
            self._decode_charge(len(raw))
        payload = codec.decompress(raw)
        index: InvertedIndex | BkdIndex
        if spec.index is IndexType.INVERTED:
            index = InvertedIndex.from_bytes(payload)
        else:
            index = BkdIndex.from_bytes(payload)
        self._index_cache[column] = index
        return index

    def has_bloom(self, column: str) -> bool:
        return column in self.meta().bloom_sizes

    def read_bloom(self, column: str) -> BloomFilter | None:
        """Fetch a column's Bloom filter (None when the column has none)."""
        if not self.has_bloom(column):
            return None
        key = f"bloom:{column}"
        if key in self._index_cache:
            return self._index_cache[key]  # type: ignore[return-value]
        payload = self._pack.read_member(bloom_member(column))
        bloom = BloomFilter.from_bytes(payload)
        self._index_cache[key] = bloom  # type: ignore[assignment]
        return bloom

    # -- column blocks -----------------------------------------------------

    def read_block(self, column: str, block_idx: int) -> list:
        """Fetch and decode one column block (memoized per reader)."""
        meta = self.meta()
        col_idx = meta.schema.column_index(column)
        key = (col_idx, block_idx)
        if key in self._block_cache:
            return self._block_cache[key]
        if not 0 <= block_idx < meta.n_blocks:
            raise QueryError(f"block index {block_idx} out of range [0, {meta.n_blocks})")
        codec = get_codec(meta.codec_id)
        raw = self._pack.read_member(block_member(col_idx, block_idx))
        if self._decode_charge is not None:
            self._decode_charge(len(raw))
        payload = codec.decompress(raw)
        values = decode_block(payload, meta.schema.column(column).ctype, meta.block_row_counts[block_idx])
        self._block_cache[key] = values
        return values

    def read_block_arrays(self, column: str, block_idx: int):
        """Vectorized block read: ``(values, null_mask)`` numpy arrays.

        Returns ``None`` for string columns (no natural vector form) —
        callers fall back to :meth:`read_block`.  Backing the §8
        "vectorized query execution" scan mode.
        """
        from repro.logblock.column import decode_block_arrays

        meta = self.meta()
        col_idx = meta.schema.column_index(column)
        key = ("vec", col_idx, block_idx)
        if key in self._block_cache:
            return self._block_cache[key]
        if not 0 <= block_idx < meta.n_blocks:
            raise QueryError(f"block index {block_idx} out of range [0, {meta.n_blocks})")
        codec = get_codec(meta.codec_id)
        raw = self._pack.read_member(block_member(col_idx, block_idx))
        if self._decode_charge is not None:
            self._decode_charge(len(raw))
        payload = codec.decompress(raw)
        arrays = decode_block_arrays(
            payload, meta.schema.column(column).ctype, meta.block_row_counts[block_idx]
        )
        self._block_cache[key] = arrays
        return arrays

    def read_column(self, column: str) -> list:
        """Fetch all blocks of one column, concatenated."""
        meta = self.meta()
        out: list = []
        for block_idx in range(meta.n_blocks):
            out.extend(self.read_block(column, block_idx))
        return out

    def block_of_row(self, row_id: int) -> tuple[int, int]:
        """Map a global row id to ``(block_idx, offset_in_block)``."""
        meta = self.meta()
        if not 0 <= row_id < meta.row_count:
            raise QueryError(f"row id {row_id} out of range [0, {meta.row_count})")
        base = 0
        for block_idx, count in enumerate(meta.block_row_counts):
            if row_id < base + count:
                return block_idx, row_id - base
            base += count
        raise AssertionError("unreachable: row counts do not cover row id")

    def read_rows(self, row_ids: Sequence[int], columns: Iterable[str]) -> list[dict]:
        """Materialize the given rows for the given columns.

        Fetches each needed column block at most once.  ``row_ids`` must
        be sorted ascending (the query executor produces them that way).
        """
        wanted = list(columns)
        rows = [dict() for _ in row_ids]
        for column in wanted:
            for out_idx, row_id in enumerate(row_ids):
                block_idx, offset = self.block_of_row(row_id)
                values = self.read_block(column, block_idx)
                rows[out_idx][column] = values[offset]
        return rows

    def member_extent(self, member: str) -> tuple[int, int]:
        """Byte extent of a member (used by the prefetch planner)."""
        return self._pack.member_extent(member)
