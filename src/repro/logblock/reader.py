"""LogBlockReader: lazy, part-wise reads of a packed LogBlock.

The reader never fetches the whole blob.  It reads the ``meta`` member
once, then fetches only the indexes and column blocks the query plan
needs — each fetch is a single ranged GET against the object store (or a
cache hit through the multi-level cache when one is attached upstream).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.codec import get_codec
from repro.common.bitset import Bitset
from repro.common.errors import QueryError
from repro.logblock.bkd import BkdIndex
from repro.logblock.column import decode_block
from repro.logblock.inverted import InvertedIndex
from repro.logblock.schema import ColumnSpec, IndexType
from repro.logblock.bloom import BloomFilter
from repro.logblock.writer import (
    META_MEMBER,
    LogBlockMeta,
    block_member,
    bloom_member,
    index_member,
)
from repro.tarpack.reader import PackReader


class LogBlockReader:
    """Read-side view of one LogBlock stored in an object store.

    ``decode_charge``, when provided, is called with the *compressed*
    byte count each time a member is actually decompressed and decoded
    (memoized re-reads are free) — the hook the virtual-time executor
    uses to account CPU cost alongside the metered I/O cost.
    """

    def __init__(self, pack: PackReader, decode_charge=None) -> None:
        self._pack = pack
        self._meta: LogBlockMeta | None = None
        self._decode_charge = decode_charge
        self._index_cache: dict[str, InvertedIndex | BkdIndex] = {}
        self._block_cache: dict[tuple[int, int], list] = {}
        self._objects = None  # shared decoded-object cache (ObjectCache)
        self._objects_bucket = ""

    def attach_shared_cache(self, objects, bucket: str) -> None:
        """Share decoded indexes/Blooms across readers via ``objects``.

        Entries are keyed ``(bucket, blob_key, member)`` exactly like the
        cached meta, so :meth:`ObjectCache.invalidate_blob` drops them
        together with the meta when a blob is deleted.
        """
        self._objects = objects
        self._objects_bucket = bucket

    def _shared_key(self, member: str):
        return (self._objects_bucket, self._pack.key, member)

    @property
    def pack(self) -> PackReader:
        return self._pack

    def meta(self) -> LogBlockMeta:
        """Fetch (once) and parse the meta member."""
        if self._meta is None:
            self._meta = LogBlockMeta.from_bytes(self._pack.read_member(META_MEMBER))
        return self._meta

    def attach_meta(self, meta: LogBlockMeta) -> None:
        """Install an externally cached meta, skipping the GET."""
        self._meta = meta

    @property
    def row_count(self) -> int:
        return self.meta().row_count

    def column(self, name: str) -> ColumnSpec:
        return self.meta().schema.column(name)

    # -- indexes ---------------------------------------------------------

    def has_index(self, column: str) -> bool:
        return self.column(column).index is not IndexType.NONE

    def read_index(self, column: str) -> InvertedIndex | BkdIndex:
        """Fetch and decode a column's index (memoized per reader).

        A shared decoded-object cache, when attached, serves repeat
        readers of the same blob without the GET, decompression, or
        parse (and therefore without the decode charge).
        """
        if column in self._index_cache:
            return self._index_cache[column]
        meta = self.meta()
        spec = meta.schema.column(column)
        if spec.index is IndexType.NONE:
            raise QueryError(f"column {column!r} has no index")
        member = index_member(column)
        if self._objects is not None:
            cached = self._objects.get(self._shared_key(member))
            if cached is not None:
                self._index_cache[column] = cached
                return cached
        codec = get_codec(meta.codec_id)
        raw = self._pack.read_member(member)
        if self._decode_charge is not None:
            self._decode_charge(len(raw))
        payload = codec.decompress(raw)
        index: InvertedIndex | BkdIndex
        if spec.index is IndexType.INVERTED:
            index = InvertedIndex.from_bytes(payload)
        else:
            index = BkdIndex.from_bytes(payload)
        self._index_cache[column] = index
        if self._objects is not None:
            self._objects.put(self._shared_key(member), index, approx_bytes=len(payload))
        return index

    def has_bloom(self, column: str) -> bool:
        return column in self.meta().bloom_sizes

    def read_bloom(self, column: str) -> BloomFilter | None:
        """Fetch a column's Bloom filter (None when the column has none)."""
        if not self.has_bloom(column):
            return None
        key = f"bloom:{column}"
        if key in self._index_cache:
            return self._index_cache[key]  # type: ignore[return-value]
        member = bloom_member(column)
        if self._objects is not None:
            cached = self._objects.get(self._shared_key(member))
            if cached is not None:
                self._index_cache[key] = cached  # type: ignore[assignment]
                return cached  # type: ignore[return-value]
        payload = self._pack.read_member(member)
        bloom = BloomFilter.from_bytes(payload)
        self._index_cache[key] = bloom  # type: ignore[assignment]
        if self._objects is not None:
            self._objects.put(self._shared_key(member), bloom, approx_bytes=len(payload))
        return bloom

    # -- column blocks -----------------------------------------------------

    def _block_payload(self, col_idx: int, block_idx: int) -> bytes:
        """Decompressed payload of one column block, fetched+charged once.

        Shared by :meth:`read_block` and :meth:`read_block_arrays` so a
        block scanned as numpy vectors and later materialized as python
        values pays one ranged GET and one decode charge, not two.
        """
        meta = self.meta()
        key = ("payload", col_idx, block_idx)
        payload = self._block_cache.get(key)
        if payload is not None:
            return payload
        if not 0 <= block_idx < meta.n_blocks:
            raise QueryError(f"block index {block_idx} out of range [0, {meta.n_blocks})")
        codec = get_codec(meta.codec_id)
        raw = self._pack.read_member(block_member(col_idx, block_idx))
        if self._decode_charge is not None:
            self._decode_charge(len(raw))
        payload = codec.decompress(raw)
        self._block_cache[key] = payload
        return payload

    def read_block(self, column: str, block_idx: int) -> list:
        """Fetch and decode one column block (memoized per reader)."""
        meta = self.meta()
        col_idx = meta.schema.column_index(column)
        key = (col_idx, block_idx)
        if key in self._block_cache:
            return self._block_cache[key]
        payload = self._block_payload(col_idx, block_idx)
        values = decode_block(payload, meta.schema.column(column).ctype, meta.block_row_counts[block_idx])
        self._block_cache[key] = values
        return values

    def read_block_arrays(self, column: str, block_idx: int):
        """Vectorized block read: ``(values, null_mask)`` numpy arrays.

        DICT-encoded string blocks return ``(codes, dictionary,
        null_mask)`` so predicates evaluate as integer compares on the
        codes; PLAIN string blocks return ``None`` (no natural vector
        form) — callers fall back to :meth:`read_block`.  Backing the
        §8 "vectorized query execution" scan mode.
        """
        from repro.logblock.column import decode_block_arrays

        meta = self.meta()
        col_idx = meta.schema.column_index(column)
        key = ("vec", col_idx, block_idx)
        if key in self._block_cache:
            return self._block_cache[key]
        payload = self._block_payload(col_idx, block_idx)
        arrays = decode_block_arrays(
            payload, meta.schema.column(column).ctype, meta.block_row_counts[block_idx]
        )
        self._block_cache[key] = arrays
        return arrays

    def read_column(self, column: str) -> list:
        """Fetch all blocks of one column, concatenated."""
        meta = self.meta()
        out: list = []
        for block_idx in range(meta.n_blocks):
            out.extend(self.read_block(column, block_idx))
        return out

    def _block_ends(self) -> np.ndarray:
        """Cumulative (exclusive) end row id of each column block."""
        meta = self.meta()
        key = ("ends",)
        ends = self._block_cache.get(key)
        if ends is None:
            ends = np.cumsum(np.asarray(meta.block_row_counts, dtype=np.int64))
            self._block_cache[key] = ends
        return ends

    def blocks_of_rows(self, row_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_of_row`: block index per row id.

        O(rows · log blocks) instead of the per-row linear walk, which
        made per-matched-row mapping O(rows · blocks).
        """
        idx = np.asarray(row_ids, dtype=np.int64)
        if idx.size and (idx[0] < 0 or idx[-1] >= self.meta().row_count):
            raise QueryError(f"row id out of range [0, {self.meta().row_count})")
        return np.searchsorted(self._block_ends(), idx, side="right")

    def block_of_row(self, row_id: int) -> tuple[int, int]:
        """Map a global row id to ``(block_idx, offset_in_block)``."""
        meta = self.meta()
        if not 0 <= row_id < meta.row_count:
            raise QueryError(f"row id {row_id} out of range [0, {meta.row_count})")
        ends = self._block_ends()
        block_idx = int(np.searchsorted(ends, row_id, side="right"))
        start = int(ends[block_idx]) - meta.block_row_counts[block_idx]
        return block_idx, row_id - start

    def read_rows(self, row_ids: Sequence[int], columns: Iterable[str]) -> list[dict]:
        """Materialize the given rows for the given columns.

        Fetches each needed column block at most once.  ``row_ids`` must
        be sorted ascending (the query executor produces them that way).
        """
        wanted = list(columns)
        rows = [dict() for _ in row_ids]
        if not row_ids:
            return rows
        blocks = self.blocks_of_rows(row_ids)
        ends = self._block_ends()
        counts = self.meta().block_row_counts
        offsets = [
            row_id - (int(ends[blk]) - counts[blk]) for row_id, blk in zip(row_ids, blocks)
        ]
        for column in wanted:
            for out_idx, (blk, offset) in enumerate(zip(blocks, offsets)):
                values = self.read_block(column, int(blk))
                rows[out_idx][column] = values[offset]
        return rows

    def read_column_values(self, column: str, matched: Bitset) -> list:
        """Values of ``column`` at the matched row ids, in row-id order.

        The late-materialization read: fetches only the column blocks
        containing matched rows, returns a flat value vector and never
        builds row dicts.  Aggregation consumes these vectors directly.
        """
        idx = matched.indices()
        if not idx.size:
            return []
        blocks = self.blocks_of_rows(idx)
        ends = self._block_ends()
        counts = self.meta().block_row_counts
        out: list = []
        for block_idx in np.unique(blocks):
            block_idx = int(block_idx)
            start = int(ends[block_idx]) - counts[block_idx]
            in_block = idx[blocks == block_idx] - start
            arrays = self.read_block_arrays(column, block_idx)
            if arrays is not None and len(arrays) == 3:
                # DICT string block: pick codes, then look the few
                # matched values up in the (tiny) dictionary.
                codes, dictionary, null_mask = arrays
                hit_nulls = null_mask[in_block]
                out.extend(
                    None if (is_null or code == 0) else dictionary[code - 1]
                    for code, is_null in zip(
                        codes[in_block].tolist(), hit_nulls.tolist()
                    )
                )
                continue
            if arrays is not None:
                # Fancy-index the numpy block instead of decoding every
                # value to a python object just to pick a few of them.
                values_arr, null_mask = arrays
                picked = values_arr[in_block].tolist()
                if null_mask is not None:
                    hit_nulls = null_mask[in_block]
                    if hit_nulls.any():
                        picked = [
                            None if is_null else value
                            for value, is_null in zip(picked, hit_nulls.tolist())
                        ]
                out.extend(picked)
                continue
            values = self.read_block(column, block_idx)
            out.extend(values[int(offset)] for offset in in_block)
        return out

    def member_extent(self, member: str) -> tuple[int, int]:
        """Byte extent of a member (used by the prefetch planner)."""
        return self._pack.member_extent(member)
