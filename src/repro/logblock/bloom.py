"""Block-level Bloom filters for high-cardinality equality skipping.

SMA min/max prunes poorly on high-cardinality string columns (a block
of 4096 distinct request ids has min ≈ the alphabet's start and max ≈
its end, so every equality probe "may match").  A small Bloom filter
per column answers "definitely absent" for equality predicates at the
cost of a few bits per row, letting the planner skip whole LogBlocks
without fetching their (much larger) inverted indexes.

Implementation: standard Bloom filter with double hashing —
``h_i(x) = h1(x) + i * h2(x)`` (Kirsch–Mitzenmacher), h1/h2 from one
blake2b digest.  Sized for a target false-positive rate.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.errors import SerializationError

DEFAULT_FPR = 0.01


def optimal_parameters(n_items: int, fpr: float = DEFAULT_FPR) -> tuple[int, int]:
    """(bits, hash_count) minimizing size for the target false-positive rate."""
    if n_items <= 0:
        return 8, 1
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    bits = max(8, math.ceil(-n_items * math.log(fpr) / (math.log(2) ** 2)))
    hashes = max(1, round(bits / n_items * math.log(2)))
    return bits, hashes


def _hash_pair(value: str) -> tuple[int, int]:
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1  # odd → full period
    return h1, h2


class BloomFilter:
    """A serializable Bloom filter over normalized string values."""

    def __init__(self, n_bits: int, n_hashes: int, bits: np.ndarray | None = None) -> None:
        if n_bits <= 0 or n_hashes <= 0:
            raise ValueError("n_bits and n_hashes must be positive")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        n_words = (n_bits + 7) // 8
        if bits is None:
            self._bits = np.zeros(n_words, dtype=np.uint8)
        else:
            if len(bits) != n_words:
                raise ValueError(f"expected {n_words} bytes, got {len(bits)}")
            self._bits = bits.astype(np.uint8, copy=True)

    @classmethod
    def for_items(cls, n_items: int, fpr: float = DEFAULT_FPR) -> "BloomFilter":
        bits, hashes = optimal_parameters(n_items, fpr)
        return cls(bits, hashes)

    def _positions(self, value: str):
        h1, h2 = _hash_pair(value)
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, value: str) -> None:
        for position in self._positions(value):
            self._bits[position >> 3] |= np.uint8(1 << (position & 7))

    def add_many(self, values) -> None:
        """Add a batch of values with one scatter-OR over the bit words.

        Setting bits is idempotent and order-independent, so the result
        is byte-identical to an :meth:`add` loop in any order.
        """
        positions: list[int] = []
        for value in values:
            h1, h2 = _hash_pair(value)
            positions.extend((h1 + i * h2) % self.n_bits for i in range(self.n_hashes))
        if not positions:
            return
        arr = np.asarray(positions, dtype=np.int64)
        np.bitwise_or.at(
            self._bits, arr >> 3, np.left_shift(np.uint8(1), (arr & 7).astype(np.uint8))
        )

    def might_contain(self, value: str) -> bool:
        """False ⇒ definitely absent; True ⇒ possibly present."""
        for position in self._positions(value):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostic; ~0.5 at design load)."""
        return float(np.unpackbits(self._bits).sum()) / self.n_bits

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        writer.write_uvarint(self.n_bits)
        writer.write_u8(self.n_hashes)
        writer.write_bytes(self._bits.tobytes())
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        reader = BinaryReader(data)
        n_bits = reader.read_uvarint()
        n_hashes = reader.read_u8()
        n_words = (n_bits + 7) // 8
        if reader.remaining() != n_words:
            raise SerializationError(
                f"bloom payload {reader.remaining()} bytes, expected {n_words}"
            )
        bits = np.frombuffer(reader.read_bytes(n_words), dtype=np.uint8)
        return cls(n_bits, n_hashes, bits)
