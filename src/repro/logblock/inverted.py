"""Inverted index over a string column (Lucene-style, §3.2).

Maps terms to sorted posting lists of row ids.  For a *tokenized* column
each row contributes all distinct terms of its tokenized value
(full-text search over log lines; terms are lowercased by the
tokenizer).  For an untokenized column each row contributes a single
term equal to its **raw** whole value — exact-match semantics must agree
byte-for-byte with the scan path's ``==``, so no case folding happens
(SQL string equality is case-sensitive).

Serialized layout::

    term_count: uvarint
    per term:  term (len-prefixed utf-8)
               postings: delta-encoded uvarint list

Terms are written sorted, so readers can binary-search the decoded term
dictionary.  Postings are delta-encoded row ids, which compress well for
clustered terms.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable

import numpy as np

from repro.common.bitset import Bitset
from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.logblock.tokenizer import normalize_term, tokenize_unique


class InvertedIndexBuilder:
    """Accumulates term → row-id postings while rows are appended."""

    def __init__(self, tokenize: bool) -> None:
        self._tokenize = tokenize
        self._postings: dict[str, list[int]] = {}
        self._row_count = 0

    def add(self, row_id: int, value: str | None) -> None:
        """Index ``value`` for ``row_id``.  Nulls are simply absent."""
        self._row_count = max(self._row_count, row_id + 1)
        if value is None:
            return
        if self._tokenize:
            terms: Iterable[str] = tokenize_unique(value)
        else:
            terms = (value,)  # raw: exact-match must mirror scan equality
        for term in terms:
            bucket = self._postings.setdefault(term, [])
            if not bucket or bucket[-1] != row_id:
                bucket.append(row_id)

    def add_many(self, start_row_id: int, values: list) -> None:
        """Batch :meth:`add` for rows ``start_row_id ..+ len(values)``.

        Untokenized columns group rows per distinct term with one
        ``np.unique`` + stable argsort instead of a dict probe per row;
        postings come out in the same ascending row order as the
        per-row loop.  Tokenized columns keep the per-row tokenizer.
        """
        count = len(values)
        if not count:
            return
        self._row_count = max(self._row_count, start_row_id + count)
        if self._tokenize:
            for offset, value in enumerate(values):
                if value is not None:
                    self.add(start_row_id + offset, value)
            return
        arr = np.empty(count, dtype=object)
        arr[:] = values
        idx = np.flatnonzero(~np.equal(arr, None))
        if not idx.size:
            return
        ordered, inverse = np.unique(arr[idx], return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        sorted_rows = (idx[order] + start_row_id).tolist()
        counts = np.bincount(inverse, minlength=len(ordered)).tolist()
        pos = 0
        for term, term_rows in zip(ordered.tolist(), counts):
            rows = sorted_rows[pos : pos + term_rows]
            pos += term_rows
            bucket = self._postings.setdefault(term, [])
            if bucket and bucket[-1] == rows[0]:
                # The per-row path skips a row re-adding its last term.
                rows = rows[1:]
            bucket.extend(rows)

    def build(self) -> "InvertedIndex":
        terms = sorted(self._postings)
        postings = [np.asarray(self._postings[term], dtype=np.int64) for term in terms]
        return InvertedIndex(terms, postings, self._row_count, self._tokenize)


class InvertedIndex:
    """Immutable queryable inverted index."""

    def __init__(
        self,
        terms: list[str],
        postings: list[np.ndarray],
        row_count: int,
        tokenize: bool,
    ) -> None:
        if len(terms) != len(postings):
            raise ValueError("terms and postings length mismatch")
        self._terms = terms
        self._postings = postings
        self._row_count = row_count
        self._tokenize = tokenize

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def tokenized(self) -> bool:
        return self._tokenize

    @property
    def term_count(self) -> int:
        return len(self._terms)

    def terms(self) -> list[str]:
        return list(self._terms)

    def lookup(self, term: str) -> np.ndarray:
        """Row ids containing ``term`` (empty array when absent).

        Query terms are normalized only for tokenized (full-text)
        indexes, mirroring how the indexed terms were produced.
        """
        needle = normalize_term(term) if self._tokenize else term
        idx = bisect_left(self._terms, needle)
        if idx < len(self._terms) and self._terms[idx] == needle:
            return self._postings[idx]
        return np.empty(0, dtype=np.int64)

    def lookup_prefix(self, prefix: str) -> np.ndarray:
        """Row ids containing any term with the given prefix."""
        needle = normalize_term(prefix) if self._tokenize else prefix
        start = bisect_left(self._terms, needle)
        hits: list[np.ndarray] = []
        for idx in range(start, len(self._terms)):
            if not self._terms[idx].startswith(needle):
                break
            hits.append(self._postings[idx])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    def match_all(self, terms: Iterable[str]) -> Bitset:
        """Rows containing *all* the given terms (full-text AND match)."""
        result: Bitset | None = None
        for term in terms:
            rows = self.lookup(term)
            bits = Bitset.from_indices(self._row_count, rows.tolist())
            result = bits if result is None else (result & bits)
            if not result.any():
                break
        if result is None:
            return Bitset.full(self._row_count)
        return result

    def match_any(self, terms: Iterable[str]) -> Bitset:
        """Rows containing *any* of the given terms (OR match)."""
        result = Bitset(self._row_count)
        for term in terms:
            rows = self.lookup(term)
            result = result | Bitset.from_indices(self._row_count, rows.tolist())
        return result

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        writer.write_u8(1 if self._tokenize else 0)
        writer.write_uvarint(self._row_count)
        writer.write_uvarint(len(self._terms))
        for term, rows in zip(self._terms, self._postings):
            writer.write_str(term)
            writer.write_uvarint(len(rows))
            prev = 0
            for row in rows.tolist():
                writer.write_uvarint(row - prev)
                prev = row
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "InvertedIndex":
        reader = BinaryReader(data)
        tokenize = bool(reader.read_u8())
        row_count = reader.read_uvarint()
        term_count = reader.read_uvarint()
        terms: list[str] = []
        postings: list[np.ndarray] = []
        for _ in range(term_count):
            term = reader.read_str()
            n_rows = reader.read_uvarint()
            rows = np.empty(n_rows, dtype=np.int64)
            prev = 0
            for i in range(n_rows):
                prev += reader.read_uvarint()
                rows[i] = prev
            terms.append(term)
            postings.append(rows)
        return cls(terms, postings, row_count, tokenize)
