"""LogBlockWriter: rows in, one immutable packed LogBlock out.

Maps the five logical parts of Figure 4 onto pack members so that each
part can be fetched independently with ranged GETs:

* ``meta``            — part 1 (header: schema, row count, codec) plus
  part 2 (column meta: per-column SMA, index type) plus part 4 (column
  block headers: per-block row counts, SMAs, compressed sizes).
* ``idx/<column>``    — part 3, one member per indexed column.
* ``col/<c>/<b>``     — part 5, one member per (column, block), holding
  the null bitset and compressed data for that column block.

The writer is append-only; :meth:`finish` freezes the block.  LogBlocks
are immutable after packing (§3: "Each LogBlock is an immutable file and
will no longer be modified").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec import get_codec
from repro.codec.registry import DEFAULT_CODEC
from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.errors import CorruptionError, SchemaError, SerializationError
from repro.logblock.bkd import BkdIndexBuilder
from repro.logblock.inverted import InvertedIndexBuilder
from repro.logblock.column import encode_block
from repro.logblock.encode_kernels import (
    MODE_VECTORIZED,
    EncodeFallback,
    EncodeStats,
    compute_sma_range,
    encode_block_range,
    prepare_column,
)
from repro.logblock.schema import ColumnType, IndexType, TableSchema
from repro.logblock.sma import Sma, compute_sma, merge_smas
from repro.tarpack.packer import PackBuilder

META_MEMBER = "meta"
META_MAGIC = b"LGBK"
# v2: schema + SMAs (min/max/counts); v3 adds a per-column and per-block
# sum to every SMA (aggregate pushdown tier 2).  Readers accept both.
META_VERSION = 3
_LEGACY_META_VERSION = 2

DEFAULT_BLOCK_ROWS = 4096


def index_member(column: str) -> str:
    """Pack member name of a column's index."""
    return f"idx/{column}"


def bloom_member(column: str) -> str:
    """Pack member name of a column's Bloom filter."""
    return f"bloom/{column}"


def block_member(column_idx: int, block_idx: int) -> str:
    """Pack member name of one column block."""
    return f"col/{column_idx}/{block_idx}"


@dataclass(frozen=True)
class BlockHeader:
    """Column-block header (part 4): row count, SMA, stored size."""

    row_count: int
    sma: Sma
    stored_size: int


@dataclass
class LogBlockMeta:
    """Parsed ``meta`` member: everything needed to plan reads."""

    schema: TableSchema
    row_count: int
    codec_id: int
    block_rows: int
    block_row_counts: list[int]
    column_smas: list[Sma]
    # block_headers[column_index][block_index]
    block_headers: list[list[BlockHeader]] = field(default_factory=list)
    index_sizes: dict[str, int] = field(default_factory=dict)
    bloom_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def n_blocks(self) -> int:
        return len(self.block_row_counts)

    def column_sma(self, column: str) -> Sma:
        return self.column_smas[self.schema.column_index(column)]

    def block_header(self, column: str, block_idx: int) -> BlockHeader:
        return self.block_headers[self.schema.column_index(column)][block_idx]

    # -- serialization -------------------------------------------------------

    def to_bytes(self, version: int = META_VERSION) -> bytes:
        if version not in (META_VERSION, _LEGACY_META_VERSION):
            raise SerializationError(f"cannot write LogBlock meta version {version}")
        include_sum = version >= META_VERSION
        writer = BinaryWriter()
        writer.write_bytes(META_MAGIC)
        writer.write_u8(version)
        schema_bytes = self.schema.to_bytes()
        writer.write_len_prefixed(schema_bytes)
        writer.write_uvarint(self.row_count)
        writer.write_u8(self.codec_id)
        writer.write_uvarint(self.block_rows)
        writer.write_uvarint(len(self.block_row_counts))
        for count in self.block_row_counts:
            writer.write_uvarint(count)
        for col_idx in range(len(self.schema)):
            self.column_smas[col_idx].write_to(writer, include_sum=include_sum)
            headers = self.block_headers[col_idx]
            if len(headers) != len(self.block_row_counts):
                raise SerializationError("block header count mismatch")
            for header in headers:
                writer.write_uvarint(header.row_count)
                header.sma.write_to(writer, include_sum=include_sum)
                writer.write_uvarint(header.stored_size)
        writer.write_uvarint(len(self.index_sizes))
        for name in sorted(self.index_sizes):
            writer.write_str(name)
            writer.write_uvarint(self.index_sizes[name])
        writer.write_uvarint(len(self.bloom_sizes))
        for name in sorted(self.bloom_sizes):
            writer.write_str(name)
            writer.write_uvarint(self.bloom_sizes[name])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "LogBlockMeta":
        reader = BinaryReader(data)
        if reader.read_bytes(4) != META_MAGIC:
            raise CorruptionError("bad LogBlock meta magic")
        version = reader.read_u8()
        if version not in (META_VERSION, _LEGACY_META_VERSION):
            raise SerializationError(f"unsupported LogBlock meta version {version}")
        include_sum = version >= META_VERSION
        schema = TableSchema.from_bytes(reader.read_len_prefixed())
        row_count = reader.read_uvarint()
        codec_id = reader.read_u8()
        block_rows = reader.read_uvarint()
        n_blocks = reader.read_uvarint()
        block_row_counts = [reader.read_uvarint() for _ in range(n_blocks)]
        column_smas: list[Sma] = []
        block_headers: list[list[BlockHeader]] = []
        for _col_idx in range(len(schema)):
            column_smas.append(Sma.read_from(reader, include_sum=include_sum))
            headers = []
            for _block_idx in range(n_blocks):
                hdr_rows = reader.read_uvarint()
                sma = Sma.read_from(reader, include_sum=include_sum)
                stored = reader.read_uvarint()
                headers.append(BlockHeader(hdr_rows, sma, stored))
            block_headers.append(headers)
        index_sizes: dict[str, int] = {}
        for _ in range(reader.read_uvarint()):
            name = reader.read_str()
            index_sizes[name] = reader.read_uvarint()
        bloom_sizes: dict[str, int] = {}
        for _ in range(reader.read_uvarint()):
            name = reader.read_str()
            bloom_sizes[name] = reader.read_uvarint()
        return cls(
            schema=schema,
            row_count=row_count,
            codec_id=codec_id,
            block_rows=block_rows,
            block_row_counts=block_row_counts,
            column_smas=column_smas,
            block_headers=block_headers,
            index_sizes=index_sizes,
            bloom_sizes=bloom_sizes,
        )


class LogBlockWriter:
    """Builds one LogBlock from appended rows.

    Usage::

        writer = LogBlockWriter(schema)
        for row in rows:
            writer.append(row)
        blob = writer.finish()     # the packed LogBlock, ready for PUT
    """

    def __init__(
        self,
        schema: TableSchema,
        codec: str = DEFAULT_CODEC,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        validate_rows: bool = True,
        build_indexes: bool = True,
        build_blooms: bool = True,
        meta_version: int = META_VERSION,
        vectorized: bool = True,
    ) -> None:
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        self._meta_version = meta_version
        self._schema = schema
        self._codec = get_codec(codec)
        self._block_rows = block_rows
        self._validate = validate_rows
        self._build_indexes = build_indexes
        self._build_blooms = build_blooms
        # Columnar encode kernels (byte-identical to the interpreted
        # encoder); False forces the per-value reference path.
        self._vectorized = vectorized
        self._encode_stats = EncodeStats()
        self._columns: list[list] = [[] for _ in schema.columns]
        self._row_count = 0
        self._finished = False
        self._index_builders: dict[str, InvertedIndexBuilder | BkdIndexBuilder] = {}
        if build_indexes:
            for col in schema.columns:
                if col.index is IndexType.INVERTED:
                    self._index_builders[col.name] = InvertedIndexBuilder(tokenize=col.tokenize)
                elif col.index is IndexType.BKD:
                    is_float = col.ctype is ColumnType.FLOAT64
                    self._index_builders[col.name] = BkdIndexBuilder(is_float=is_float)

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def encode_stats(self) -> EncodeStats:
        """Values encoded per mode + fallback reasons (filled by finish)."""
        return self._encode_stats

    def append(self, row: dict) -> None:
        """Append one row (a column-name → value mapping)."""
        if self._finished:
            raise SerializationError("LogBlockWriter already finished")
        if self._validate:
            # Missing columns are nulls: rows ingested before an additive
            # DDL must still archive under the evolved schema.
            self._schema.validate_row(row, allow_missing=True)
        row_id = self._row_count
        for col_idx, col in enumerate(self._schema.columns):
            value = row.get(col.name)
            self._columns[col_idx].append(value)
            builder = self._index_builders.get(col.name)
            if builder is not None:
                builder.add(row_id, value)
        self._row_count += 1

    def append_many(self, rows: list[dict]) -> None:
        """Append a batch of rows.

        In vectorized mode the batch is transposed once into per-column
        value lists, batch-validated, and fed to the index builders'
        ``add_many`` hooks — replacing the per-row × per-column
        ``row.get`` loop.  Unvalidated writers keep the per-row path
        (the type gate doubles as the kernels' safety check).
        """
        if not rows:
            return
        if not (self._vectorized and self._validate):
            for row in rows:
                self.append(row)
            return
        if self._finished:
            raise SerializationError("LogBlockWriter already finished")
        columns = {
            col.name: [row.get(col.name) for row in rows]
            for col in self._schema.columns
        }
        self._ingest_columns(columns, len(rows))

    def append_columns(self, columns: dict[str, list]) -> None:
        """Columnar ingest: one equal-length value list per column name.

        Missing columns are all-null (mirroring ``allow_missing`` row
        appends); unknown names raise :class:`SchemaError`.  The result
        is byte-identical to appending the equivalent rows one by one.
        """
        if self._finished:
            raise SerializationError("LogBlockWriter already finished")
        if not columns:
            raise SchemaError("append_columns requires at least one column")
        for name in columns:
            self._schema.column_index(name)  # raises on unknown columns
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise SchemaError(
                f"append_columns requires equal-length columns, got {sorted(lengths)}"
            )
        count = lengths.pop()
        if not count:
            return
        full = {
            col.name: list(columns[col.name]) if col.name in columns else [None] * count
            for col in self._schema.columns
        }
        self._ingest_columns(full, count)

    def _ingest_columns(self, columns: dict[str, list], count: int) -> None:
        if self._validate:
            self._schema.validate_columns(columns)
        start_row = self._row_count
        for col_idx, col in enumerate(self._schema.columns):
            values = columns[col.name]
            self._columns[col_idx].extend(values)
            builder = self._index_builders.get(col.name)
            if builder is None:
                continue
            if self._validate:
                builder.add_many(start_row, values)
            else:
                for offset, value in enumerate(values):
                    builder.add(start_row + offset, value)
        self._row_count += count

    def finish(self) -> bytes:
        """Freeze the writer and return the packed LogBlock bytes."""
        if self._finished:
            raise SerializationError("LogBlockWriter already finished")
        self._finished = True

        n_blocks = -(-self._row_count // self._block_rows) if self._row_count else 0
        block_row_counts = [
            min(self._block_rows, self._row_count - b * self._block_rows) for b in range(n_blocks)
        ]

        pack = PackBuilder()
        column_smas: list[Sma] = []
        block_headers: list[list[BlockHeader]] = []
        encoded_blocks: list[tuple[str, bytes]] = []

        for col_idx, col in enumerate(self._schema.columns):
            values = self._columns[col_idx]
            prep = None
            prep_reason: str | None = None
            if self._vectorized and n_blocks:
                try:
                    prep = prepare_column(values, col.ctype, trusted=self._validate)
                except EncodeFallback as exc:
                    prep_reason = exc.reason
            headers: list[BlockHeader] = []
            block_smas: list[Sma] = []
            for block_idx in range(n_blocks):
                start = block_idx * self._block_rows
                stop = start + block_row_counts[block_idx]
                if prep is not None:
                    payload, mode, reason = encode_block_range(prep, start, stop)
                    sma, sma_reason = compute_sma_range(prep, start, stop)
                    if mode == MODE_VECTORIZED:
                        self._encode_stats.rows_vectorized += stop - start
                    else:
                        self._encode_stats.rows_interpreted += stop - start
                    if reason is not None:
                        self._encode_stats.note_fallback(f"{col.name}: {reason}")
                    if sma_reason is not None:
                        self._encode_stats.note_fallback(f"{col.name}: {sma_reason}")
                else:
                    chunk = values[start:stop]
                    payload = encode_block(chunk, col.ctype)
                    sma = compute_sma(chunk, col.ctype)
                    self._encode_stats.rows_interpreted += stop - start
                    if prep_reason is not None:
                        self._encode_stats.note_fallback(f"{col.name}: {prep_reason}")
                compressed = self._codec.compress(payload)
                headers.append(BlockHeader(stop - start, sma, len(compressed)))
                block_smas.append(sma)
                encoded_blocks.append((block_member(col_idx, block_idx), compressed))
            column_smas.append(merge_smas(block_smas) if block_smas else compute_sma([], col.ctype))
            block_headers.append(headers)

        index_sizes: dict[str, int] = {}
        index_payloads: list[tuple[str, bytes]] = []
        for name, builder in self._index_builders.items():
            index = builder.build()
            payload = self._codec.compress(index.to_bytes())
            index_sizes[name] = len(payload)
            index_payloads.append((index_member(name), payload))

        # Bloom filters for exact-match string columns: a cheap
        # "definitely absent" check that skips fetching the (much
        # larger) inverted index on needle queries.  Bloom bits are
        # near-incompressible, so they are stored raw.
        bloom_sizes: dict[str, int] = {}
        bloom_payloads: list[tuple[str, bytes]] = []
        if self._build_indexes and self._build_blooms:
            from repro.logblock.bloom import BloomFilter

            for col_idx, col in enumerate(self._schema.columns):
                if not (col.ctype.is_string and not col.tokenize
                        and col.index is IndexType.INVERTED):
                    continue
                # Dedupe once: re-adding a duplicate sets the exact same
                # bits, so hashing each distinct value exactly once
                # yields byte-identical filters at a fraction of the
                # hash work (the filter was already *sized* on the
                # distinct count).
                distinct = {v for v in self._columns[col_idx] if v is not None}
                if not distinct:
                    continue
                bloom = BloomFilter.for_items(len(distinct))
                bloom.add_many(distinct)
                payload = bloom.to_bytes()
                bloom_sizes[col.name] = len(payload)
                bloom_payloads.append((bloom_member(col.name), payload))

        meta = LogBlockMeta(
            schema=self._schema,
            row_count=self._row_count,
            codec_id=self._codec.codec_id,
            block_rows=self._block_rows,
            block_row_counts=block_row_counts,
            column_smas=column_smas,
            block_headers=block_headers,
            index_sizes=index_sizes,
            bloom_sizes=bloom_sizes,
        )

        pack.add(META_MEMBER, meta.to_bytes(version=self._meta_version))
        for name, payload in bloom_payloads:
            pack.add(name, payload)
        for name, payload in index_payloads:
            pack.add(name, payload)
        for name, payload in encoded_blocks:
            pack.add(name, payload)
        return pack.build()
