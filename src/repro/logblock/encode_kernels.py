"""Vectorized write-side encode kernels (builder hot loop).

PR 7 compiled the *scan* side into numpy block kernels; this module is
the same recipe applied to the archive encode path: the per-value
python loops in :func:`repro.logblock.column.encode_block` and
:func:`repro.logblock.sma.compute_sma` become columnar numpy kernels
with **byte-identical** output.  BtrLog's observation motivates the
work: in cloud log systems the CPU spent producing log bytes — not the
device — is the bottleneck.

Byte-identity is the contract, checked three ways:

* construction — every kernel mirrors the interpreted encoder's exact
  byte layout (same null bitsets, same dictionary sort, same LEB128
  codes, same sequential float accumulation for SMA sums);
* fallback — shapes whose vectorized result could diverge (NaN or
  signed-zero float SMAs, ints stored in FLOAT64 columns, plain-string
  blocks, unsupported value types) raise :class:`EncodeFallback` or
  return the interpreted result, exactly like ``VectorizeFallback`` on
  the scan side;
* tests — differential + hypothesis suites compare whole packed
  LogBlocks member-by-member across both modes.

A column is *prepared* once (type gate, null mask, typed vector), then
every block slice encodes from the shared arrays — the per-block cost
is O(1) numpy calls instead of O(rows) python bytecode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.bitset import Bitset
from repro.common.bytesio import BinaryWriter
from repro.logblock.column import (
    _DICT_MAX_CARDINALITY_FRACTION,
    _STRING_DICT,
    encode_block,
)
from repro.logblock.schema import ColumnType
from repro.logblock.sma import Sma, compute_sma, compute_sma_arrays

MODE_VECTORIZED = "vectorized"
MODE_INTERPRETED = "interpreted"


class EncodeFallback(Exception):
    """A column shape the encode kernels do not cover.

    Raising this is always *safe*: the caller re-encodes the column with
    the interpreted oracle, which by definition produces the canonical
    bytes (and surfaces the canonical error for invalid values, e.g. an
    out-of-int64 integer).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class EncodeStats:
    """Per-writer accounting: column values encoded per mode.

    ``rows_vectorized`` / ``rows_interpreted`` count *column cells*
    (one per row per column block), mirroring how the scan side counts
    per-leaf evaluated rows; ``fallbacks`` maps reason → occurrence
    count (one per column block that fell back).
    """

    rows_vectorized: int = 0
    rows_interpreted: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)

    def note_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def merge(self, other: "EncodeStats") -> None:
        self.rows_vectorized += other.rows_vectorized
        self.rows_interpreted += other.rows_interpreted
        for reason, count in other.fallbacks.items():
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count


@dataclass
class PreparedColumn:
    """One column transposed into numpy form, shared by all its blocks."""

    ctype: ColumnType
    values: list  # original python values — oracle fallback + plain strings
    null_mask: np.ndarray  # bool, one per row
    vector: np.ndarray  # int64/float64/bool vector; object array for STRING
    # SMA fast path eligibility is a column-level property (e.g. a
    # FLOAT64 column holding python ints must keep the oracle's
    # value-kind-preserving min/max); per-block hazards (NaN, -0.0) are
    # detected inside compute_sma_range.
    sma_vectorized: bool = True
    sma_reason: str | None = None


def encode_uvarint_array(values: np.ndarray) -> bytes:
    """LEB128-encode a vector of unsigned ints, byte-identical to a
    per-value :meth:`BinaryWriter.write_uvarint` loop."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    if int(values.max()) < 0x80:
        # Dictionary codes are < 128 for every dict of ≤ 127 entries —
        # the common case — so the whole code stream is one cast.
        return values.astype(np.uint8).tobytes()
    n = values.size
    n_bytes = np.ones(n, dtype=np.int64)
    rest = values >> np.uint64(7)
    while rest.any():
        n_bytes += rest > 0
        rest >>= np.uint64(7)
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(n_bytes[:-1], out=offsets[1:])
    out = np.zeros(int(offsets[-1] + n_bytes[-1]), dtype=np.uint8)
    remaining = values.copy()
    active = np.ones(n, dtype=bool)
    byte_idx = 0
    while active.any():
        chunk = remaining[active]
        more = chunk >= 0x80
        out[offsets[active] + byte_idx] = (
            chunk & np.uint64(0x7F)
        ).astype(np.uint8) | (more.astype(np.uint8) << 7)
        remaining[active] = chunk >> np.uint64(7)
        active &= remaining > 0
        byte_idx += 1
    return out.tobytes()


def _object_array(values: list) -> np.ndarray:
    # np.array() would try to build multi-dimensional arrays from
    # sequence-valued cells; pre-sizing keeps the array strictly 1-D.
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def prepare_column(
    values: list, ctype: ColumnType, trusted: bool = False
) -> PreparedColumn:
    """Transpose one column into numpy form, or raise :class:`EncodeFallback`.

    ``trusted=True`` skips the per-value type gate — callers that
    schema-validated every appended row (the writer's default) already
    guarantee the exact type set the kernels assume.
    """
    obj = _object_array(values)
    null_mask = np.equal(obj, None)
    # One C-driven sweep collecting the exact types present.  The gate
    # is deliberately stricter than the schema validator (which also
    # accepts int/str/bool *subclasses*): a subclassed value falls back
    # to the oracle rather than risking a representation the kernels
    # did not anticipate.  Falling back is always byte-safe.
    vtypes = set(map(type, values))
    vtypes.discard(type(None))

    if ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
        if not trusted and not vtypes <= {int}:
            raise EncodeFallback("non-int value")
        filled = obj.copy()
        filled[null_mask] = 0
        try:
            vector = filled.astype(np.int64)
        except (OverflowError, TypeError, ValueError) as exc:
            # The oracle's np.array(..., dtype=int64) raises the same
            # OverflowError — falling back surfaces the canonical one.
            raise EncodeFallback("int64 overflow") from exc
        return PreparedColumn(ctype, values, null_mask, vector)

    if ctype is ColumnType.FLOAT64:
        if not trusted and not vtypes <= {int, float}:
            raise EncodeFallback("non-float value")
        filled = obj.copy()
        filled[null_mask] = 0.0
        try:
            vector = filled.astype(np.float64)
        except (OverflowError, TypeError, ValueError) as exc:
            raise EncodeFallback("float64 overflow") from exc
        prep = PreparedColumn(ctype, values, null_mask, vector)
        if not vtypes <= {float}:
            # The oracle SMA keeps the *original* min/max objects, so a
            # python int min serializes as KIND_INT; the float64 vector
            # cannot reproduce that.  Encoding is unaffected (both
            # paths store float64 bits).
            prep.sma_vectorized = False
            prep.sma_reason = "float column holds ints (sma)"
        return prep

    if ctype is ColumnType.BOOL:
        if not trusted and not vtypes <= {bool}:
            raise EncodeFallback("non-bool value")
        # bool(None) is False, matching the oracle's placeholder.
        return PreparedColumn(ctype, values, null_mask, obj.astype(bool))

    if ctype is ColumnType.STRING:
        if not trusted and not vtypes <= {str}:
            raise EncodeFallback("non-str value")
        return PreparedColumn(ctype, values, null_mask, obj)

    raise EncodeFallback(f"unsupported column type {ctype}")


def encode_block_range(
    prep: PreparedColumn, start: int, stop: int
) -> tuple[bytes, str, str | None]:
    """Encode rows ``[start, stop)`` of a prepared column.

    Returns ``(payload, mode, fallback_reason)`` where ``payload`` is
    byte-identical to ``encode_block(values[start:stop], ctype)``.
    """
    nulls = prep.null_mask[start:stop]
    writer = BinaryWriter()
    writer.write_len_prefixed(Bitset.from_bool_array(nulls).to_bytes())

    if prep.ctype in (ColumnType.INT64, ColumnType.TIMESTAMP, ColumnType.FLOAT64):
        writer.write_bytes(prep.vector[start:stop].tobytes())
        return writer.getvalue(), MODE_VECTORIZED, None

    if prep.ctype is ColumnType.BOOL:
        writer.write_len_prefixed(
            Bitset.from_bool_array(prep.vector[start:stop]).to_bytes()
        )
        return writer.getvalue(), MODE_VECTORIZED, None

    # STRING: vectorize the DICT shape (np.unique assigns codes with the
    # oracle's exact sorted-distinct order); PLAIN blocks fall back.
    chunk = prep.vector[start:stop]
    present = chunk[~nulls]
    n_rows = stop - start
    if present.size and n_rows >= 16:
        ordered, inverse = np.unique(present, return_inverse=True)
        if len(ordered) <= _DICT_MAX_CARDINALITY_FRACTION * present.size:
            writer.write_u8(_STRING_DICT)
            writer.write_uvarint(len(ordered))
            for value in ordered.tolist():
                writer.write_str(value)
            # Code 0 is reserved for null; real codes are shifted by one.
            codes = np.zeros(n_rows, dtype=np.uint64)
            codes[~nulls] = inverse.astype(np.uint64) + 1
            writer.write_bytes(encode_uvarint_array(codes))
            return writer.getvalue(), MODE_VECTORIZED, None
    payload = encode_block(prep.values[start:stop], prep.ctype)
    return payload, MODE_INTERPRETED, "plain string block"


def compute_sma_range(
    prep: PreparedColumn, start: int, stop: int
) -> tuple[Sma, str | None]:
    """SMA of rows ``[start, stop)``: array fast path, oracle fallback."""
    if prep.sma_vectorized:
        sma = compute_sma_arrays(
            prep.vector[start:stop], prep.null_mask[start:stop], prep.ctype
        )
        if sma is not None:
            return sma, None
        reason = "float sma needs sequential accumulation"
    else:
        reason = prep.sma_reason or "sma fallback"
    return compute_sma(prep.values[start:stop], prep.ctype), reason
