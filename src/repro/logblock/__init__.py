"""LogBlock: read-optimized, full-column-indexed columnar format (§3.2)."""

from repro.logblock.bkd import BkdIndex, BkdIndexBuilder
from repro.logblock.inverted import InvertedIndex, InvertedIndexBuilder
from repro.logblock.pruning import (
    EqPredicate,
    InPredicate,
    MatchPredicate,
    PruneStats,
    RangePredicate,
    evaluate_predicates,
)
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import (
    ColumnSpec,
    ColumnType,
    IndexType,
    TableSchema,
    request_log_schema,
)
from repro.logblock.sma import Sma, compute_sma, merge_smas
from repro.logblock.writer import LogBlockMeta, LogBlockWriter

__all__ = [
    "BkdIndex",
    "BkdIndexBuilder",
    "InvertedIndex",
    "InvertedIndexBuilder",
    "EqPredicate",
    "InPredicate",
    "MatchPredicate",
    "PruneStats",
    "RangePredicate",
    "evaluate_predicates",
    "LogBlockReader",
    "ColumnSpec",
    "ColumnType",
    "IndexType",
    "TableSchema",
    "request_log_schema",
    "Sma",
    "compute_sma",
    "merge_smas",
    "LogBlockMeta",
    "LogBlockWriter",
]
