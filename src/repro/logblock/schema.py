"""Table schemas for LogBlock.

A LogBlock is *self-contained* (§3.2): the complete table schema is
serialized into the block header so a block "can still be resolved after
being renamed or moved".  The schema also drives which index type each
column gets — inverted index for strings, BKD tree for numerics — since
the paper indexes *all* columns by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.errors import SchemaError


class ColumnType(enum.IntEnum):
    """Physical column types supported by the LogBlock format."""

    INT64 = 0
    FLOAT64 = 1
    STRING = 2
    BOOL = 3
    TIMESTAMP = 4  # stored as int64 microseconds since the epoch

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.TIMESTAMP)

    @property
    def is_string(self) -> bool:
        return self is ColumnType.STRING


class IndexType(enum.IntEnum):
    """Per-column index kind (§3.2: inverted for strings, BKD for numbers)."""

    NONE = 0
    INVERTED = 1
    BKD = 2


def default_index_for(column_type: ColumnType) -> IndexType:
    """The paper's default: index every column by its natural index type."""
    if column_type.is_string:
        return IndexType.INVERTED
    if column_type.is_numeric or column_type is ColumnType.BOOL:
        return IndexType.BKD
    return IndexType.NONE


@dataclass(frozen=True)
class ColumnSpec:
    """Definition of one column.

    Attributes:
        name: column name (unique within a schema).
        ctype: physical type.
        index: index to build for this column.  Defaults to the natural
            index for the type, matching the paper's full-column indexing.
        tokenize: for STRING columns, whether the inverted index tokenizes
            values into terms (full-text search) or indexes whole values
            (exact-match, e.g. an ``ip`` column).
    """

    name: str
    ctype: ColumnType
    index: IndexType | None = None
    tokenize: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.index is None:
            object.__setattr__(self, "index", default_index_for(self.ctype))
        if self.index is IndexType.INVERTED and not self.ctype.is_string:
            raise SchemaError(f"inverted index requires STRING column, got {self.ctype.name}")
        if self.index is IndexType.BKD and self.ctype.is_string:
            raise SchemaError("BKD index is for numeric/bool columns")
        if self.tokenize and not self.ctype.is_string:
            raise SchemaError("tokenize applies only to STRING columns")


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of columns describing one log table."""

    name: str
    columns: tuple[ColumnSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.columns:
            raise SchemaError("schema must have at least one column")
        names = [col.name for col in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema {self.name!r}")

    def column(self, name: str) -> ColumnSpec:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no such column: {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"no such column: {name!r} in table {self.name!r}")

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def validate_row(self, row: dict, allow_missing: bool = False) -> None:
        """Raise :class:`SchemaError` if ``row`` does not match the schema.

        ``allow_missing=True`` treats absent columns as nulls — used by
        the data builder so rows ingested before an additive DDL still
        archive cleanly under the evolved schema.
        """
        for col in self.columns:
            if col.name not in row:
                if allow_missing:
                    continue
                raise SchemaError(f"row missing column {col.name!r}")
            value = row[col.name]
            if value is None:
                continue
            if col.ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
                if not isinstance(value, int) or isinstance(value, bool):
                    raise SchemaError(f"column {col.name!r} expects int, got {type(value)}")
            elif col.ctype is ColumnType.FLOAT64:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SchemaError(f"column {col.name!r} expects float, got {type(value)}")
            elif col.ctype is ColumnType.STRING:
                if not isinstance(value, str):
                    raise SchemaError(f"column {col.name!r} expects str, got {type(value)}")
            elif col.ctype is ColumnType.BOOL:
                if not isinstance(value, bool):
                    raise SchemaError(f"column {col.name!r} expects bool, got {type(value)}")

    def validate_columns(self, columns: dict[str, list]) -> None:
        """Columnar counterpart of :meth:`validate_row`.

        ``columns`` maps column name → value list; absent columns are
        all-null.  Same checks and messages as the per-row validator,
        raised on the first offending value in column-major order.
        """
        for col in self.columns:
            values = columns.get(col.name)
            if values is None:
                continue
            # Fast accept: one C-driven sweep collecting the exact types
            # present.  Exact types are a *subset* of what the precise
            # loops below accept (they also take int/float/str/bool
            # subclasses), so short-circuiting acceptance here never
            # changes the verdict — mixed or subclassed columns just
            # take the slow loop.
            vtypes = set(map(type, values))
            vtypes.discard(type(None))
            if col.ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
                if vtypes <= {int}:
                    continue
            elif col.ctype is ColumnType.FLOAT64:
                if vtypes <= {int, float}:
                    continue
            elif col.ctype is ColumnType.STRING:
                if vtypes <= {str}:
                    continue
            elif col.ctype is ColumnType.BOOL:
                if vtypes <= {bool}:
                    continue
            if col.ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
                for value in values:
                    if value is not None and (
                        not isinstance(value, int) or isinstance(value, bool)
                    ):
                        raise SchemaError(
                            f"column {col.name!r} expects int, got {type(value)}"
                        )
            elif col.ctype is ColumnType.FLOAT64:
                for value in values:
                    if value is not None and (
                        not isinstance(value, (int, float)) or isinstance(value, bool)
                    ):
                        raise SchemaError(
                            f"column {col.name!r} expects float, got {type(value)}"
                        )
            elif col.ctype is ColumnType.STRING:
                for value in values:
                    if value is not None and not isinstance(value, str):
                        raise SchemaError(
                            f"column {col.name!r} expects str, got {type(value)}"
                        )
            elif col.ctype is ColumnType.BOOL:
                for value in values:
                    if value is not None and not isinstance(value, bool):
                        raise SchemaError(
                            f"column {col.name!r} expects bool, got {type(value)}"
                        )

    # -- serialization (embedded in every LogBlock header) -------------------

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        writer.write_str(self.name)
        writer.write_uvarint(len(self.columns))
        for col in self.columns:
            writer.write_str(col.name)
            writer.write_u8(int(col.ctype))
            writer.write_u8(int(col.index))  # type: ignore[arg-type]
            writer.write_u8(1 if col.tokenize else 0)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "TableSchema":
        reader = BinaryReader(data)
        schema = cls.read_from(reader)
        return schema

    @classmethod
    def read_from(cls, reader: BinaryReader) -> "TableSchema":
        name = reader.read_str()
        count = reader.read_uvarint()
        columns = []
        for _ in range(count):
            col_name = reader.read_str()
            ctype = ColumnType(reader.read_u8())
            index = IndexType(reader.read_u8())
            tokenize = bool(reader.read_u8())
            columns.append(ColumnSpec(col_name, ctype, index, tokenize))
        return cls(name=name, columns=tuple(columns))


def request_log_schema() -> TableSchema:
    """The paper's running example table (§5.1 sample SQL).

    ``SELECT log FROM request_log WHERE tenant_id = ... AND ts >= ... AND
    ip = '192.168.0.1' AND latency >= 100 AND fail = 'false'``
    """
    return TableSchema(
        name="request_log",
        columns=(
            ColumnSpec("tenant_id", ColumnType.INT64),
            ColumnSpec("ts", ColumnType.TIMESTAMP),
            ColumnSpec("ip", ColumnType.STRING, IndexType.INVERTED, tokenize=False),
            ColumnSpec("api", ColumnType.STRING, IndexType.INVERTED, tokenize=False),
            ColumnSpec("latency", ColumnType.INT64),
            ColumnSpec("fail", ColumnType.BOOL),
            ColumnSpec("log", ColumnType.STRING, IndexType.INVERTED, tokenize=True),
        ),
    )
