"""BKD-style numeric index (§3.2: "BKD tree index ... for numerical type").

Lucene's BKD tree for one dimension degenerates to a sorted
block-structured value index: points (value, row_id) are sorted by value
and packed into fixed-size leaf blocks; an in-memory array of per-leaf
(min, max) lets range queries binary-search to the first candidate leaf
and scan only leaves whose ranges intersect the query.  We implement
exactly that — it supports the paper's equality and range predicates on
numeric columns (``latency >= 100``, ``ts BETWEEN ...``) in
O(log L + hits).

Values are stored as int64 (timestamps, ints, bools) or float64;
NaN-free by construction (nulls are not indexed).
"""

from __future__ import annotations

import numpy as np

from repro.common.bitset import Bitset
from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.errors import SerializationError

DEFAULT_LEAF_SIZE = 512


class BkdIndexBuilder:
    """Accumulates (row_id, value) points for one numeric column."""

    def __init__(self, is_float: bool, leaf_size: int = DEFAULT_LEAF_SIZE) -> None:
        if leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._is_float = is_float
        self._leaf_size = leaf_size
        self._rows: list[int] = []
        self._values: list[float] = []
        self._row_count = 0

    def add(self, row_id: int, value: int | float | bool | None) -> None:
        self._row_count = max(self._row_count, row_id + 1)
        if value is None:
            return
        self._rows.append(row_id)
        self._values.append(float(value) if self._is_float else int(value))

    def add_many(self, start_row_id: int, values: list) -> None:
        """Batch :meth:`add` for rows ``start_row_id ..+ len(values)``.

        Builds the same index bytes as the per-row loop (points keep
        row order, so the stable value sort in :meth:`build` ties
        identically); nulls still count toward the row count without
        contributing points.
        """
        count = len(values)
        if not count:
            return
        self._row_count = max(self._row_count, start_row_id + count)
        arr = np.empty(count, dtype=object)
        arr[:] = values
        idx = np.flatnonzero(~np.equal(arr, None))
        if not idx.size:
            return
        present = arr[idx]
        try:
            converted = present.astype(np.float64 if self._is_float else np.int64)
        except (OverflowError, TypeError, ValueError):
            # Defer conversion errors to build(), exactly where the
            # per-row path would surface them.
            for offset, value in zip(idx.tolist(), present.tolist()):
                self.add(start_row_id + offset, value)
            return
        self._rows.extend((idx + start_row_id).tolist())
        self._values.extend(converted.tolist())

    def build(self) -> "BkdIndex":
        dtype = np.float64 if self._is_float else np.int64
        values = np.asarray(self._values, dtype=dtype)
        rows = np.asarray(self._rows, dtype=np.int64)
        order = np.argsort(values, kind="stable")
        return BkdIndex(
            values=values[order],
            rows=rows[order],
            row_count=self._row_count,
            is_float=self._is_float,
            leaf_size=self._leaf_size,
        )


class BkdIndex:
    """Immutable 1-D BKD index supporting equality and range lookup."""

    def __init__(
        self,
        values: np.ndarray,
        rows: np.ndarray,
        row_count: int,
        is_float: bool,
        leaf_size: int = DEFAULT_LEAF_SIZE,
    ) -> None:
        if len(values) != len(rows):
            raise ValueError("values and rows length mismatch")
        self._values = values
        self._rows = rows
        self._row_count = row_count
        self._is_float = is_float
        self._leaf_size = leaf_size
        # Per-leaf (min, max) built eagerly; tiny relative to the points.
        n_leaves = -(-len(values) // leaf_size) if len(values) else 0
        self._leaf_min = np.array(
            [values[i * leaf_size] for i in range(n_leaves)],
            dtype=values.dtype if len(values) else np.int64,
        )
        self._leaf_max = np.array(
            [values[min((i + 1) * leaf_size, len(values)) - 1] for i in range(n_leaves)],
            dtype=values.dtype if len(values) else np.int64,
        )

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def point_count(self) -> int:
        return len(self._values)

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_min)

    def min_value(self):
        return self._values[0].item() if len(self._values) else None

    def max_value(self):
        return self._values[-1].item() if len(self._values) else None

    # -- queries ---------------------------------------------------------

    def range_rows(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row ids whose value lies in the given (possibly open) interval."""
        if not len(self._values):
            return np.empty(0, dtype=np.int64)
        side_lo = "left" if low_inclusive else "right"
        side_hi = "right" if high_inclusive else "left"
        start = 0 if low is None else int(np.searchsorted(self._values, low, side=side_lo))
        end = (
            len(self._values)
            if high is None
            else int(np.searchsorted(self._values, high, side=side_hi))
        )
        if start >= end:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._rows[start:end])

    def eq_rows(self, value) -> np.ndarray:
        """Row ids whose value equals ``value``."""
        return self.range_rows(low=value, high=value)

    def range_bitset(self, low=None, high=None, low_inclusive=True, high_inclusive=True) -> Bitset:
        rows = self.range_rows(low, high, low_inclusive, high_inclusive)
        return Bitset.from_indices(self._row_count, rows.tolist())

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        writer.write_u8(1 if self._is_float else 0)
        writer.write_uvarint(self._row_count)
        writer.write_uvarint(self._leaf_size)
        writer.write_uvarint(len(self._values))
        writer.write_bytes(self._values.tobytes())
        writer.write_bytes(self._rows.astype(np.int64).tobytes())
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BkdIndex":
        reader = BinaryReader(data)
        is_float = bool(reader.read_u8())
        row_count = reader.read_uvarint()
        leaf_size = reader.read_uvarint()
        n_points = reader.read_uvarint()
        dtype = np.float64 if is_float else np.int64
        values = np.frombuffer(reader.read_bytes(n_points * 8), dtype=dtype).copy()
        rows = np.frombuffer(reader.read_bytes(n_points * 8), dtype=np.int64).copy()
        if reader.remaining():
            raise SerializationError("trailing bytes after BKD index")
        return cls(values, rows, row_count, is_float, leaf_size)
