"""Log-line tokenizer for full-text inverted indexing.

The paper adds "an inverted index based on Lucene" to LogBlock.  We use a
Lucene-StandardAnalyzer-flavoured tokenizer suited to machine logs:
alphanumeric runs (plus a few intra-token connectors common in log
fields, like ``.`` in IPs/hostnames and ``-``/``_`` in identifiers) are
emitted lowercased.  Tokenization is deterministic and shared between
write (index build) and read (query term extraction), which is the only
property the experiments rely on.
"""

from __future__ import annotations

import re

# A token is a run of word characters possibly joined by . - _ : /
# (so "192.168.0.1", "user_id", "GET:/api/v1" survive as useful units),
# but trailing/leading connectors are trimmed.
_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:[._\-:/][A-Za-z0-9]+)*")

MAX_TOKEN_LENGTH = 128


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase index terms.

    Overlong tokens are truncated to :data:`MAX_TOKEN_LENGTH` so a single
    pathological log line cannot bloat the term dictionary.
    """
    return [match.group(0).lower()[:MAX_TOKEN_LENGTH] for match in _TOKEN_RE.finditer(text)]


def tokenize_unique(text: str) -> set[str]:
    """Distinct terms of ``text`` (postings store each doc once per term)."""
    return set(tokenize(text))


def normalize_term(term: str) -> str:
    """Normalize a query term the same way indexed terms were normalized."""
    return term.lower()[:MAX_TOKEN_LENGTH]
