"""Small Materialized Aggregates (SMA) — per-column and per-block min/max.

§3.2: "We also generate a Small Materialized Aggregates (SMA) for each
column, including maximum and minimum values for skipping data blocks."
We additionally keep row and null counts, which the planner uses for
short-circuiting (an all-null block can never satisfy a comparison),
and — since meta format v3 — the sum of numeric columns, which lets the
aggregate pushdown answer SUM/AVG for a fully matched block without
touching its column blocks.  ``sum_value`` is ``None`` for non-numeric
columns and for SMAs deserialized from legacy (v2) LogBlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.logblock.schema import ColumnType

# Value kinds stored in the serialized SMA
_KIND_NONE = 0
_KIND_INT = 1
_KIND_FLOAT = 2
_KIND_STR = 3
_KIND_BOOL = 4


@dataclass(frozen=True)
class Sma:
    """min/max/row-count/null-count summary of one column (or block)."""

    min_value: int | float | str | bool | None
    max_value: int | float | str | bool | None
    row_count: int
    null_count: int
    # Sum over the non-null values of a numeric column; None when the
    # column is not numeric or the block predates the v3 meta format.
    sum_value: int | float | None = None

    @property
    def all_null(self) -> bool:
        return self.row_count > 0 and self.null_count == self.row_count

    # -- pruning -----------------------------------------------------------

    def may_contain_eq(self, value) -> bool:
        """Whether some row *might* equal ``value`` (false ⇒ safe to skip)."""
        if self.all_null or self.min_value is None:
            return False
        return self.min_value <= value <= self.max_value

    def may_contain_range(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Whether rows might fall in the interval [low, high]."""
        if self.all_null or self.min_value is None:
            return False
        if low is not None:
            if low_inclusive:
                if self.max_value < low:
                    return False
            elif self.max_value <= low:
                return False
        if high is not None:
            if high_inclusive:
                if self.min_value > high:
                    return False
            elif self.min_value >= high:
                return False
        return True

    # -- serialization -------------------------------------------------------

    def write_to(self, writer: BinaryWriter, include_sum: bool = True) -> None:
        writer.write_uvarint(self.row_count)
        writer.write_uvarint(self.null_count)
        _write_value(writer, self.min_value)
        _write_value(writer, self.max_value)
        if include_sum:
            _write_value(writer, self.sum_value)

    @classmethod
    def read_from(cls, reader: BinaryReader, include_sum: bool = True) -> "Sma":
        row_count = reader.read_uvarint()
        null_count = reader.read_uvarint()
        min_value = _read_value(reader)
        max_value = _read_value(reader)
        sum_value = _read_value(reader) if include_sum else None
        return cls(min_value, max_value, row_count, null_count, sum_value)

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        self.write_to(writer)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Sma":
        return cls.read_from(BinaryReader(data))


def _write_value(writer: BinaryWriter, value) -> None:
    if value is None:
        writer.write_u8(_KIND_NONE)
    elif isinstance(value, bool):
        writer.write_u8(_KIND_BOOL)
        writer.write_u8(1 if value else 0)
    elif isinstance(value, int):
        writer.write_u8(_KIND_INT)
        writer.write_i64(value)
    elif isinstance(value, float):
        writer.write_u8(_KIND_FLOAT)
        writer.write_f64(value)
    elif isinstance(value, str):
        writer.write_u8(_KIND_STR)
        writer.write_str(value)
    else:
        raise TypeError(f"unsupported SMA value type: {type(value)}")


def _read_value(reader: BinaryReader):
    kind = reader.read_u8()
    if kind == _KIND_NONE:
        return None
    if kind == _KIND_BOOL:
        return bool(reader.read_u8())
    if kind == _KIND_INT:
        return reader.read_i64()
    if kind == _KIND_FLOAT:
        return reader.read_f64()
    if kind == _KIND_STR:
        return reader.read_str()
    raise ValueError(f"unknown SMA value kind {kind}")


def compute_sma(values: Iterable, ctype: ColumnType) -> Sma:
    """Compute the SMA of a column (or block) of python values.

    ``None`` entries are nulls and excluded from min/max (and the sum).
    Bools compare as ints, matching the storage encoding.  The sum is
    only maintained for numeric columns (INT64/FLOAT64/TIMESTAMP).
    """
    numeric = ctype in (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.TIMESTAMP)
    min_value = None
    max_value = None
    row_count = 0
    null_count = 0
    total = 0 if ctype is not ColumnType.FLOAT64 else 0.0
    for value in values:
        row_count += 1
        if value is None:
            null_count += 1
            continue
        if min_value is None or value < min_value:
            min_value = value
        if max_value is None or value > max_value:
            max_value = value
        if numeric:
            total += value
    return Sma(min_value, max_value, row_count, null_count, total if numeric else None)


def compute_sma_arrays(
    vector: np.ndarray, null_mask: np.ndarray, ctype: ColumnType
) -> Sma | None:
    """Array fast path for :func:`compute_sma` — byte-identical or ``None``.

    ``vector`` is the column's typed numpy vector (object array for
    strings) with nulls masked by ``null_mask``.  Returns ``None`` when
    the vectorized result could differ bitwise from the sequential
    oracle, so callers must fall back to :func:`compute_sma`:

    * float blocks containing NaN (the oracle's ``<`` comparisons skip
      NaNs after the first non-null; numpy reductions propagate them);
    * float blocks containing -0.0 (the oracle keeps the *first* of two
      equal values, numpy reductions do not promise which zero wins).

    Float sums reproduce the oracle's sequential accumulation exactly
    via ``np.cumsum`` (each partial sum depends on the previous one, so
    there is no pairwise re-association); int sums use ``np.sum`` only
    when no intermediate can leave int64, else exact python summation.
    """
    numeric = ctype in (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.TIMESTAMP)
    row_count = int(len(null_mask))
    null_count = int(null_mask.sum())
    present = vector[~null_mask]
    if present.size == 0:
        if not numeric:
            return Sma(None, None, row_count, null_count, None)
        total = 0.0 if ctype is ColumnType.FLOAT64 else 0
        return Sma(None, None, row_count, null_count, total)

    if ctype in (ColumnType.INT64, ColumnType.TIMESTAMP):
        min_value = int(present.min())
        max_value = int(present.max())
        if present.size * max(abs(min_value), abs(max_value)) < 2**63:
            total = int(present.sum(dtype=np.int64))
        else:
            total = sum(present.tolist())
        return Sma(min_value, max_value, row_count, null_count, total)

    if ctype is ColumnType.FLOAT64:
        if np.isnan(present).any():
            return None
        if (np.signbit(present) & (present == 0.0)).any():
            return None
        min_value = float(present.min())
        max_value = float(present.max())
        total = float(np.cumsum(np.concatenate((np.zeros(1), present)))[-1])
        return Sma(min_value, max_value, row_count, null_count, total)

    if ctype is ColumnType.BOOL:
        return Sma(bool(present.min()), bool(present.max()), row_count, null_count, None)

    # STRING: object vector, numpy reduces with python comparisons.
    return Sma(present.min(), present.max(), row_count, null_count, None)


def merge_smas(smas: Iterable[Sma]) -> Sma:
    """Merge block-level SMAs into a column-level SMA."""
    min_value = None
    max_value = None
    row_count = 0
    null_count = 0
    # The merged sum is only known when every child carries one.
    total: int | float | None = 0
    any_child = False
    for sma in smas:
        any_child = True
        row_count += sma.row_count
        null_count += sma.null_count
        if sma.min_value is not None and (min_value is None or sma.min_value < min_value):
            min_value = sma.min_value
        if sma.max_value is not None and (max_value is None or sma.max_value > max_value):
            max_value = sma.max_value
        if total is not None:
            total = None if sma.sum_value is None else total + sma.sum_value
    if not any_child:
        total = None
    return Sma(min_value, max_value, row_count, null_count, total)
