"""Data-skipping inside one LogBlock (§5.1, Figure 8, steps 2–4).

Given a conjunction of single-column predicates this module decides,
per column and per column block, whether data can be skipped, and
evaluates predicates the cheapest way available:

* step 2 — the whole column is skipped when its column-level SMA proves
  no row can match (e.g. ``fail = 'false'`` vs a column whose min==max
  =='true');
* step 3 — for indexed columns, the row ids matching the predicate are
  collected by reading the (much smaller) index instead of the data;
* step 4 — for unindexed columns, individual column blocks are skipped
  by their block-level SMA; surviving blocks are decompressed and
  scanned sequentially.

The per-predicate row-id bitsets are ANDed to form the final match set
(Figure 8: "After merging the rowid set ... the log data can be finally
loaded according to it").
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.common.bitset import Bitset
from repro.common.errors import QueryError
from repro.logblock.bkd import BkdIndex
from repro.logblock.inverted import InvertedIndex
from repro.logblock.reader import LogBlockReader
from repro.logblock.schema import ColumnType, IndexType
from repro.logblock.sma import Sma
from repro.logblock.tokenizer import normalize_term, tokenize


class ColumnPredicate(Protocol):
    """A predicate over a single column, applied within one LogBlock."""

    column: str

    def may_match_sma(self, sma: Sma) -> bool:
        """Whether a region with this SMA could contain matches."""
        ...

    def evaluate_value(self, value) -> bool:
        """Whether one concrete value matches (None = SQL null ⇒ False)."""
        ...


@dataclass(frozen=True)
class EqPredicate:
    """``column = value``."""

    column: str
    value: object

    def may_match_sma(self, sma: Sma) -> bool:
        return sma.may_contain_eq(self.value)

    def evaluate_value(self, value) -> bool:
        return value is not None and value == self.value


@dataclass(frozen=True)
class RangePredicate:
    """``low <(=) column <(=) high`` with open ends allowed."""

    column: str
    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def may_match_sma(self, sma: Sma) -> bool:
        return sma.may_contain_range(self.low, self.high, self.low_inclusive, self.high_inclusive)

    def evaluate_value(self, value) -> bool:
        if value is None:
            return False
        if self.low is not None:
            if self.low_inclusive:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.high_inclusive:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True


@dataclass(frozen=True)
class NePredicate:
    """``column != value`` (nulls excluded, like every other predicate).

    Not index-answerable (the inverted-index complement would wrongly
    include nulls); prunable only when the SMA proves min == max == value
    (every non-null row equals ``value``, so nothing can differ).
    """

    column: str
    value: object

    def may_match_sma(self, sma: Sma) -> bool:
        if sma.all_null:
            return False
        if sma.min_value is not None and sma.min_value == sma.max_value == self.value:
            return False
        return True

    def evaluate_value(self, value) -> bool:
        return value is not None and value != self.value


@dataclass(frozen=True)
class InPredicate:
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple

    def may_match_sma(self, sma: Sma) -> bool:
        return any(sma.may_contain_eq(v) for v in self.values)

    def evaluate_value(self, value) -> bool:
        return value is not None and value in self.values


@dataclass(frozen=True)
class NullPredicate:
    """``column IS NULL`` — the one predicate that *selects* nulls.

    SMA null counts answer it exactly at both granularities:
    ``null_count == 0`` prunes a region outright, and
    ``null_count == row_count`` proves every row matches without
    reading a single value (``matches_all_sma``).
    """

    column: str

    def may_match_sma(self, sma: Sma) -> bool:
        return sma.null_count > 0

    def matches_all_sma(self, sma: Sma) -> bool:
        return sma.null_count == sma.row_count

    def evaluate_value(self, value) -> bool:
        return value is None


@dataclass(frozen=True)
class NotNullPredicate:
    """``column IS NOT NULL`` — matches every row with a value.

    The pushdown-friendly form the semantic rewriter produces from
    ``NOT (col IS NULL)``: unlike a generic NOT wrapper it prunes via
    SMA null counts and short-circuits whole all-valued regions.
    """

    column: str

    def may_match_sma(self, sma: Sma) -> bool:
        return sma.null_count < sma.row_count

    def matches_all_sma(self, sma: Sma) -> bool:
        return sma.null_count == 0

    def evaluate_value(self, value) -> bool:
        return value is not None


def _prefix_successor(prefix: str) -> str | None:
    """Smallest string greater than every string starting with ``prefix``.

    None when no successor exists (prefix is all U+10FFFF).
    """
    for i in reversed(range(len(prefix))):
        code = ord(prefix[i])
        if code < 0x10FFFF:
            return prefix[:i] + chr(code + 1)
    return None


@dataclass(frozen=True)
class PrefixPredicate:
    """``column LIKE 'prefix%'`` on an untokenized string column.

    Case-sensitive (standard SQL LIKE), answerable from the inverted
    index via a term-range scan (:meth:`InvertedIndex.lookup_prefix`)
    because untokenized indexes store raw values in sorted order.
    """

    column: str
    prefix: str

    def may_match_sma(self, sma: Sma) -> bool:
        if sma.all_null or sma.min_value is None:
            return False
        if not self.prefix:
            return True  # empty prefix matches any non-null value
        # Matches occupy the key range [prefix, successor(prefix)).
        if str(sma.max_value) < self.prefix:
            return False
        successor = _prefix_successor(self.prefix)
        if successor is not None and str(sma.min_value) >= successor:
            return False
        return True

    def evaluate_value(self, value) -> bool:
        return value is not None and str(value).startswith(self.prefix)


@dataclass(frozen=True)
class MatchPredicate:
    """Full-text ``MATCH(column, 'terms ...')`` — all terms must appear."""

    column: str
    query: str

    @property
    def terms(self) -> list[str]:
        return tokenize(self.query)

    def may_match_sma(self, sma: Sma) -> bool:
        # min/max of raw strings cannot disprove token containment, but an
        # all-null region provably has no matches.
        return not sma.all_null

    def evaluate_value(self, value) -> bool:
        if value is None:
            return False
        value_terms = set(tokenize(value))
        return all(term in value_terms for term in self.terms)


def _index_rowids(
    reader: LogBlockReader, predicate: ColumnPredicate
) -> Bitset | None:
    """Evaluate via the column index when possible (Figure 8 step 3).

    Returns ``None`` when the predicate shape is not index-answerable,
    in which case the caller falls back to block scanning.
    """
    spec = reader.column(predicate.column)
    if spec.index is IndexType.NONE:
        return None
    index = reader.read_index(predicate.column)
    row_count = reader.row_count

    if isinstance(index, InvertedIndex):
        if isinstance(predicate, EqPredicate):
            if spec.tokenize:
                return None  # tokenized values can't be matched exactly from terms
            rows = index.lookup(str(predicate.value))
            return Bitset.from_indices(row_count, rows.tolist())
        if isinstance(predicate, InPredicate):
            if spec.tokenize:
                return None
            bits = Bitset(row_count)
            for value in predicate.values:
                rows = index.lookup(str(value))
                bits = bits | Bitset.from_indices(row_count, rows.tolist())
            return bits
        if isinstance(predicate, MatchPredicate):
            terms = [normalize_term(t) for t in predicate.terms]
            return index.match_all(terms)
        if isinstance(predicate, PrefixPredicate):
            if spec.tokenize:
                return None  # whole-value prefixes don't map to token terms
            rows = index.lookup_prefix(predicate.prefix)
            return Bitset.from_indices(row_count, rows.tolist())
        return None

    if isinstance(index, BkdIndex):
        if isinstance(predicate, EqPredicate):
            return index.range_bitset(predicate.value, predicate.value)
        if isinstance(predicate, RangePredicate):
            return index.range_bitset(
                predicate.low, predicate.high, predicate.low_inclusive, predicate.high_inclusive
            )
        if isinstance(predicate, InPredicate):
            bits = Bitset(row_count)
            for value in predicate.values:
                bits = bits | index.range_bitset(value, value)
            return bits
        return None

    return None


def vectorized_block_mask(
    predicate: ColumnPredicate, values: np.ndarray, null_mask: np.ndarray
) -> np.ndarray | None:
    """Vectorized predicate evaluation over one decoded column block.

    Returns a boolean match mask, or ``None`` when this predicate shape
    has no vector form (e.g. MATCH) — the caller then falls back to the
    scalar scan.  Implements the paper's §8 "vectorized query
    execution" for the scan path.
    """
    not_null = ~null_mask
    if isinstance(predicate, NullPredicate):
        return null_mask.copy()
    if isinstance(predicate, NotNullPredicate):
        return not_null.copy()
    if isinstance(predicate, EqPredicate):
        return not_null & (values == predicate.value)
    if isinstance(predicate, NePredicate):
        return not_null & (values != predicate.value)
    if isinstance(predicate, RangePredicate):
        mask = not_null.copy()
        if predicate.low is not None:
            if predicate.low_inclusive:
                mask &= values >= predicate.low
            else:
                mask &= values > predicate.low
        if predicate.high is not None:
            if predicate.high_inclusive:
                mask &= values <= predicate.high
            else:
                mask &= values < predicate.high
        return mask
    if isinstance(predicate, InPredicate):
        return not_null & np.isin(values, np.asarray(predicate.values))
    return None


def dict_codes_block_mask(
    predicate: ColumnPredicate,
    codes: np.ndarray,
    dictionary: list,
    null_mask: np.ndarray,
) -> np.ndarray | None:
    """Predicate mask over a DICT-encoded string block, as int compares.

    The dictionary is sorted ascending and code ``i + 1`` denotes
    ``dictionary[i]`` (0 = null), so codes are order-isomorphic to the
    values: equality/IN become needle-code compares and ranges become
    code intervals found by binary search — no string is materialized.
    Returns ``None`` for shapes with no code form (MATCH, non-string
    range bounds); the caller falls back to the interpreted scan, which
    preserves its exact semantics (including the TypeError a
    string-vs-number range comparison raises).
    """
    not_null = ~null_mask
    if isinstance(predicate, NullPredicate):
        return null_mask.copy()
    if isinstance(predicate, NotNullPredicate):
        return not_null.copy()
    if isinstance(predicate, EqPredicate):
        needle = predicate.value
        if isinstance(needle, str):
            idx = bisect_left(dictionary, needle)
            if idx < len(dictionary) and dictionary[idx] == needle:
                return codes == idx + 1  # code > 0 ⇒ non-null
        # A non-string needle (or an absent string) equals no stored value.
        return np.zeros_like(null_mask)
    if isinstance(predicate, NePredicate):
        needle = predicate.value
        if isinstance(needle, str):
            idx = bisect_left(dictionary, needle)
            if idx < len(dictionary) and dictionary[idx] == needle:
                return not_null & (codes != idx + 1)
        return not_null.copy()
    if isinstance(predicate, InPredicate):
        targets = []
        for needle in predicate.values:
            if isinstance(needle, str):
                idx = bisect_left(dictionary, needle)
                if idx < len(dictionary) and dictionary[idx] == needle:
                    targets.append(idx + 1)
        if not targets:
            return np.zeros_like(null_mask)
        return np.isin(codes, np.asarray(targets, dtype=codes.dtype))
    if isinstance(predicate, RangePredicate):
        if predicate.low is not None and not isinstance(predicate.low, str):
            return None
        if predicate.high is not None and not isinstance(predicate.high, str):
            return None
        low_code = 1
        high_code = len(dictionary)
        if predicate.low is not None:
            side = bisect_left if predicate.low_inclusive else bisect_right
            low_code = side(dictionary, predicate.low) + 1
        if predicate.high is not None:
            side = bisect_right if predicate.high_inclusive else bisect_left
            high_code = side(dictionary, predicate.high)
        return not_null & (codes >= low_code) & (codes <= high_code)
    if isinstance(predicate, PrefixPredicate):
        # Matches occupy the contiguous key range [prefix, successor).
        low_code = bisect_left(dictionary, predicate.prefix) + 1
        successor = _prefix_successor(predicate.prefix)
        high_code = (
            len(dictionary) if successor is None else bisect_left(dictionary, successor)
        )
        return not_null & (codes >= low_code) & (codes <= high_code)
    return None


def _scan_rowids(reader: LogBlockReader, predicate: ColumnPredicate) -> Bitset:
    """Block-skipping scan (Figure 8 step 4): SMA-prune blocks, scan rest."""
    meta = reader.meta()
    col_idx = meta.schema.column_index(predicate.column)
    bits = Bitset(meta.row_count)
    base = 0
    for block_idx, block_rows in enumerate(meta.block_row_counts):
        header = meta.block_headers[col_idx][block_idx]
        if predicate.may_match_sma(header.sma):
            values = reader.read_block(predicate.column, block_idx)
            for offset, value in enumerate(values):
                if predicate.evaluate_value(value):
                    bits.set(base + offset)
        base += block_rows
    return bits


@dataclass
class PruneStats:
    """What the skipping strategy avoided, for the Fig 15 bench."""

    columns_pruned: int = 0
    blocks_pruned: int = 0
    blocks_scanned: int = 0
    index_lookups: int = 0
    blooms_pruned: int = 0  # whole-LogBlock skips via Bloom "definitely absent"
    blocks_short_circuited: int = 0  # blocks proven all-matching by SMA alone
    # Scan-mode accounting: rows whose predicate evaluation ran on numpy
    # vectors vs the scalar per-value loop, and why vectorization fell
    # back when it was requested but could not apply (reason → count).
    rows_vectorized: int = 0
    rows_interpreted: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)

    def note_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1


def evaluate_predicates(
    reader: LogBlockReader,
    predicates: list[ColumnPredicate],
    use_skipping: bool = True,
    use_indexes: bool = True,
    vectorized: bool = False,
    stats: PruneStats | None = None,
) -> Bitset:
    """Row ids in this LogBlock matching *all* predicates.

    With ``use_skipping=False`` every predicate is evaluated by brute
    scan of every block (the Figure 15 baseline).  ``use_indexes=False``
    disables step 3 while keeping SMA pruning (an ablation point).
    ``vectorized=True`` evaluates scan-path predicates on numpy vectors
    (§8 future work) — results are identical, only CPU time differs.
    """
    row_count = reader.row_count
    result = Bitset.full(row_count)
    stats = stats if stats is not None else PruneStats()

    for predicate in predicates:
        if not result.any():
            break
        if use_skipping:
            column_sma = reader.meta().column_sma(predicate.column)
            if not predicate.may_match_sma(column_sma):
                # Figure 8 step 2: whole column disproved; no rows match.
                stats.columns_pruned += 1
                return Bitset(row_count)
            matches_all = getattr(predicate, "matches_all_sma", None)
            if matches_all is not None and matches_all(column_sma):
                # The column SMA proves every row matches (e.g. IS NOT
                # NULL over a column with zero nulls) — zero reads.
                continue
            if not _bloom_may_match(reader, predicate):
                # Bloom filter proves the needle is absent from this
                # whole LogBlock — skip without touching the index.
                stats.blooms_pruned += 1
                return Bitset(row_count)
            if use_indexes:
                via_index = _index_rowids(reader, predicate)
                if via_index is not None:
                    stats.index_lookups += 1
                    result = result & via_index
                    continue
            result = result & _scan_blocks(
                reader, predicate, stats, prune_blocks=True, vectorized=vectorized
            )
        else:
            result = result & _scan_blocks(
                reader, predicate, stats, prune_blocks=False, vectorized=vectorized
            )
    return result


def _bloom_may_match(reader: LogBlockReader, predicate: ColumnPredicate) -> bool:
    """Bloom-filter check for equality-shaped string predicates.

    True means "may match" (including: no bloom available, or a
    predicate shape blooms cannot answer).
    """
    if isinstance(predicate, EqPredicate):
        if not isinstance(predicate.value, str) or not reader.has_bloom(predicate.column):
            return True
        bloom = reader.read_bloom(predicate.column)
        return bloom is None or bloom.might_contain(predicate.value)
    if isinstance(predicate, InPredicate):
        if not reader.has_bloom(predicate.column):
            return True
        if not all(isinstance(v, str) for v in predicate.values):
            return True
        bloom = reader.read_bloom(predicate.column)
        if bloom is None:
            return True
        return any(bloom.might_contain(v) for v in predicate.values)
    return True


def _scan_blocks(
    reader: LogBlockReader,
    predicate: ColumnPredicate,
    stats: PruneStats,
    prune_blocks: bool,
    vectorized: bool,
) -> Bitset:
    """Scan-path evaluation of one predicate over the column blocks.

    ``prune_blocks`` applies the Figure 8 step-4 block-level SMA skip;
    ``vectorized`` tries the numpy fast path per block, falling back to
    the scalar loop for shapes without a vector form.
    """
    meta = reader.meta()
    col_idx = meta.schema.column_index(predicate.column)
    full_mask = np.zeros(meta.row_count, dtype=bool)
    base = 0
    for block_idx, block_rows in enumerate(meta.block_row_counts):
        header = meta.block_headers[col_idx][block_idx]
        if prune_blocks and not predicate.may_match_sma(header.sma):
            stats.blocks_pruned += 1
            base += block_rows
            continue
        if prune_blocks:
            matches_all = getattr(predicate, "matches_all_sma", None)
            if matches_all is not None and matches_all(header.sma):
                full_mask[base : base + block_rows] = True
                stats.blocks_short_circuited += 1
                base += block_rows
                continue
        stats.blocks_scanned += 1
        handled = False
        if vectorized:
            arrays = reader.read_block_arrays(predicate.column, block_idx)
            if arrays is None:
                stats.note_fallback(
                    f"column {predicate.column}: PLAIN STRING blocks have no vector form"
                )
            else:
                if len(arrays) == 3:
                    codes, dictionary, nulls = arrays
                    mask = dict_codes_block_mask(predicate, codes, dictionary, nulls)
                else:
                    mask = vectorized_block_mask(predicate, arrays[0], arrays[1])
                if mask is None:
                    stats.note_fallback(
                        f"{type(predicate).__name__}({predicate.column}) "
                        "has no vector kernel"
                    )
                else:
                    full_mask[base : base + block_rows] = mask
                    handled = True
        if handled:
            stats.rows_vectorized += block_rows
        else:
            stats.rows_interpreted += block_rows
            values = reader.read_block(predicate.column, block_idx)
            for offset, value in enumerate(values):
                if predicate.evaluate_value(value):
                    full_mask[base + offset] = True
        base += block_rows
    return Bitset.from_bool_array(full_mask)


def validate_predicate_types(reader_schema, predicates: list[ColumnPredicate]) -> None:
    """Fail fast if a predicate references a column the schema lacks."""
    names = set(reader_schema.column_names())
    for predicate in predicates:
        if predicate.column not in names:
            raise QueryError(f"predicate references unknown column {predicate.column!r}")
        spec = reader_schema.column(predicate.column)
        if isinstance(predicate, MatchPredicate) and spec.ctype is not ColumnType.STRING:
            raise QueryError(f"MATCH requires a STRING column, got {spec.ctype.name}")
