"""Seekable reads of pack members via ranged object-store GETs.

A :class:`PackReader` knows the bucket/key of a packed LogBlock on the
object store and fetches members lazily.  The manifest is fetched once
(and typically cached by the multi-level cache above this layer); each
member read is a single ranged GET.
"""

from __future__ import annotations

from typing import Protocol

from repro.common.errors import InvalidRange
from repro.tarpack.manifest import Manifest, MemberEntry
from repro.tarpack.packer import PREAMBLE_SIZE, read_preamble


class RangeReader(Protocol):
    """Anything that can serve ranged reads of one object."""

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes: ...


class PackReader:
    """Lazy reader over one packed blob stored in an object store."""

    def __init__(self, store: RangeReader, bucket: str, key: str) -> None:
        self._store = store
        self._bucket = bucket
        self._key = key
        self._manifest: Manifest | None = None
        self._data_start: int | None = None
        self._head: bytes = b""  # retained head chunk; serves early members

    @property
    def bucket(self) -> str:
        return self._bucket

    @property
    def key(self) -> str:
        return self._key

    HEAD_CHUNK = 8192

    def manifest(self) -> Manifest:
        """Fetch (once) and return the manifest.

        The preamble and manifest together are "the header of the tar
        file" (§3), so they are fetched as one speculative head read;
        only a pack with an unusually large manifest (or one smaller
        than the chunk) needs a second ranged GET.
        """
        if self._manifest is None:
            try:
                head = self._store.get_range(self._bucket, self._key, 0, self.HEAD_CHUNK)
                self._head = head
            except InvalidRange:
                # The whole pack is smaller than the head chunk.
                head = self._store.get_range(self._bucket, self._key, 0, PREAMBLE_SIZE)
            manifest_len = read_preamble(head)
            end = PREAMBLE_SIZE + manifest_len
            if end <= len(head):
                manifest_bytes = head[PREAMBLE_SIZE:end]
            else:
                manifest_bytes = self._store.get_range(
                    self._bucket, self._key, PREAMBLE_SIZE, manifest_len
                )
            self._manifest = Manifest.from_bytes(manifest_bytes)
            self._data_start = end
        return self._manifest

    def attach_manifest(
        self, manifest: Manifest, data_start: int, head: bytes = b""
    ) -> None:
        """Install an externally cached manifest, skipping the two GETs.

        ``head`` restores the retained head chunk so early members
        (meta, bloom filters) keep costing zero further requests.
        """
        self._manifest = manifest
        self._data_start = data_start
        self._head = head

    @property
    def head_bytes(self) -> bytes:
        """The retained head chunk (for external header caches)."""
        return self._head

    @property
    def data_start(self) -> int:
        """Absolute offset of the data section within the blob."""
        if self._data_start is None:
            self.manifest()
        assert self._data_start is not None
        return self._data_start

    def member_entry(self, name: str) -> MemberEntry:
        return self.manifest().get(name)

    def member_extent(self, name: str) -> tuple[int, int]:
        """Absolute ``(start, length)`` of a member within the blob."""
        entry = self.member_entry(name)
        return self.data_start + entry.offset, entry.length

    def read_member(self, name: str) -> bytes:
        """Fetch one member with a single ranged GET.

        Members that fall entirely inside the retained head chunk
        (meta, bloom filters — the writer packs them first) are served
        from it with no further request: header locality.
        """
        start, length = self.member_extent(name)
        if length == 0:
            return b""
        if start + length <= len(self._head):
            return self._head[start : start + length]
        return self._store.get_range(self._bucket, self._key, start, length)

    def covered_by_head(self, name: str) -> bool:
        """Whether a member is fully inside the retained head chunk
        (reading it costs no further request)."""
        start, length = self.member_extent(name)
        return start + length <= len(self._head)

    def member_names(self) -> list[str]:
        return self.manifest().names()
