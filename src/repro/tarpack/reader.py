"""Seekable reads of pack members via ranged object-store GETs.

A :class:`PackReader` knows the bucket/key of a packed LogBlock on the
object store and fetches members lazily.  The manifest is fetched once
(and typically cached by the multi-level cache above this layer); each
member read is a single ranged GET.
"""

from __future__ import annotations

from typing import Protocol

from repro.common.errors import InvalidRange
from repro.tarpack.manifest import Manifest, MemberEntry
from repro.tarpack.packer import PREAMBLE_SIZE, read_preamble


class RangeReader(Protocol):
    """Anything that can serve ranged reads of one object."""

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes: ...


class BytesRangeReader:
    """Serve ranged reads of one in-memory blob (any bucket/key).

    Lets :class:`PackReader` — and therefore :class:`LogBlockReader` —
    open a pack that exists only as bytes, e.g. a cold-segment member
    that was just read back for verification or catalog rebuild.
    """

    def __init__(self, blob: bytes) -> None:
        self._blob = blob

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        if start < 0 or length < 0 or start >= len(self._blob):
            raise InvalidRange(
                f"range [{start}, {start + length}) outside blob of {len(self._blob)} bytes"
            )
        return self._blob[start : start + length]


class SubrangeReader:
    """Present a byte window of one object as an object of its own.

    Cold-tier LogBlocks are members of a large tar-packed segment; a
    ``SubrangeReader`` over ``(segment_key, offset, length)`` lets the
    unmodified :class:`PackReader` → ``LogBlockReader`` stack read the
    member in place — every inner ranged GET is translated into a
    ranged GET of the segment object, so multi-level caching of the
    segment's byte ranges is shared across its members.
    """

    def __init__(
        self, store: RangeReader, bucket: str, key: str, offset: int, length: int
    ) -> None:
        self._store = store
        self._bucket = bucket
        self._key = key
        self._offset = offset
        self._length = length

    def _translate(self, start: int, length: int) -> tuple[int, int]:
        if start < 0 or length < 0 or start >= self._length:
            raise InvalidRange(
                f"range [{start}, {start + length}) outside member window "
                f"of {self._length} bytes in {self._key}"
            )
        # Clamp to the window: a speculative over-read (PackReader's
        # head chunk) must not leak the next member's bytes.
        return self._offset + start, min(length, self._length - start)

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        start, length = self._translate(start, length)
        return self._store.get_range(self._bucket, self._key, start, length)

    def get_ranges_parallel(
        self, bucket: str, key: str, ranges: list[tuple[int, int]], threads: int = 1
    ) -> list[bytes]:
        """Batched ranged reads, translated onto the segment object.

        Present so the executor's parallel prefetcher works through a
        member window unchanged; requires the underlying store to
        support ``get_ranges_parallel`` (the caching range reader does).
        """
        translated = [self._translate(start, length) for start, length in ranges]
        return self._store.get_ranges_parallel(
            self._bucket, self._key, translated, threads
        )

    @property
    def cache(self):
        """Block-cache facade that re-keys puts onto the segment object.

        The parallel prefetcher re-inserts member slices under the key
        it planned with (the virtual member path, window-relative
        offsets); translating those puts onto (segment key, absolute
        offset) makes them exact-key hits for the later translated
        ``get_range`` calls.  Only meaningful when the underlying store
        is a caching range reader.
        """
        return _SubrangeCacheFacade(self)


class _SubrangeBlockFacade:
    def __init__(self, sub: SubrangeReader) -> None:
        self._sub = sub

    def put(self, key, piece, **kwargs) -> None:
        inner_cache = getattr(self._sub._store, "cache", None)
        if inner_cache is None:
            return
        _bucket, _key, start, length = key
        try:
            astart, alength = self._sub._translate(start, length)
        except InvalidRange:
            return
        inner_cache.blocks.put(
            (self._sub._bucket, self._sub._key, astart, alength), piece, **kwargs
        )


class _SubrangeCacheFacade:
    def __init__(self, sub: SubrangeReader) -> None:
        self.blocks = _SubrangeBlockFacade(sub)


class PackReader:
    """Lazy reader over one packed blob stored in an object store."""

    def __init__(self, store: RangeReader, bucket: str, key: str) -> None:
        self._store = store
        self._bucket = bucket
        self._key = key
        self._manifest: Manifest | None = None
        self._data_start: int | None = None
        self._head: bytes = b""  # retained head chunk; serves early members

    @property
    def bucket(self) -> str:
        return self._bucket

    @property
    def key(self) -> str:
        return self._key

    @property
    def store(self) -> RangeReader:
        """The range reader this pack's bytes come from (for batched
        prefetch through the same window, e.g. a cold-segment member)."""
        return self._store

    HEAD_CHUNK = 8192

    def manifest(self) -> Manifest:
        """Fetch (once) and return the manifest.

        The preamble and manifest together are "the header of the tar
        file" (§3), so they are fetched as one speculative head read;
        only a pack with an unusually large manifest (or one smaller
        than the chunk) needs a second ranged GET.
        """
        if self._manifest is None:
            try:
                head = self._store.get_range(self._bucket, self._key, 0, self.HEAD_CHUNK)
                self._head = head
            except InvalidRange:
                # The whole pack is smaller than the head chunk.
                head = self._store.get_range(self._bucket, self._key, 0, PREAMBLE_SIZE)
            manifest_len = read_preamble(head)
            end = PREAMBLE_SIZE + manifest_len
            if end <= len(head):
                manifest_bytes = head[PREAMBLE_SIZE:end]
            else:
                manifest_bytes = self._store.get_range(
                    self._bucket, self._key, PREAMBLE_SIZE, manifest_len
                )
            self._manifest = Manifest.from_bytes(manifest_bytes)
            self._data_start = end
        return self._manifest

    def attach_manifest(
        self, manifest: Manifest, data_start: int, head: bytes = b""
    ) -> None:
        """Install an externally cached manifest, skipping the two GETs.

        ``head`` restores the retained head chunk so early members
        (meta, bloom filters) keep costing zero further requests.
        """
        self._manifest = manifest
        self._data_start = data_start
        self._head = head

    @property
    def head_bytes(self) -> bytes:
        """The retained head chunk (for external header caches)."""
        return self._head

    @property
    def data_start(self) -> int:
        """Absolute offset of the data section within the blob."""
        if self._data_start is None:
            self.manifest()
        assert self._data_start is not None
        return self._data_start

    def member_entry(self, name: str) -> MemberEntry:
        return self.manifest().get(name)

    def member_extent(self, name: str) -> tuple[int, int]:
        """Absolute ``(start, length)`` of a member within the blob."""
        entry = self.member_entry(name)
        return self.data_start + entry.offset, entry.length

    def read_member(self, name: str) -> bytes:
        """Fetch one member with a single ranged GET.

        Members that fall entirely inside the retained head chunk
        (meta, bloom filters — the writer packs them first) are served
        from it with no further request: header locality.
        """
        start, length = self.member_extent(name)
        if length == 0:
            return b""
        if start + length <= len(self._head):
            return self._head[start : start + length]
        return self._store.get_range(self._bucket, self._key, start, length)

    def covered_by_head(self, name: str) -> bool:
        """Whether a member is fully inside the retained head chunk
        (reading it costs no further request)."""
        start, length = self.member_extent(name)
        return start + length <= len(self._head)

    def member_names(self) -> list[str]:
        return self.manifest().names()
