"""Packer: bundle many small files into one seekable blob.

Layout of a pack::

    +----------+-------------------+----------------------+
    | preamble | manifest          | data section         |
    | 12 bytes | variable          | member blobs, packed |
    +----------+-------------------+----------------------+

The preamble is ``PACK`` + version + u32 manifest length + u16 reserved,
so a reader can fetch it with one tiny ranged GET, then fetch the
manifest with a second, then any member with one more — three round
trips for the first member and one per member afterwards, regardless of
how many small files the LogBlock contains.  Member offsets in the
manifest are relative to the start of the data section.
"""

from __future__ import annotations

import struct

from repro.common.errors import CorruptionError, SerializationError
from repro.tarpack.manifest import Manifest, MemberEntry

PREAMBLE_MAGIC = b"PACK"
PREAMBLE_VERSION = 1
PREAMBLE_SIZE = 12  # 4 magic + 1 version + 1 reserved + 4 manifest_len + 2 reserved


def write_preamble(manifest_len: int) -> bytes:
    """Serialize the 12-byte pack preamble."""
    return struct.pack("<4sBBIH", PREAMBLE_MAGIC, PREAMBLE_VERSION, 0, manifest_len, 0)


def read_preamble(data: bytes) -> int:
    """Parse the preamble; returns the manifest length."""
    if len(data) < PREAMBLE_SIZE:
        raise SerializationError("pack preamble truncated")
    magic, version, _r1, manifest_len, _r2 = struct.unpack("<4sBBIH", data[:PREAMBLE_SIZE])
    if magic != PREAMBLE_MAGIC:
        raise CorruptionError("bad pack magic")
    if version != PREAMBLE_VERSION:
        raise SerializationError(f"unsupported pack version {version}")
    return manifest_len


class PackBuilder:
    """Accumulates named members and produces the packed blob."""

    def __init__(self) -> None:
        self._members: list[tuple[str, bytes]] = []
        self._names: set[str] = set()

    def add(self, name: str, data: bytes) -> None:
        """Append a member.  Names must be unique and non-empty."""
        if not name:
            raise SerializationError("member name must be non-empty")
        if name in self._names:
            raise SerializationError(f"duplicate member name: {name}")
        self._names.add(name)
        self._members.append((name, bytes(data)))

    def __len__(self) -> int:
        return len(self._members)

    def build(self) -> bytes:
        """Produce the final pack bytes."""
        manifest = Manifest()
        offset = 0
        for name, data in self._members:
            manifest.add(MemberEntry(name=name, offset=offset, length=len(data)))
            offset += len(data)
        manifest_bytes = manifest.to_bytes()
        parts = [write_preamble(len(manifest_bytes)), manifest_bytes]
        parts.extend(data for _name, data in self._members)
        return b"".join(parts)


def pack_members(members: dict[str, bytes]) -> bytes:
    """Convenience: pack a name→bytes mapping (insertion order preserved)."""
    builder = PackBuilder()
    for name, data in members.items():
        builder.add(name, data)
    return builder.build()
