"""Manifest for the tar-with-manifest packaging of LogBlocks.

§3 of the paper: "A LogBlock of a tenant is composed of a lot of small
files, such as metadata, indexes, and data blocks, and all these files are
packaged into a large tar file instead of using small files.  The header
of the tar file contains a manifest, allowing subsequent read operations
to seek and read any part of the tar file."

The manifest maps member names to ``(offset, length)`` within the packed
blob, so a reader can fetch exactly one member with a single ranged GET.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.common.bytesio import BinaryReader, BinaryWriter
from repro.common.errors import CorruptionError, SerializationError

MAGIC = b"LSTP"  # LogStore Tar Pack
VERSION = 1


@dataclass(frozen=True)
class MemberEntry:
    """One file inside a pack: name and its byte extent in the blob."""

    name: str
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class Manifest:
    """Ordered collection of member entries with binary (de)serialization."""

    def __init__(self, entries: list[MemberEntry] | None = None) -> None:
        self._entries: list[MemberEntry] = []
        self._by_name: dict[str, MemberEntry] = {}
        for entry in entries or []:
            self.add(entry)

    def add(self, entry: MemberEntry) -> None:
        if entry.name in self._by_name:
            raise SerializationError(f"duplicate member name: {entry.name}")
        if entry.offset < 0 or entry.length < 0:
            raise SerializationError(f"invalid extent for {entry.name}")
        self._entries.append(entry)
        self._by_name[entry.name] = entry

    def get(self, name: str) -> MemberEntry:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no such member: {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        return [entry.name for entry in self._entries]

    def entries(self) -> list[MemberEntry]:
        return list(self._entries)

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize: MAGIC, version, count, entries, crc32 of the body."""
        body = BinaryWriter()
        body.write_uvarint(len(self._entries))
        for entry in self._entries:
            body.write_str(entry.name)
            body.write_uvarint(entry.offset)
            body.write_uvarint(entry.length)
        payload = body.getvalue()
        out = BinaryWriter()
        out.write_bytes(MAGIC)
        out.write_u8(VERSION)
        out.write_u32(zlib.crc32(payload) & 0xFFFFFFFF)
        out.write_u32(len(payload))
        out.write_bytes(payload)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Manifest":
        reader = BinaryReader(data)
        if reader.read_bytes(4) != MAGIC:
            raise CorruptionError("bad manifest magic")
        version = reader.read_u8()
        if version != VERSION:
            raise SerializationError(f"unsupported manifest version {version}")
        crc = reader.read_u32()
        length = reader.read_u32()
        payload = reader.read_bytes(length)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise CorruptionError("manifest checksum mismatch")
        body = BinaryReader(payload)
        count = body.read_uvarint()
        manifest = cls()
        for _ in range(count):
            name = body.read_str()
            offset = body.read_uvarint()
            member_len = body.read_uvarint()
            manifest.add(MemberEntry(name, offset, member_len))
        return manifest

    def header_size(self) -> int:
        """Size in bytes of the serialized manifest."""
        return len(self.to_bytes())
