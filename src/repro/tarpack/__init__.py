"""Tar-with-manifest packaging for LogBlock files (§3 of the paper)."""

from repro.tarpack.manifest import Manifest, MemberEntry
from repro.tarpack.packer import PackBuilder, pack_members
from repro.tarpack.reader import PackReader

__all__ = ["Manifest", "MemberEntry", "PackBuilder", "pack_members", "PackReader"]
