"""Parallel prefetch execution (§5.2, Figure 10).

Issues a plan's merged ranges as one parallel batch through the caching
range reader (which itself only pays OSS for cache misses).  The paper
uses a thread pool with a task queue; here the parallelism enters the
cost model (overlapped request latencies), while the actual byte loads
run inline — the virtual clock, not the Python scheduler, is the
measured quantity.

After a prefetch, every *member* range covered by a merged super-range
is re-inserted into the block cache under its own key, so subsequent
member reads hit the cache instead of re-slicing OSS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.multilevel import CachingRangeReader
from repro.prefetch.planner import PrefetchPlan

DEFAULT_PREFETCH_THREADS = 32  # §6.3.2 "using 32 threads"


@dataclass
class PrefetchStats:
    """Aggregate prefetch activity for the Fig 16 bench."""

    plans_executed: int = 0
    requests_issued: int = 0
    bytes_loaded: int = 0


class ParallelPrefetcher:
    """Executes prefetch plans with simulated parallel streams."""

    def __init__(
        self,
        reader: CachingRangeReader,
        threads: int = DEFAULT_PREFETCH_THREADS,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self._reader = reader
        self._threads = threads
        self.stats = PrefetchStats()

    @property
    def threads(self) -> int:
        return self._threads

    def execute(self, plan: PrefetchPlan, member_extents: list[tuple[int, int]] = ()) -> None:
        """Load all ranges of ``plan``; optionally re-key member slices.

        ``member_extents`` are the original (pre-merge) member byte
        extents; each is sliced out of the fetched super-ranges and
        cached under its own (start, length) key so later
        ``get_range(member)`` calls are pure cache hits.
        """
        if not plan.ranges:
            return
        chunks = self._reader.get_ranges_parallel(
            plan.bucket, plan.key, list(plan.ranges), self._threads
        )
        self.stats.plans_executed += 1
        self.stats.requests_issued += len(plan.ranges)
        self.stats.bytes_loaded += sum(len(chunk) for chunk in chunks)

        if member_extents:
            fetched = list(zip(plan.ranges, chunks))
            for member_start, member_length in member_extents:
                if member_length == 0:
                    continue
                for (range_start, range_length), chunk in fetched:
                    if (
                        member_start >= range_start
                        and member_start + member_length <= range_start + range_length
                    ):
                        offset = member_start - range_start
                        piece = chunk[offset : offset + member_length]
                        self._reader.cache.blocks.put(
                            (plan.bucket, plan.key, member_start, member_length), piece
                        )
                        break
