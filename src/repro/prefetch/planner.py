"""Prefetch planning (§5.2, Figure 10).

"Before parallel loading, the file to be prefetched should be divided
into data blocks according to the metadata, and repeated data block
read IO requests will be merged to avoid repeated loading."

Given a LogBlock's pack manifest and the members the query plan will
touch (meta, the needed indexes, the surviving column blocks), the
planner emits a list of byte ranges:

1. one range per needed member (from the manifest),
2. deduplicated,
3. coalesced when ranges are adjacent or nearly so (``merge_gap``), so
   several small members become one GET.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.utils import merge_ranges
from repro.tarpack.manifest import Manifest

DEFAULT_MERGE_GAP = 4096


@dataclass(frozen=True)
class PrefetchPlan:
    """Byte ranges to load for one blob, already merged."""

    bucket: str
    key: str
    ranges: tuple[tuple[int, int], ...]  # absolute (start, length)

    @property
    def total_bytes(self) -> int:
        return sum(length for _start, length in self.ranges)

    @property
    def request_count(self) -> int:
        return len(self.ranges)


@dataclass
class PrefetchPlanner:
    """Builds merged prefetch plans from manifests and member lists."""

    merge_gap: int = DEFAULT_MERGE_GAP
    members_planned: int = field(default=0, init=False)

    def plan(
        self,
        bucket: str,
        key: str,
        manifest: Manifest,
        data_start: int,
        members: list[str],
    ) -> PrefetchPlan:
        """Plan ranged reads for the given members of one packed blob."""
        extents: list[tuple[int, int]] = []
        seen: set[str] = set()
        for member in members:
            if member in seen:
                continue  # dedupe repeated requests (Figure 10)
            seen.add(member)
            entry = manifest.get(member)
            if entry.length == 0:
                continue
            start = data_start + entry.offset
            extents.append((start, start + entry.length))
        self.members_planned += len(seen)
        merged = merge_ranges(extents, gap=self.merge_gap)
        ranges = tuple((start, end - start) for start, end in merged)
        return PrefetchPlan(bucket=bucket, key=key, ranges=ranges)
