"""Parallel prefetch: range planning with merge + batched loads (§5.2)."""

from repro.prefetch.executor import ParallelPrefetcher, PrefetchStats
from repro.prefetch.planner import PrefetchPlan, PrefetchPlanner

__all__ = ["ParallelPrefetcher", "PrefetchStats", "PrefetchPlan", "PrefetchPlanner"]
