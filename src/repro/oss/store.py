"""Simulated cloud object storage (OSS-like).

Provides the object-store semantics LogStore depends on:

* buckets of immutable objects addressed by string keys;
* whole-object and ranged ``GET``;
* prefix ``LIST``;
* conditional ``PUT`` (objects are immutable — a second PUT to the same
  key fails, matching how LogBlocks are written exactly once);
* ``DELETE`` for data expiry.

Two backends are provided: :class:`InMemoryObjectStore` (default for tests
and simulation) and :class:`LocalFsObjectStore` (real files on disk, for
examples that want persistence).  Latency/bandwidth accounting lives in
:class:`~repro.oss.metered.MeteredObjectStore`, which wraps either backend.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.common.errors import (
    InvalidRange,
    NoSuchBucket,
    NoSuchKey,
    ObjectAlreadyExists,
)


@dataclass(frozen=True)
class ObjectStat:
    """Metadata for one stored object."""

    key: str
    size: int


class ObjectStore(Protocol):
    """Interface every object-store backend implements."""

    def create_bucket(self, bucket: str) -> None: ...

    def delete_bucket(self, bucket: str) -> None: ...

    def put(self, bucket: str, key: str, data: bytes) -> None: ...

    def get(self, bucket: str, key: str) -> bytes: ...

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes: ...

    def head(self, bucket: str, key: str) -> ObjectStat: ...

    def exists(self, bucket: str, key: str) -> bool: ...

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]: ...

    def delete(self, bucket: str, key: str) -> None: ...


def _check_range(size: int, start: int, length: int) -> None:
    if start < 0 or length < 0 or start + length > size:
        raise InvalidRange(f"range [{start}, {start + length}) outside object of {size} bytes")


class InMemoryObjectStore:
    """Dictionary-backed object store; thread-safe.

    Objects are immutable after PUT.  This is the default substrate for
    the full-cluster simulation and the benchmark harness.
    """

    def __init__(self) -> None:
        self._buckets: dict[str, dict[str, bytes]] = {}
        self._lock = threading.Lock()

    def create_bucket(self, bucket: str) -> None:
        with self._lock:
            if bucket not in self._buckets:
                self._buckets[bucket] = {}

    def delete_bucket(self, bucket: str) -> None:
        with self._lock:
            if bucket not in self._buckets:
                raise NoSuchBucket(bucket)
            del self._buckets[bucket]

    def _bucket(self, bucket: str) -> dict[str, bytes]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucket(bucket) from None

    def put(self, bucket: str, key: str, data: bytes) -> None:
        with self._lock:
            objects = self._bucket(bucket)
            if key in objects:
                raise ObjectAlreadyExists(f"{bucket}/{key}")
            objects[key] = bytes(data)

    def get(self, bucket: str, key: str) -> bytes:
        with self._lock:
            objects = self._bucket(bucket)
            try:
                return objects[key]
            except KeyError:
                raise NoSuchKey(f"{bucket}/{key}") from None

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        data = self.get(bucket, key)
        _check_range(len(data), start, length)
        return data[start : start + length]

    def head(self, bucket: str, key: str) -> ObjectStat:
        return ObjectStat(key=key, size=len(self.get(bucket, key)))

    def exists(self, bucket: str, key: str) -> bool:
        with self._lock:
            objects = self._buckets.get(bucket)
            return objects is not None and key in objects

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        with self._lock:
            objects = self._bucket(bucket)
            return [
                ObjectStat(key=key, size=len(data))
                for key, data in sorted(objects.items())
                if key.startswith(prefix)
            ]

    def delete(self, bucket: str, key: str) -> None:
        with self._lock:
            objects = self._bucket(bucket)
            if key not in objects:
                raise NoSuchKey(f"{bucket}/{key}")
            del objects[key]

    def total_bytes(self, bucket: str) -> int:
        """Sum of object sizes in ``bucket`` (for storage accounting)."""
        with self._lock:
            return sum(len(data) for data in self._bucket(bucket).values())


class LocalFsObjectStore:
    """Object store persisted as files under a root directory.

    Keys may contain ``/`` which map to subdirectories.  Useful for the
    examples so users can inspect the LogBlocks the system produces.
    """

    def __init__(self, root: str) -> None:
        self._root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()

    def _bucket_dir(self, bucket: str) -> str:
        return os.path.join(self._root, bucket)

    def _object_path(self, bucket: str, key: str) -> str:
        # Normalize to prevent escaping the bucket directory.
        safe = os.path.normpath(key)
        if safe.startswith("..") or os.path.isabs(safe):
            raise NoSuchKey(f"invalid key {key!r}")
        return os.path.join(self._bucket_dir(bucket), safe)

    def create_bucket(self, bucket: str) -> None:
        os.makedirs(self._bucket_dir(bucket), exist_ok=True)

    def delete_bucket(self, bucket: str) -> None:
        path = self._bucket_dir(bucket)
        if not os.path.isdir(path):
            raise NoSuchBucket(bucket)
        for dirpath, _dirnames, filenames in os.walk(path, topdown=False):
            for name in filenames:
                os.unlink(os.path.join(dirpath, name))
            os.rmdir(dirpath)

    def _require_bucket(self, bucket: str) -> str:
        path = self._bucket_dir(bucket)
        if not os.path.isdir(path):
            raise NoSuchBucket(bucket)
        return path

    def put(self, bucket: str, key: str, data: bytes) -> None:
        self._require_bucket(bucket)
        path = self._object_path(bucket, key)
        with self._lock:
            if os.path.exists(path):
                raise ObjectAlreadyExists(f"{bucket}/{key}")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)

    def get(self, bucket: str, key: str) -> bytes:
        self._require_bucket(bucket)
        path = self._object_path(bucket, key)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise NoSuchKey(f"{bucket}/{key}") from None

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        self._require_bucket(bucket)
        path = self._object_path(bucket, key)
        try:
            size = os.path.getsize(path)
        except FileNotFoundError:
            raise NoSuchKey(f"{bucket}/{key}") from None
        _check_range(size, start, length)
        with open(path, "rb") as handle:
            handle.seek(start)
            return handle.read(length)

    def head(self, bucket: str, key: str) -> ObjectStat:
        self._require_bucket(bucket)
        path = self._object_path(bucket, key)
        try:
            return ObjectStat(key=key, size=os.path.getsize(path))
        except FileNotFoundError:
            raise NoSuchKey(f"{bucket}/{key}") from None

    def exists(self, bucket: str, key: str) -> bool:
        if not os.path.isdir(self._bucket_dir(bucket)):
            return False
        return os.path.isfile(self._object_path(bucket, key))

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        root = self._require_bucket(bucket)
        stats = []
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                full = os.path.join(dirpath, name)
                key = os.path.relpath(full, root).replace(os.sep, "/")
                if key.startswith(prefix):
                    stats.append(ObjectStat(key=key, size=os.path.getsize(full)))
        return sorted(stats, key=lambda stat: stat.key)

    def delete(self, bucket: str, key: str) -> None:
        self._require_bucket(bucket)
        path = self._object_path(bucket, key)
        try:
            os.unlink(path)
        except FileNotFoundError:
            raise NoSuchKey(f"{bucket}/{key}") from None


def copy_object(src: ObjectStore, dst: ObjectStore, bucket: str, key: str) -> None:
    """Copy one object between stores (used by migration/backup tasks)."""
    dst.put(bucket, key, src.get(bucket, key))


def copy_prefix(src: ObjectStore, dst: ObjectStore, bucket: str, prefix: str) -> int:
    """Copy all objects under ``prefix``; returns the number copied."""
    stats: Iterable[ObjectStat] = src.list(bucket, prefix)
    count = 0
    for stat in stats:
        copy_object(src, dst, bucket, stat.key)
        count += 1
    return count
