"""Simulated cloud object storage (OSS) with a pluggable cost model."""

from repro.oss.costmodel import OssCostModel, free, local_ssd, oss_default
from repro.oss.metered import MeteredObjectStore, OssStats
from repro.oss.retry import FlakyStore, RetryingObjectStore
from repro.oss.store import (
    InMemoryObjectStore,
    LocalFsObjectStore,
    ObjectStat,
    ObjectStore,
    copy_object,
    copy_prefix,
)

__all__ = [
    "OssCostModel",
    "free",
    "local_ssd",
    "oss_default",
    "MeteredObjectStore",
    "OssStats",
    "FlakyStore",
    "RetryingObjectStore",
    "InMemoryObjectStore",
    "LocalFsObjectStore",
    "ObjectStat",
    "ObjectStore",
    "copy_object",
    "copy_prefix",
]
