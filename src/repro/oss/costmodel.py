"""Latency/bandwidth cost model for the simulated object storage.

The paper's query-side results (Figures 15–17) are dominated by the cost
of talking to OSS over HTTP: per-request latency plus transfer time at a
bounded bandwidth.  We make those the two explicit knobs.  A local SSD is
modeled the same way with much smaller constants, which is how the
"local storage vs OSS" comparison of Figure 16 is produced.

Costs are *charged* against a virtual clock by :class:`~repro.oss.metered.
MeteredObjectStore`; the model itself is pure arithmetic so it can be unit
tested exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class OssCostModel:
    """Cost parameters for one storage tier.

    Attributes:
        request_latency_s: fixed per-request round-trip latency (seconds).
            For cloud object storage this is HTTP + network overhead, tens
            of milliseconds; for a local SSD, tens of microseconds.
        bandwidth_bytes_per_s: sustained transfer bandwidth.
        list_latency_s: latency of a LIST operation (usually worse than GET
            on real object stores; the paper's tar packaging exists to
            avoid "traversing a large number of files").
        concurrent_streams: number of parallel requests the tier sustains
            at full bandwidth each.  Parallel prefetch gains come from
            overlapping request latencies across streams.
    """

    request_latency_s: float = 0.030
    bandwidth_bytes_per_s: float = 100e6
    list_latency_s: float = 0.050
    concurrent_streams: int = 32

    def __post_init__(self) -> None:
        if self.request_latency_s < 0:
            raise ConfigError("request_latency_s must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth_bytes_per_s must be > 0")
        if self.list_latency_s < 0:
            raise ConfigError("list_latency_s must be >= 0")
        if self.concurrent_streams < 1:
            raise ConfigError("concurrent_streams must be >= 1")

    # -- single-request costs ---------------------------------------------

    def get_cost(self, nbytes: int) -> float:
        """Seconds to GET an object (or range) of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.request_latency_s + nbytes / self.bandwidth_bytes_per_s

    def put_cost(self, nbytes: int) -> float:
        """Seconds to PUT an object of ``nbytes``."""
        return self.get_cost(nbytes)

    def list_cost(self, n_entries: int) -> float:
        """Seconds to LIST ``n_entries`` keys (1 request per 1000 keys)."""
        if n_entries < 0:
            raise ValueError(f"negative entry count: {n_entries}")
        requests = max(1, (n_entries + 999) // 1000)
        return requests * self.list_latency_s

    def delete_cost(self) -> float:
        """Seconds to DELETE one object."""
        return self.request_latency_s

    # -- batched costs -----------------------------------------------------

    def parallel_get_cost(self, sizes: list[int], threads: int) -> float:
        """Seconds to fetch ``sizes`` with up to ``threads`` parallel streams.

        Request latencies overlap across streams; bandwidth is shared, so
        the transfer component is the total bytes over the full bandwidth.
        Effective parallelism is capped by ``concurrent_streams``.
        This is the quantity the §5.2 parallel prefetcher optimizes.
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if not sizes:
            return 0.0
        streams = min(threads, self.concurrent_streams)
        # Round-trips pipeline: each stream pays latency per request it owns.
        requests_per_stream = -(-len(sizes) // streams)  # ceil division
        latency = requests_per_stream * self.request_latency_s
        transfer = sum(sizes) / self.bandwidth_bytes_per_s
        return latency + transfer


def oss_default() -> OssCostModel:
    """Cost model for the simulated cloud object store (OSS-like)."""
    return OssCostModel(
        request_latency_s=0.030,
        bandwidth_bytes_per_s=100e6,
        list_latency_s=0.050,
        concurrent_streams=32,
    )


def local_ssd() -> OssCostModel:
    """Cost model for a local NVMe SSD tier."""
    return OssCostModel(
        request_latency_s=0.0001,
        bandwidth_bytes_per_s=2e9,
        list_latency_s=0.0002,
        concurrent_streams=8,
    )


def free() -> OssCostModel:
    """A zero-latency, effectively infinite-bandwidth model (for tests)."""
    return OssCostModel(
        request_latency_s=0.0,
        bandwidth_bytes_per_s=1e18,
        list_latency_s=0.0,
        concurrent_streams=64,
    )
