"""Metered object-store wrapper: charges a cost model to a clock.

Wraps any :class:`~repro.oss.store.ObjectStore` backend.  Each operation:

1. performs the real operation on the inner store (real bytes),
2. computes its simulated duration from the :class:`OssCostModel`,
3. charges that duration to the clock (``clock.sleep``) — for a
   :class:`VirtualClock` this advances simulated time instantly,
4. records counters so benches can report request counts and bytes moved.

The wrapper is how every figure that involves storage latency is
produced: the *same* code path runs with an OSS-like model, a local-SSD
model, or a free model, and only the charged time differs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.clock import Clock, VirtualClock
from repro.obs.tracing import Tracer
from repro.oss.costmodel import OssCostModel
from repro.oss.store import ObjectStat, ObjectStore

_NOOP_TRACER = Tracer(None, enabled=False)


@dataclass
class OssStats:
    """Operation counters accumulated by a metered store."""

    get_requests: int = 0
    put_requests: int = 0
    list_requests: int = 0
    delete_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    time_charged_s: float = 0.0

    def snapshot(self) -> "OssStats":
        """A copy of the current counters."""
        return OssStats(**vars(self))

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0 if name != "time_charged_s" else 0.0)


@dataclass
class _PendingBatch:
    """Ranged reads accumulated for one parallel (batched) fetch."""

    sizes: list[int] = field(default_factory=list)


class MeteredObjectStore:
    """Cost-charging decorator around an object store backend."""

    def __init__(
        self,
        inner: ObjectStore,
        model: OssCostModel,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
    ):
        self._inner = inner
        self._model = model
        self._clock = clock if clock is not None else VirtualClock()
        self._tracer = tracer if tracer is not None else _NOOP_TRACER
        self._lock = threading.Lock()
        self.stats = OssStats()

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def model(self) -> OssCostModel:
        return self._model

    @property
    def inner(self) -> ObjectStore:
        return self._inner

    def _charge(self, seconds: float) -> float:
        """Charge the cost model to the clock.

        Returns the portion that did NOT advance ``now()`` (a sleep
        inside a ``clock.deferred()`` wave is collected, not applied) so
        callers can credit it to their trace span without double
        counting the non-deferred case.
        """
        with self._lock:
            self.stats.time_charged_s += seconds
        before = self._clock.now()
        self._clock.sleep(seconds)
        return seconds - (self._clock.now() - before)

    # -- bucket ops (uncharged: control-plane) ------------------------------

    def create_bucket(self, bucket: str) -> None:
        self._inner.create_bucket(bucket)

    def delete_bucket(self, bucket: str) -> None:
        self._inner.delete_bucket(bucket)

    # -- data ops ------------------------------------------------------------

    def put(self, bucket: str, key: str, data: bytes) -> None:
        with self._tracer.span("oss.put", key=key, bytes=len(data)) as span:
            self._inner.put(bucket, key, data)
            with self._lock:
                self.stats.put_requests += 1
                self.stats.bytes_written += len(data)
            span.charge(self._charge(self._model.put_cost(len(data))))

    def get(self, bucket: str, key: str) -> bytes:
        with self._tracer.span("oss.get", key=key) as span:
            data = self._inner.get(bucket, key)
            with self._lock:
                self.stats.get_requests += 1
                self.stats.bytes_read += len(data)
            span.set(bytes=len(data))
            span.charge(self._charge(self._model.get_cost(len(data))))
        return data

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        with self._tracer.span("oss.get", key=key, start=start) as span:
            data = self._inner.get_range(bucket, key, start, length)
            with self._lock:
                self.stats.get_requests += 1
                self.stats.bytes_read += len(data)
            span.set(bytes=len(data))
            span.charge(self._charge(self._model.get_cost(len(data))))
        return data

    def get_ranges_parallel(
        self,
        bucket: str,
        key: str,
        ranges: list[tuple[int, int]],
        threads: int,
    ) -> list[bytes]:
        """Fetch several ``(start, length)`` ranges as one parallel batch.

        Charged as overlapping requests per :meth:`OssCostModel.
        parallel_get_cost` — this is the primitive the §5.2 parallel
        prefetcher uses, and the source of its speedup over serial gets.
        """
        with self._tracer.span(
            "oss.get", key=key, ranges=len(ranges), threads=threads
        ) as span:
            chunks = [
                self._inner.get_range(bucket, key, start, length)
                for start, length in ranges
            ]
            sizes = [len(chunk) for chunk in chunks]
            with self._lock:
                self.stats.get_requests += len(ranges)
                self.stats.bytes_read += sum(sizes)
            span.set(bytes=sum(sizes))
            span.charge(self._charge(self._model.parallel_get_cost(sizes, threads)))
        return chunks

    def head(self, bucket: str, key: str) -> ObjectStat:
        stat = self._inner.head(bucket, key)
        with self._lock:
            self.stats.get_requests += 1
        self._charge(self._model.request_latency_s)
        return stat

    def exists(self, bucket: str, key: str) -> bool:
        found = self._inner.exists(bucket, key)
        with self._lock:
            self.stats.get_requests += 1
        self._charge(self._model.request_latency_s)
        return found

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        stats = self._inner.list(bucket, prefix)
        with self._lock:
            self.stats.list_requests += 1
        self._charge(self._model.list_cost(len(stats)))
        return stats

    def delete(self, bucket: str, key: str) -> None:
        self._inner.delete(bucket, key)
        with self._lock:
            self.stats.delete_requests += 1
        self._charge(self._model.delete_cost())
