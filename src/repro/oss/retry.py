"""Retry layer for transient object-store failures.

Real object stores throttle and fail transiently (HTTP 5xx, connection
resets); production clients retry with exponential backoff.  The
wrapper below adds that behaviour to any backend; :class:`FlakyStore`
is the deterministic fault injector the tests and chaos benches drive
it with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import TransientStoreError
from repro.oss.store import ObjectStat, ObjectStore

DEFAULT_MAX_ATTEMPTS = 4
DEFAULT_BACKOFF_S = 0.05


@dataclass
class RetryStats:
    """How often the retry layer had to intervene."""

    attempts: int = 0
    retries: int = 0
    giveups: int = 0


class RetryingObjectStore:
    """Retries transient failures with exponential backoff.

    Backoff sleeps are charged to ``clock`` (simulated time).  After
    ``max_attempts`` consecutive transient failures, the last error
    propagates — callers treat that like any other storage outage.
    """

    def __init__(
        self,
        inner: ObjectStore,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_s: float = DEFAULT_BACKOFF_S,
        clock: Clock | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        self._inner = inner
        self._max_attempts = max_attempts
        self._backoff = backoff_s
        self._clock = clock if clock is not None else VirtualClock()
        self.stats = RetryStats()

    def _call(self, operation, *args):
        delay = self._backoff
        for attempt in range(1, self._max_attempts + 1):
            self.stats.attempts += 1
            try:
                return operation(*args)
            except TransientStoreError:
                if attempt == self._max_attempts:
                    self.stats.giveups += 1
                    raise
                self.stats.retries += 1
                self._clock.sleep(delay)
                delay *= 2

    # -- ObjectStore interface, all routed through _call ---------------------

    def create_bucket(self, bucket: str) -> None:
        self._call(self._inner.create_bucket, bucket)

    def delete_bucket(self, bucket: str) -> None:
        self._call(self._inner.delete_bucket, bucket)

    def put(self, bucket: str, key: str, data: bytes) -> None:
        self._call(self._inner.put, bucket, key, data)

    def get(self, bucket: str, key: str) -> bytes:
        return self._call(self._inner.get, bucket, key)

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        return self._call(self._inner.get_range, bucket, key, start, length)

    def head(self, bucket: str, key: str) -> ObjectStat:
        return self._call(self._inner.head, bucket, key)

    def exists(self, bucket: str, key: str) -> bool:
        return self._call(self._inner.exists, bucket, key)

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        return self._call(self._inner.list, bucket, prefix)

    def delete(self, bucket: str, key: str) -> None:
        self._call(self._inner.delete, bucket, key)


class FlakyStore:
    """Fault injector: fails a deterministic fraction of operations.

    ``fail_rate`` is the probability each call raises
    :class:`TransientStoreError` (seeded, reproducible).  ``fail_next``
    forces the next N calls to fail, for precise test scenarios.
    Failures happen *before* the inner call, so a failed ``put`` has no
    partial effect — matching object stores' atomic-PUT semantics.
    """

    def __init__(self, inner: ObjectStore, fail_rate: float = 0.0, seed: int = 0) -> None:
        if not 0 <= fail_rate <= 1:
            raise ValueError(f"fail_rate must be in [0, 1], got {fail_rate}")
        self._inner = inner
        self._fail_rate = fail_rate
        self._rng = random.Random(seed)
        self._forced_failures = 0
        self.failures_injected = 0

    def fail_next(self, count: int = 1) -> None:
        self._forced_failures += count

    def _maybe_fail(self, operation: str) -> None:
        if self._forced_failures > 0:
            self._forced_failures -= 1
            self.failures_injected += 1
            raise TransientStoreError(f"injected failure in {operation}")
        if self._fail_rate and self._rng.random() < self._fail_rate:
            self.failures_injected += 1
            raise TransientStoreError(f"injected failure in {operation}")

    def create_bucket(self, bucket: str) -> None:
        self._maybe_fail("create_bucket")
        self._inner.create_bucket(bucket)

    def delete_bucket(self, bucket: str) -> None:
        self._maybe_fail("delete_bucket")
        self._inner.delete_bucket(bucket)

    def put(self, bucket: str, key: str, data: bytes) -> None:
        self._maybe_fail("put")
        self._inner.put(bucket, key, data)

    def get(self, bucket: str, key: str) -> bytes:
        self._maybe_fail("get")
        return self._inner.get(bucket, key)

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        self._maybe_fail("get_range")
        return self._inner.get_range(bucket, key, start, length)

    def head(self, bucket: str, key: str) -> ObjectStat:
        self._maybe_fail("head")
        return self._inner.head(bucket, key)

    def exists(self, bucket: str, key: str) -> bool:
        self._maybe_fail("exists")
        return self._inner.exists(bucket, key)

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        self._maybe_fail("list")
        return self._inner.list(bucket, prefix)

    def delete(self, bucket: str, key: str) -> None:
        self._maybe_fail("delete")
        self._inner.delete(bucket, key)
