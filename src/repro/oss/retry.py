"""Retry layer for transient object-store failures.

Real object stores throttle and fail transiently (HTTP 5xx, connection
resets); production clients retry with **capped exponential backoff and
jitter** and bound the total time any one operation may spend retrying.
The wrapper below adds that behaviour to any backend; :class:`FlakyStore`
is the deterministic fault injector the tests and chaos benches drive
it with (richer injectors live in :mod:`repro.chaos.oss_faults`).

Hardening details:

* backoff doubles per retry but is capped at ``max_backoff_s``;
* each sleep gets **deterministic seeded jitter** (a seeded RNG scales
  the delay by ``[1, 1 + jitter)``), so herds of clients decorrelate
  while every run stays replayable;
* a **per-operation retry budget** (``budget_s``) bounds the total
  backoff one logical operation may accumulate — when the budget is
  exhausted the operation gives up even if attempts remain, which is
  what keeps tail latency bounded during a long brownout;
* retried ``put`` calls are **idempotent**: object stores offer atomic
  PUT, but a torn upload can leave partial bytes behind before the
  error surfaces.  When a retry then hits ``ObjectAlreadyExists``, the
  wrapper verifies the stored bytes — identical means the original PUT
  won the race (success), different means a torn upload left garbage,
  which is deleted and rewritten.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import ObjectAlreadyExists, TransientStoreError
from repro.oss.store import ObjectStat, ObjectStore

DEFAULT_MAX_ATTEMPTS = 4
DEFAULT_BACKOFF_S = 0.05
DEFAULT_MAX_BACKOFF_S = 2.0
DEFAULT_BUDGET_S = 30.0
DEFAULT_JITTER = 0.25


@dataclass
class RetryStats:
    """How often the retry layer had to intervene."""

    attempts: int = 0
    retries: int = 0
    giveups: int = 0
    budget_exhausted: int = 0
    backoff_s: float = 0.0
    torn_puts_repaired: int = 0


class RetryingObjectStore:
    """Retries transient failures with capped, jittered backoff.

    Backoff sleeps are charged to ``clock`` (simulated time).  An
    operation gives up — the last error propagates — after
    ``max_attempts`` consecutive transient failures *or* once its
    accumulated backoff exceeds ``budget_s``, whichever comes first.
    Callers treat that like any other storage outage.

    When an ``obs`` handle is given, attempt/retry/giveup/backoff
    counters are mirrored into the metrics registry under
    ``logstore_oss_retry_*`` so dashboards see the retry pressure.
    """

    def __init__(
        self,
        inner: ObjectStore,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_s: float = DEFAULT_BACKOFF_S,
        clock: Clock | None = None,
        max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
        budget_s: float = DEFAULT_BUDGET_S,
        jitter: float = DEFAULT_JITTER,
        seed: int = 0,
        obs=None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if max_backoff_s < backoff_s:
            raise ValueError(
                f"max_backoff_s ({max_backoff_s}) must be >= backoff_s ({backoff_s})"
            )
        if budget_s < 0:
            raise ValueError(f"budget_s must be >= 0, got {budget_s}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self._inner = inner
        self._max_attempts = max_attempts
        self._backoff = backoff_s
        self._max_backoff = max_backoff_s
        self._budget = budget_s
        self._jitter = jitter
        self._rng = random.Random(seed)
        self._clock = clock if clock is not None else VirtualClock()
        self.stats = RetryStats()
        if obs is not None:
            registry = obs.registry
            self._attempts_counter = registry.counter(
                "logstore_oss_retry_attempts_total", "Object-store calls attempted."
            )
            self._retries_counter = registry.counter(
                "logstore_oss_retry_retries_total", "Transient failures retried."
            )
            self._giveups_counter = registry.counter(
                "logstore_oss_retry_giveups_total", "Operations that exhausted retries."
            )
            self._backoff_counter = registry.counter(
                "logstore_oss_retry_backoff_seconds_total",
                "Cumulative backoff charged to the clock.",
            )
        else:
            self._attempts_counter = None
            self._retries_counter = None
            self._giveups_counter = None
            self._backoff_counter = None

    @property
    def inner(self) -> ObjectStore:
        return self._inner

    def _next_delay(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic seeded jitter."""
        base = min(self._backoff * (2 ** (attempt - 1)), self._max_backoff)
        return base * (1.0 + self._rng.random() * self._jitter)

    def _record_attempt(self) -> None:
        self.stats.attempts += 1
        if self._attempts_counter is not None:
            self._attempts_counter.add()

    def _record_retry(self, delay: float) -> None:
        self.stats.retries += 1
        self.stats.backoff_s += delay
        if self._retries_counter is not None:
            self._retries_counter.add()
            self._backoff_counter.add(delay)

    def _record_giveup(self, budget_exhausted: bool) -> None:
        self.stats.giveups += 1
        if budget_exhausted:
            self.stats.budget_exhausted += 1
        if self._giveups_counter is not None:
            self._giveups_counter.add()

    def _call(self, operation, *args):
        spent = 0.0
        for attempt in range(1, self._max_attempts + 1):
            self._record_attempt()
            try:
                return operation(*args)
            except TransientStoreError:
                if attempt == self._max_attempts:
                    self._record_giveup(budget_exhausted=False)
                    raise
                delay = self._next_delay(attempt)
                if spent + delay > self._budget:
                    self._record_giveup(budget_exhausted=True)
                    raise
                spent += delay
                self._record_retry(delay)
                self._clock.sleep(delay)

    # -- ObjectStore interface, all routed through _call ---------------------

    def create_bucket(self, bucket: str) -> None:
        self._call(self._inner.create_bucket, bucket)

    def delete_bucket(self, bucket: str) -> None:
        self._call(self._inner.delete_bucket, bucket)

    def put(self, bucket: str, key: str, data: bytes) -> None:
        """PUT with torn-upload recovery on retries.

        The first attempt propagates ``ObjectAlreadyExists`` untouched
        (a genuine double-write is a caller bug).  On *retries* the
        error means a prior attempt partially succeeded: verify the
        stored bytes and repair a torn object in place.
        """

        def attempt_put(state: dict) -> None:
            first = state["first"]
            state["first"] = False
            try:
                self._inner.put(bucket, key, data)
            except ObjectAlreadyExists:
                if first:
                    # No prior attempt ran, so nothing of ours can be
                    # at this key: a genuine double-write.
                    raise
                existing = self._inner.get(bucket, key)
                if existing == data:
                    return  # earlier attempt actually landed: idempotent success
                self.stats.torn_puts_repaired += 1
                self._inner.delete(bucket, key)
                self._inner.put(bucket, key, data)

        state = {"first": True}
        self._call(attempt_put, state)

    def get(self, bucket: str, key: str) -> bytes:
        return self._call(self._inner.get, bucket, key)

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        return self._call(self._inner.get_range, bucket, key, start, length)

    def head(self, bucket: str, key: str) -> ObjectStat:
        return self._call(self._inner.head, bucket, key)

    def exists(self, bucket: str, key: str) -> bool:
        return self._call(self._inner.exists, bucket, key)

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        return self._call(self._inner.list, bucket, prefix)

    def delete(self, bucket: str, key: str) -> None:
        self._call(self._inner.delete, bucket, key)


class FlakyStore:
    """Fault injector: fails a deterministic fraction of operations.

    ``fail_rate`` is the probability each call raises
    :class:`TransientStoreError` (seeded, reproducible).  ``fail_next``
    forces the next N calls to fail, for precise test scenarios.
    Failures happen *before* the inner call, so a failed ``put`` has no
    partial effect — matching object stores' atomic-PUT semantics.
    Torn uploads and latency faults live in
    :class:`repro.chaos.oss_faults.ChaosObjectStore`.
    """

    def __init__(self, inner: ObjectStore, fail_rate: float = 0.0, seed: int = 0) -> None:
        if not 0 <= fail_rate <= 1:
            raise ValueError(f"fail_rate must be in [0, 1], got {fail_rate}")
        self._inner = inner
        self._fail_rate = fail_rate
        self._rng = random.Random(seed)
        self._forced_failures = 0
        self.failures_injected = 0

    def fail_next(self, count: int = 1) -> None:
        self._forced_failures += count

    def _maybe_fail(self, operation: str) -> None:
        if self._forced_failures > 0:
            self._forced_failures -= 1
            self.failures_injected += 1
            raise TransientStoreError(f"injected failure in {operation}")
        if self._fail_rate and self._rng.random() < self._fail_rate:
            self.failures_injected += 1
            raise TransientStoreError(f"injected failure in {operation}")

    def create_bucket(self, bucket: str) -> None:
        self._maybe_fail("create_bucket")
        self._inner.create_bucket(bucket)

    def delete_bucket(self, bucket: str) -> None:
        self._maybe_fail("delete_bucket")
        self._inner.delete_bucket(bucket)

    def put(self, bucket: str, key: str, data: bytes) -> None:
        self._maybe_fail("put")
        self._inner.put(bucket, key, data)

    def get(self, bucket: str, key: str) -> bytes:
        self._maybe_fail("get")
        return self._inner.get(bucket, key)

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        self._maybe_fail("get_range")
        return self._inner.get_range(bucket, key, start, length)

    def head(self, bucket: str, key: str) -> ObjectStat:
        self._maybe_fail("head")
        return self._inner.head(bucket, key)

    def exists(self, bucket: str, key: str) -> bool:
        self._maybe_fail("exists")
        return self._inner.exists(bucket, key)

    def list(self, bucket: str, prefix: str = "") -> list[ObjectStat]:
        self._maybe_fail("list")
        return self._inner.list(bucket, prefix)

    def delete(self, bucket: str, key: str) -> None:
        self._maybe_fail("delete")
        self._inner.delete(bucket, key)
