"""``CREATE TABLE ... VERSION BY`` applied to the catalog.

The controller is the schema authority (§3: DDL updates the catalog
and brokers read it live), so "creating a table" here means replacing
the catalog's table definition.  The reproduction models exactly one
table per store — matching the paper's request_log evaluation — so
CREATE TABLE is legal only while the store holds no data, and
``IF NOT EXISTS`` makes re-runs of setup scripts idempotent.

Every front-door table gets the two system columns the engine routes
and prunes by: ``tenant_id`` (INT64) and ``ts`` (TIMESTAMP) are
prepended when the statement omits them, and a ``VERSION BY`` table
without an explicit version column gets ``version`` (INT64) appended.
"""

from __future__ import annotations

from repro.common.errors import QueryError
from repro.logblock.schema import ColumnSpec, ColumnType, TableSchema
from repro.query.sql import ParsedCreateTable


def schema_from_create(statement: ParsedCreateTable) -> tuple[TableSchema, str | None]:
    """Build the physical schema; returns (schema, version_column).

    ``version_column`` is None for unversioned tables; otherwise it
    names the column ingest stamps (``version``, unless the statement
    declared its own).
    """
    specs: list[ColumnSpec] = []
    declared = {column.name for column in statement.columns}
    if "tenant_id" not in declared:
        specs.append(ColumnSpec("tenant_id", ColumnType.INT64))
    if "ts" not in declared:
        specs.append(ColumnSpec("ts", ColumnType.TIMESTAMP))
    for column in statement.columns:
        specs.append(
            ColumnSpec(column.name, ColumnType[column.type_name], tokenize=column.tokenize)
        )
    version_column: str | None = None
    if statement.version_by is not None:
        version_column = "version"
        if version_column not in declared:
            specs.append(ColumnSpec(version_column, ColumnType.INT64))
        else:
            spec = next(s for s in specs if s.name == version_column)
            if spec.ctype not in (ColumnType.INT64, ColumnType.TIMESTAMP):
                raise QueryError(
                    f"the version column must be INT64 or TIMESTAMP, got {spec.ctype.name}"
                )
    return TableSchema(statement.table, tuple(specs)), version_column


def apply_create_table(store, statement: ParsedCreateTable) -> TableSchema:
    """Execute one CREATE TABLE against a store's catalog.

    Idempotent when the definition matches what is already installed
    (always under ``IF NOT EXISTS``, and also for an exact re-issue of
    the same statement); otherwise requires an empty store.
    """
    catalog = store.catalog
    new_schema, version_column = schema_from_create(statement)
    current = catalog.schema
    if current.name == statement.table:
        same_shape = current.columns == new_schema.columns
        current_spec = catalog.version_spec
        same_version = (
            (statement.version_by is None and current_spec is None)
            or (
                statement.version_by is not None
                and current_spec is not None
                and current_spec.key_column == statement.version_by
                and current_spec.version_column == version_column
            )
        )
        if statement.if_not_exists or (same_shape and same_version):
            return current  # table exists; nothing to do
        raise QueryError(
            f"table {statement.table!r} already exists with a different definition"
        )
    if store.pending_rows() > 0 or catalog.all_blocks():
        raise QueryError(
            "CREATE TABLE requires an empty store (one table per cluster "
            "in this reproduction); drain or rebuild instead"
        )
    catalog.replace_schema(new_schema)
    if statement.version_by is not None:
        catalog.set_version_spec(statement.version_by, version_column)
    store.schema = new_schema
    return new_schema
