"""SQL front door: sessions, versioned-table DDL, semantic rewrites.

The paper's Figure 3 shows applications consuming LogStore over the
SQL protocol; this package is that protocol surface.  It layers on top
of the cluster (never under it):

* :mod:`repro.frontdoor.auth` — per-tenant token authentication;
* :mod:`repro.frontdoor.session` — :class:`Session` / :class:`SessionPool`,
  statement dispatch, prepared-statement parameter binding, and
  ingest-time version stamping for append-only versioned tables;
* :mod:`repro.frontdoor.ddl` — ``CREATE TABLE ... VERSION BY`` applied
  to the catalog;
* :mod:`repro.frontdoor.rewrite` — the semantic-rewrite optimizer pass
  (window "latest row per key" → :class:`LatestVersionDedup`,
  ``IS NOT NULL`` → pushdown-friendly leaves).

Entry point: ``LogStore.connect(tenant_id, token)``.
"""

from repro.frontdoor.auth import TokenRegistry
from repro.frontdoor.ddl import apply_create_table, schema_from_create
from repro.frontdoor.rewrite import SemanticRewriter
from repro.frontdoor.session import InsertResult, PreparedStatement, Session, SessionPool

__all__ = [
    "TokenRegistry",
    "SemanticRewriter",
    "Session",
    "SessionPool",
    "PreparedStatement",
    "InsertResult",
    "apply_create_table",
    "schema_from_create",
]
