"""The semantic-rewrite optimizer pass.

Runs between parsing and planning on every broker query.  Each rule
recognizes a query shape whose *meaning* admits a cheaper plan and
rewrites it; the applied rule names travel on the plan (``EXPLAIN``
shows them) and are counted in the metrics registry.

Rules:

``latest_by_key``
    The append-only versioned-table read idiom::

        SELECT cols FROM (
            SELECT *, ROW_NUMBER() OVER (
                PARTITION BY key ORDER BY version DESC) AS rn
            FROM t WHERE inner_pred
        ) WHERE rn = 1 AND outer_pred

    becomes a single-level query over ``t`` with inner_pred pushed to
    the scan, a :class:`~repro.query.dedup.DedupSpec` running the
    latest-version tournament on narrow ``(key, version)`` columns,
    and ``outer_pred`` applied to winners only (filtering *before* the
    tournament would change which version wins).

``notnull_pushdown``
    ``NOT (col IS NULL)`` — what the parser emits for
    ``col IS NOT NULL`` — becomes the :class:`~repro.query.ast.NotNull`
    leaf, which prunes via SMA null counts and short-circuits whole
    all-valued blocks instead of materializing a negated bitset.
"""

from __future__ import annotations

from repro.obs.report import SEMANTIC_REWRITES
from repro.query.ast import And, CmpOp, Comparison, Expr, IsNull, Not, NotNull, Or, conjuncts
from repro.query.dedup import DedupSpec
from repro.query.sql import ParsedQuery


def _fold_notnull(expr: Expr) -> Expr:
    """Bottom-up ``Not(IsNull(c))`` → ``NotNull(c)`` over one tree."""
    if isinstance(expr, Not):
        child = _fold_notnull(expr.child)
        if isinstance(child, IsNull):
            return NotNull(child.column)
        if isinstance(child, NotNull):
            return IsNull(child.column)  # double negation folds too
        return Not(child)
    if isinstance(expr, And):
        return And(tuple(_fold_notnull(c) for c in expr.children))
    if isinstance(expr, Or):
        return Or(tuple(_fold_notnull(c) for c in expr.children))
    return expr


class SemanticRewriter:
    """Applies every recognizing rule once, in a fixed order."""

    def __init__(self, registry=None) -> None:
        self._registry = registry

    def _count(self, rule: str) -> None:
        if self._registry is not None:
            self._registry.counter(
                SEMANTIC_REWRITES,
                "Semantic-rewrite rule applications by the front-door optimizer.",
                rule=rule,
            ).add()

    def rewrite(self, query: ParsedQuery) -> tuple[ParsedQuery, list[str]]:
        """Returns the (possibly) rewritten query and the applied rules."""
        applied: list[str] = []
        rewritten = self._latest_by_key(query)
        if rewritten is not None:
            query = rewritten
            applied.append("latest_by_key")
        query, folded = self._notnull_pushdown(query)
        if folded:
            applied.append("notnull_pushdown")
        for rule in applied:
            self._count(rule)
        return query, applied

    # -- latest_by_key -----------------------------------------------------

    def _latest_by_key(self, outer: ParsedQuery) -> ParsedQuery | None:
        inner = outer.subquery
        if inner is None or inner.window is None:
            return None
        window = inner.window
        if window.func != "row_number" or not window.order_desc:
            return None  # rank 1 ascending is "oldest", not our operator
        if not inner.select_star or inner.is_aggregate:
            return None
        if inner.group_by is not None or inner.order_by is not None or inner.limit is not None:
            return None
        if outer.where is None:
            return None
        alias = window.alias
        rank_one = None
        rest: list[Expr] = []
        for node in conjuncts(outer.where):
            is_rank_one = (
                isinstance(node, Comparison)
                and node.column == alias
                and node.op is CmpOp.EQ
                and node.value == 1
            )
            if is_rank_one and rank_one is None:
                rank_one = node
            elif alias in node.columns():
                return None  # other rank predicates (rn <= 5, OR over rn, ...)
            else:
                rest.append(node)
        if rank_one is None:
            return None
        if len(rest) == 0:
            post_filter = None
        elif len(rest) == 1:
            post_filter = rest[0]
        else:
            post_filter = And(tuple(rest))
        return ParsedQuery(
            table=inner.table,
            select=outer.select,
            where=inner.where,
            group_by=outer.group_by,
            order_by=outer.order_by,
            order_desc=outer.order_desc,
            limit=outer.limit,
            select_star=outer.select_star,
            raw_sql=outer.raw_sql,
            dedup=DedupSpec(
                key_column=window.partition_by,
                version_column=window.order_by,
                post_filter=post_filter,
            ),
        )

    # -- notnull_pushdown --------------------------------------------------

    def _notnull_pushdown(self, query: ParsedQuery) -> tuple[ParsedQuery, bool]:
        changed = False
        if query.where is not None:
            folded = _fold_notnull(query.where)
            if folded != query.where:
                query.where = folded
                changed = True
        dedup = query.dedup
        if isinstance(dedup, DedupSpec) and dedup.post_filter is not None:
            folded = _fold_notnull(dedup.post_filter)
            if folded != dedup.post_filter:
                query.dedup = DedupSpec(
                    key_column=dedup.key_column,
                    version_column=dedup.version_column,
                    post_filter=folded,
                )
                changed = True
        inner = query.subquery
        if inner is not None and inner.where is not None:
            folded = _fold_notnull(inner.where)
            if folded != inner.where:
                inner.where = folded
                changed = True
        return query, changed
