"""Per-tenant token authentication for front-door sessions.

Tokens are derived deterministically from the store's seed (HMAC-style
keyed digest), so chaos runs replay byte for byte: the same
``(seed, tenant)`` always issues the same token, and no randomness or
wall-clock enters the derivation.  This models the shared-secret
credential a real multi-tenant front end would verify per connection —
the point here is the *enforcement surface* (every session is bound to
exactly one tenant), not cryptographic novelty.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.common.errors import AuthError


class TokenRegistry:
    """Issues and validates per-tenant connection tokens."""

    def __init__(self, secret_seed: int = 0) -> None:
        self._secret_seed = secret_seed
        self._revoked: set[int] = set()
        self._admin_revoked = False

    def issue(self, tenant_id: int) -> str:
        """Token for ``tenant_id`` (idempotent; re-issuing un-revokes)."""
        self._revoked.discard(tenant_id)
        return self._derive(tenant_id)

    def _derive(self, tenant_id: int) -> str:
        material = f"logstore-frontdoor-{self._secret_seed}:{tenant_id}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def validate(self, tenant_id: int, token: str) -> None:
        """Raise :class:`AuthError` unless ``token`` authorizes the tenant."""
        if tenant_id in self._revoked:
            raise AuthError(f"credentials for tenant {tenant_id} are revoked")
        expected = self._derive(tenant_id)
        if not isinstance(token, str) or not hmac.compare_digest(expected, token):
            raise AuthError(f"invalid token for tenant {tenant_id}")

    def revoke(self, tenant_id: int) -> None:
        self._revoked.add(tenant_id)

    # -- admin (cluster-operator) scope --------------------------------

    def issue_admin(self) -> str:
        """Operator token (idempotent; re-issuing un-revokes).

        Derived from the same seed under a distinct namespace, so it
        never collides with any tenant token.
        """
        self._admin_revoked = False
        return self._derive_admin()

    def _derive_admin(self) -> str:
        material = f"logstore-frontdoor-{self._secret_seed}:admin"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def validate_admin(self, token: str) -> None:
        """Raise :class:`AuthError` unless ``token`` is the operator token."""
        if self._admin_revoked:
            raise AuthError("admin credentials are revoked")
        expected = self._derive_admin()
        if not isinstance(token, str) or not hmac.compare_digest(expected, token):
            raise AuthError("invalid admin token")

    def revoke_admin(self) -> None:
        self._admin_revoked = True
