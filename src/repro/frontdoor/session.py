"""Front-door sessions: authenticated, tenant-scoped statement dispatch.

A :class:`Session` is the unit of client state the SQL protocol layer
holds per connection (Figure 3's "Application (SQL Protocol)" edge):

* it is authenticated once, against the per-tenant token registry, and
  every statement it runs is scoped to that tenant — reads get the
  scope threaded through the planner (an out-of-scope filter raises
  :class:`AuthError`, a missing one is injected), writes must carry the
  session's tenant or none at all;
* it dispatches by statement class: SELECT → broker query path,
  INSERT → version-stamped ingest, CREATE TABLE → catalog DDL;
* it supports prepared-statement-style ``?`` parameter binding.

Versioned tables (``VERSION BY key``) get INSERT-as-UPDATE semantics
here: every inserted row is stamped with a nanosecond ``version`` from
the pool's shared :class:`VersionStamper` (strictly monotonic, so two
writes of the same key in the same clock instant still order), and
"latest row per key" reads resolve through the dedup machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AuthError, QueryError
from repro.logblock.schema import ColumnType
from repro.query.planner import parse_timestamp
from repro.query.sql import (
    ParsedAlterTenant,
    ParsedCreateTable,
    ParsedInsert,
    ParsedQuery,
    bind_parameters,
    parse_statement,
)


class VersionStamper:
    """Strictly monotonic nanosecond version source.

    Derived from the virtual clock, bumped by at least 1 per stamp so
    rows stamped within one clock instant still have a total order —
    INSERT-as-UPDATE needs "later write, greater version" to hold
    unconditionally.
    """

    def __init__(self, clock) -> None:
        self._clock = clock
        self._last = 0

    def next(self) -> int:
        now_ns = int(round(self._clock.now() * 1e9))
        self._last = max(now_ns, self._last + 1)
        return self._last


@dataclass
class InsertResult:
    """Ack for one INSERT statement."""

    table: str
    rows_inserted: int
    versions: list[int | None] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)


class PreparedStatement:
    """A statement template with ``?`` placeholders, bound per execute."""

    def __init__(self, session: "Session", sql: str) -> None:
        self._session = session
        self.sql = sql

    def execute(self, params=()):
        return self._session.execute(self.sql, params)


class Session:
    """One authenticated client connection, scoped to one tenant.

    Admin sessions (``admin=True``, opened via the operator token) have
    no tenant scope: reads run unscoped, `_system` tables show every
    tenant, and INSERTs must carry an explicit ``tenant_id`` per row.
    """

    def __init__(
        self,
        store,
        tenant_id: int | None,
        stamper: VersionStamper,
        admin: bool = False,
    ) -> None:
        if not admin and tenant_id is None:
            raise AuthError("non-admin sessions must be scoped to a tenant")
        self._store = store
        self.tenant_id = tenant_id
        self.admin = admin
        self._stamper = stamper
        self.closed = False
        # The rows of the most recent INSERT, recorded *before* the
        # write is dispatched — a crash mid-write leaves them here for
        # the chaos ledger to mark indeterminate.
        self.last_insert_rows: list[dict] = []

    @property
    def scope(self) -> int | None:
        """The tenant filter this session's reads run under (None = admin)."""
        return None if self.admin else self.tenant_id

    # -- statement dispatch ------------------------------------------------

    def execute(self, sql: str, params=()):
        """Run one statement; return type depends on the statement class
        (SELECT → QueryResult, INSERT → InsertResult, CREATE → schema).
        """
        self._check_open()
        bound = bind_parameters(sql, params) if params else sql
        statement = parse_statement(bound)
        if isinstance(statement, ParsedQuery):
            # `statement=sql` keeps the client's original text (with
            # `?` placeholders) for the slow-query log.
            return self._store.query(bound, tenant_scope=self.scope, statement=sql)
        if isinstance(statement, ParsedInsert):
            return self._insert(statement)
        if isinstance(statement, ParsedCreateTable):
            return self._store.create_table(statement)
        if isinstance(statement, ParsedAlterTenant):
            return self._alter_tenant(statement)
        raise QueryError(f"unsupported statement {type(statement).__name__}")

    def _alter_tenant(self, statement: ParsedAlterTenant):
        """``ALTER TENANT ... SET RETENTION``: update the lifecycle policy.

        Admin sessions may alter any tenant; a scoped session only its
        own.  Clauses absent from the statement leave the existing knob
        untouched, so ``SET RETENTION TTL '30d'`` does not clear a
        configured cold-age.  Returns the resulting policy.
        """
        if not self.admin and statement.tenant_id != self.tenant_id:
            raise AuthError(
                f"session is scoped to tenant {self.tenant_id} and cannot "
                f"alter tenant {statement.tenant_id}"
            )
        from repro.lifecycle.policy import RetentionPolicy, parse_duration

        current = self._store.lifecycle.policy(statement.tenant_id)
        ttl_s = (
            parse_duration(statement.ttl) if statement.set_ttl else current.ttl_s
        )
        cold_age_s = (
            parse_duration(statement.cold_age)
            if statement.set_cold_age
            else current.cold_age_s
        )
        policy = RetentionPolicy(ttl_s=ttl_s, cold_age_s=cold_age_s)
        self._store.lifecycle.set_policy(statement.tenant_id, policy)
        return policy

    def prepare(self, sql: str) -> PreparedStatement:
        self._check_open()
        return PreparedStatement(self, sql)

    def explain(self, sql: str, params=()) -> str:
        self._check_open()
        bound = bind_parameters(sql, params) if params else sql
        return self._store.explain(bound, tenant_scope=self.scope)

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise QueryError("session is closed")

    # -- INSERT (version-stamped ingest) -----------------------------------

    def _insert(self, statement: ParsedInsert) -> InsertResult:
        schema = self._store.catalog.schema
        if statement.table != schema.name:
            raise QueryError(
                f"unknown table {statement.table!r} (expected {schema.name!r})"
            )
        columns = list(statement.columns) if statement.columns is not None else None
        if columns is None:
            columns = schema.column_names()
        else:
            for column in columns:
                schema.column(column)  # SchemaError on unknown column
        version_spec = self._store.catalog.version_spec
        rows: list[dict] = []
        versions: list[int | None] = []
        for values in statement.rows:
            if len(values) != len(columns):
                raise QueryError(
                    f"INSERT row has {len(values)} values for {len(columns)} columns"
                )
            row = {name: None for name in schema.column_names()}
            row.update(dict(zip(columns, values)))
            self._stamp_row(row, schema, version_spec)
            schema.validate_row(row)
            versions.append(
                row.get(version_spec.version_column) if version_spec is not None else None
            )
            rows.append(row)
        self.last_insert_rows = rows
        if self.admin:
            tenants = {row.get("tenant_id") for row in rows}
            if len(tenants) != 1:
                raise QueryError(
                    "admin INSERT must target exactly one tenant per statement"
                )
            target_tenant = tenants.pop()
        else:
            target_tenant = self.tenant_id
        self._store.put(target_tenant, rows)
        return InsertResult(
            table=statement.table,
            rows_inserted=len(rows),
            versions=versions,
            rows=rows,
        )

    def _stamp_row(self, row: dict, schema, version_spec) -> None:
        tenant = row.get("tenant_id")
        if self.admin:
            if tenant is None:
                raise QueryError(
                    "admin sessions have no tenant scope: INSERT rows must "
                    "carry an explicit tenant_id"
                )
        elif tenant is None:
            row["tenant_id"] = self.tenant_id
        elif tenant != self.tenant_id:
            raise AuthError(
                f"session is scoped to tenant {self.tenant_id} but the INSERT "
                f"carries tenant_id {tenant!r}"
            )
        # TIMESTAMP columns accept 'YYYY-MM-DD HH:MM:SS' strings.
        for name in schema.column_names():
            spec = schema.column(name)
            if spec.ctype is ColumnType.TIMESTAMP and isinstance(row.get(name), str):
                row[name] = parse_timestamp(row[name])
        if row.get("ts") is None and "ts" in schema.column_names():
            row["ts"] = int(self._store.clock.now() * 1_000_000)
        if version_spec is not None and row.get(version_spec.version_column) is None:
            row[version_spec.version_column] = self._stamper.next()


class SessionPool:
    """Owns live sessions and the shared version stamper."""

    def __init__(self, store, tokens, max_sessions: int = 64) -> None:
        self._store = store
        self._tokens = tokens
        self._max_sessions = max_sessions
        self.stamper = VersionStamper(store.clock)
        self._sessions: list[Session] = []

    def connect(self, tenant_id: int, token: str) -> Session:
        """Authenticate and open one tenant-scoped session."""
        self._tokens.validate(tenant_id, token)
        return self._open(Session(self._store, tenant_id, self.stamper))

    def connect_admin(self, token: str) -> Session:
        """Authenticate the operator token and open an unscoped session."""
        self._tokens.validate_admin(token)
        return self._open(Session(self._store, None, self.stamper, admin=True))

    def _open(self, session: Session) -> Session:
        self._sessions = [s for s in self._sessions if not s.closed]
        if len(self._sessions) >= self._max_sessions:
            raise QueryError(
                f"session pool exhausted ({self._max_sessions} live sessions)"
            )
        self._sessions.append(session)
        return session

    def live_sessions(self) -> int:
        self._sessions = [s for s in self._sessions if not s.closed]
        return len(self._sessions)

    def close_all(self) -> None:
        for session in self._sessions:
            session.close()
        self._sessions = []
