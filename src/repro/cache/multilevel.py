"""Multi-level cache facade (§5.2, Figure 9).

Wires the object cache (decoded members) over the tiered block cache
(raw byte ranges) over the metered OSS store.  The query path reads
through :class:`CachingRangeReader`, which satisfies the pack reader's
``get_range`` protocol:

    object cache  →  memory block cache  →  SSD block cache  →  OSS

Only the final OSS miss pays the cost model; SSD hits pay the (small)
SSD cost when one is configured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.block_cache import TieredBlockCache
from repro.cache.object_cache import ObjectCache
from repro.obs.tracing import Tracer
from repro.oss.metered import MeteredObjectStore

_NOOP_TRACER = Tracer(None, enabled=False)


@dataclass
class CacheSummary:
    """Aggregated hit/miss picture across every tier."""

    object_hits: int
    object_misses: int
    memory_hits: int
    memory_misses: int
    ssd_hits: int
    ssd_misses: int

    @property
    def oss_reads(self) -> int:
        """Requests that fell all the way through to OSS."""
        return self.ssd_misses


class MultiLevelCache:
    """Owns the object cache and the tiered block cache."""

    def __init__(
        self,
        memory_bytes: int = 8 * 1024 * 1024 * 1024,
        ssd_bytes: int = 200 * 1024 * 1024 * 1024,
        object_bytes: int = 512 * 1024 * 1024,
        ssd_read_cost_s: float = 0.0001,
        charge=None,
    ) -> None:
        self.objects = ObjectCache(object_bytes)
        self.blocks = TieredBlockCache(
            memory_bytes=memory_bytes,
            ssd_bytes=ssd_bytes,
            ssd_read_cost=ssd_read_cost_s,
            charge=charge,
        )

    def summary(self) -> CacheSummary:
        return CacheSummary(
            object_hits=self.objects.stats.hits,
            object_misses=self.objects.stats.misses,
            memory_hits=self.blocks.memory.stats.hits,
            memory_misses=self.blocks.memory.stats.misses,
            ssd_hits=self.blocks.ssd.stats.hits,
            ssd_misses=self.blocks.ssd.stats.misses,
        )

    def invalidate_blob(self, bucket: str, key: str) -> None:
        """Drop everything cached for one blob (after expiry/compaction)."""
        self.objects.invalidate_blob(bucket, key)
        self.blocks.invalidate_object(bucket, key)

    def clear(self) -> None:
        self.objects.clear()
        self.blocks.clear()


class CachingRangeReader:
    """RangeReader over OSS with the tiered block cache in front."""

    def __init__(
        self,
        store: MeteredObjectStore,
        cache: MultiLevelCache,
        tracer: Tracer | None = None,
    ) -> None:
        self._store = store
        self._cache = cache
        self._tracer = tracer if tracer is not None else _NOOP_TRACER

    @property
    def store(self) -> MeteredObjectStore:
        return self._store

    @property
    def cache(self) -> MultiLevelCache:
        return self._cache

    def get_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        block_key = (bucket, key, start, length)
        data = self._cache.blocks.get(block_key)
        if data is not None:
            with self._tracer.span("cache.hit", key=key, start=start, bytes=len(data)):
                pass
            return data
        data = self._store.get_range(bucket, key, start, length)
        self._cache.blocks.put(block_key, data)
        return data

    def get_ranges_parallel(
        self,
        bucket: str,
        key: str,
        ranges: list[tuple[int, int]],
        threads: int,
    ) -> list[bytes]:
        """Batched ranged fetch that only pays OSS for cache misses."""
        out: list[bytes | None] = [None] * len(ranges)
        miss_positions: list[int] = []
        miss_ranges: list[tuple[int, int]] = []
        for position, (start, length) in enumerate(ranges):
            block_key = (bucket, key, start, length)
            data = self._cache.blocks.get(block_key)
            if data is not None:
                out[position] = data
            else:
                miss_positions.append(position)
                miss_ranges.append((start, length))
        hits = len(ranges) - len(miss_ranges)
        if hits:
            with self._tracer.span(
                "cache.hit",
                key=key,
                blocks=hits,
                bytes=sum(len(d) for d in out if d is not None),
            ):
                pass
        if miss_ranges:
            fetched = self._store.get_ranges_parallel(bucket, key, miss_ranges, threads)
            for position, (start, length), data in zip(miss_positions, miss_ranges, fetched):
                self._cache.blocks.put((bucket, key, start, length), data)
                out[position] = data
        return [data for data in out if data is not None]
