"""Decoded-object cache (§5.2 "object memory cache").

Caches *parsed* objects — LogBlock metas, decoded indexes, decompressed
column blocks — keyed by (blob, member).  The paper motivates this tier
by allocation/GC pressure in the JVM; in Python the analogous win is
skipping repeated decompression + deserialization of the same member.
Capacity is bounded by an approximate size estimate per entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

ObjectKey = tuple[str, str, str]  # (bucket, blob_key, member_or_tag)


@dataclass
class ObjectCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    approx_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ObjectCache:
    """LRU cache of decoded objects with approximate byte accounting."""

    def __init__(self, capacity_bytes: int = 512 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[ObjectKey, tuple[object, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = ObjectCacheStats()

    def get(self, key: ObjectKey) -> object | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def contains(self, key: ObjectKey) -> bool:
        """Presence probe that does NOT touch hit/miss stats or LRU order.

        Prefetch planning uses this to skip loading raw bytes for
        members whose decoded form is already cached, without skewing
        the hit-rate accounting of real lookups.
        """
        with self._lock:
            return key in self._entries

    def put(self, key: ObjectKey, value: object, approx_bytes: int) -> None:
        if approx_bytes > self._capacity:
            return
        with self._lock:
            if key in self._entries:
                _old, old_size = self._entries.pop(key)
                self.stats.approx_bytes -= old_size
            self._entries[key] = (value, approx_bytes)
            self.stats.approx_bytes += approx_bytes
            while self.stats.approx_bytes > self._capacity:
                _victim_key, (_victim, size) = self._entries.popitem(last=False)
                self.stats.approx_bytes -= size
                self.stats.evictions += 1

    def get_or_load(
        self, key: ObjectKey, loader: Callable[[], tuple[object, int]]
    ) -> object:
        """Fetch from cache, or call ``loader`` → (value, approx_bytes)."""
        value = self.get(key)
        if value is not None:
            return value
        value, approx_bytes = loader()
        self.put(key, value, approx_bytes)
        return value

    def invalidate_blob(self, bucket: str, blob_key: str) -> int:
        with self._lock:
            victims = [k for k in self._entries if k[0] == bucket and k[1] == blob_key]
            for victim in victims:
                _value, size = self._entries.pop(victim)
                self.stats.approx_bytes -= size
            return len(victims)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.approx_bytes = 0
