"""Byte-range block caches: memory tier spilling to an SSD tier.

§5.2: "We put each file block loaded from OSS into the memory block
cache (8GB).  When its size exceeds the threshold, the memory cache
will spill to the SSD block cache (200GB).  The block manager is
responsible for the expiration and swapping of the cache."

Keys are ``(bucket, key, start, length)`` — a specific byte range of a
specific object, which is exactly what the pack reader requests.
Eviction is LRU per tier; evicted memory blocks demote to the SSD tier,
SSD evictions are discarded (OSS remains the source of truth).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

BlockKey = tuple[str, str, int, int]


@dataclass
class CacheTierStats:
    """Hit/miss/eviction counters for one tier."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruBlockCache:
    """A single LRU tier bounded by total cached bytes."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.name = name
        self._capacity = capacity_bytes
        self._entries: OrderedDict[BlockKey, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheTierStats()

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def get(self, key: BlockKey) -> bytes | None:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return data

    def put(self, key: BlockKey, data: bytes) -> list[tuple[BlockKey, bytes]]:
        """Insert; returns the entries evicted to make room.

        A block larger than the whole tier is not cached (and nothing is
        evicted for it).
        """
        if len(data) > self._capacity:
            return []
        evicted: list[tuple[BlockKey, bytes]] = []
        with self._lock:
            if key in self._entries:
                old = self._entries.pop(key)
                self.stats.bytes_cached -= len(old)
            self._entries[key] = data
            self.stats.bytes_cached += len(data)
            self.stats.insertions += 1
            while self.stats.bytes_cached > self._capacity:
                victim_key, victim = self._entries.popitem(last=False)
                self.stats.bytes_cached -= len(victim)
                self.stats.evictions += 1
                evicted.append((victim_key, victim))
        return evicted

    def invalidate_object(self, bucket: str, key: str) -> int:
        """Drop all ranges of one object (e.g. after expiry); returns count."""
        with self._lock:
            victims = [k for k in self._entries if k[0] == bucket and k[1] == key]
            for victim in victims:
                data = self._entries.pop(victim)
                self.stats.bytes_cached -= len(data)
            return len(victims)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes_cached = 0


class TieredBlockCache:
    """Memory tier + SSD tier with demotion, fronted as one cache.

    The SSD tier charges its cost model on hits (reading from local SSD
    is not free, just much cheaper than OSS); the memory tier is free.
    """

    def __init__(
        self,
        memory_bytes: int = 8 * 1024 * 1024 * 1024,
        ssd_bytes: int = 200 * 1024 * 1024 * 1024,
        ssd_read_cost: float = 0.0,
        charge: callable = None,
    ) -> None:
        self.memory = LruBlockCache("memory", memory_bytes)
        self.ssd = LruBlockCache("ssd", ssd_bytes)
        self._ssd_read_cost = ssd_read_cost
        self._charge = charge

    def get(self, key: BlockKey) -> bytes | None:
        data = self.memory.get(key)
        if data is not None:
            return data
        data = self.ssd.get(key)
        if data is not None:
            if self._charge is not None and self._ssd_read_cost > 0:
                self._charge(self._ssd_read_cost + len(data) / 2e9)
            # Promote back to memory on SSD hit.
            for victim_key, victim in self.memory.put(key, data):
                self.ssd.put(victim_key, victim)
            return data
        return None

    def put(self, key: BlockKey, data: bytes) -> None:
        for victim_key, victim in self.memory.put(key, data):
            self.ssd.put(victim_key, victim)

    def invalidate_object(self, bucket: str, key: str) -> int:
        return self.memory.invalidate_object(bucket, key) + self.ssd.invalidate_object(
            bucket, key
        )

    def clear(self) -> None:
        self.memory.clear()
        self.ssd.clear()
