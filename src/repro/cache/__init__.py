"""Multi-level data cache: object cache, memory and SSD block tiers (§5.2)."""

from repro.cache.block_cache import CacheTierStats, LruBlockCache, TieredBlockCache
from repro.cache.multilevel import CachingRangeReader, CacheSummary, MultiLevelCache
from repro.cache.object_cache import ObjectCache, ObjectCacheStats

__all__ = [
    "CacheTierStats",
    "LruBlockCache",
    "TieredBlockCache",
    "CachingRangeReader",
    "CacheSummary",
    "MultiLevelCache",
    "ObjectCache",
    "ObjectCacheStats",
]
