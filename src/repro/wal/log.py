"""Segmented write-ahead log.

Entries are framed (:mod:`repro.wal.record`) and appended to the active
segment; when a segment exceeds ``segment_bytes`` it is sealed and a new
one starts.  Segments before a checkpoint can be truncated.  Two storage
backends: in-memory (simulation) and directory-of-files (examples).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Protocol

from repro.common.errors import WalError
from repro.wal.record import (
    ENTRY_HEAD_SIZE,
    HEADER_SIZE,
    WalEntryEncoder,
    decode_frame,
    encode_entry_frames,
    encode_frame,
    iter_frames,
)

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class SegmentBackend(Protocol):
    """Persistence for numbered WAL segments."""

    def append(self, segment_id: int, data: bytes) -> None: ...

    def read(self, segment_id: int) -> bytes: ...

    def segments(self) -> list[int]: ...

    def delete(self, segment_id: int) -> None: ...


class MemorySegmentBackend:
    """Segments held in a dict; the simulation default."""

    def __init__(self) -> None:
        self._segments: dict[int, bytearray] = {}

    def append(self, segment_id: int, data: bytes) -> None:
        self._segments.setdefault(segment_id, bytearray()).extend(data)

    def read(self, segment_id: int) -> bytes:
        try:
            return bytes(self._segments[segment_id])
        except KeyError:
            raise WalError(f"no such WAL segment {segment_id}") from None

    def segments(self) -> list[int]:
        return sorted(self._segments)

    def delete(self, segment_id: int) -> None:
        self._segments.pop(segment_id, None)


class FileSegmentBackend:
    """Segments as ``NNNNNNNN.wal`` files under a directory."""

    def __init__(self, directory: str) -> None:
        self._dir = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, segment_id: int) -> str:
        return os.path.join(self._dir, f"{segment_id:08d}.wal")

    def append(self, segment_id: int, data: bytes) -> None:
        with open(self._path(segment_id), "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def read(self, segment_id: int) -> bytes:
        try:
            with open(self._path(segment_id), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise WalError(f"no such WAL segment {segment_id}") from None

    def segments(self) -> list[int]:
        ids = []
        for name in os.listdir(self._dir):
            if name.endswith(".wal"):
                ids.append(int(name[: -len(".wal")]))
        return sorted(ids)

    def delete(self, segment_id: int) -> None:
        try:
            os.unlink(self._path(segment_id))
        except FileNotFoundError:
            pass


@dataclass(frozen=True)
class WalEntry:
    """One logical WAL entry."""

    sequence: int
    kind: int
    body: bytes


class WriteAheadLog:
    """Append-only, replayable, checkpoint-truncatable log."""

    def __init__(
        self,
        backend: SegmentBackend | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if segment_bytes <= 0:
            raise WalError(f"segment_bytes must be positive, got {segment_bytes}")
        self._backend = backend if backend is not None else MemorySegmentBackend()
        self._segment_bytes = segment_bytes
        existing = self._backend.segments()
        self._active_segment = existing[-1] if existing else 0
        self.torn_tail_bytes_discarded = 0
        if existing:
            self._active_size = self._repair_torn_tail(self._active_segment)
        else:
            self._active_size = 0
        self._next_sequence = self._recover_next_sequence()
        self.flush_count = 0

    def _repair_torn_tail(self, segment_id: int) -> int:
        """Truncate the last segment to its longest valid frame prefix.

        A crash can leave a torn tail: a partially written final frame
        (short bytes) or a final frame whose payload no longer matches
        its CRC (partial sector overwrite).  Either way the torn frame
        was never acknowledged, so recovery keeps the longest valid
        prefix and discards the rest — leaving it in place would put
        garbage *mid-log* once new appends land after it.  CRC damage
        anywhere but the final frame still raises: that is real
        corruption of acknowledged data, not a tear.

        Returns the surviving segment length in bytes.
        """
        data = self._backend.read(segment_id)
        offset = 0
        while True:
            result = decode_frame(data, offset, tolerate_torn_tail=True)
            if result is None:
                break
            offset = result.next_offset
        if offset < len(data):
            self.torn_tail_bytes_discarded = len(data) - offset
            self._backend.delete(segment_id)
            if offset:
                self._backend.append(segment_id, data[:offset])
        return offset

    def _recover_next_sequence(self) -> int:
        last = -1
        for segment_id in self._backend.segments():
            for payload in iter_frames(self._backend.read(segment_id)):
                sequence, _kind, _body = WalEntryEncoder.decode(payload)
                if sequence <= last:
                    raise WalError(
                        f"non-monotonic WAL sequence {sequence} after {last} "
                        f"in segment {segment_id}"
                    )
                last = sequence
        return last + 1

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    @property
    def backend(self) -> SegmentBackend:
        """The durable medium — what survives a process crash."""
        return self._backend

    def append(self, kind: int, body: bytes) -> int:
        """Append an entry; returns its sequence number."""
        sequence = self._next_sequence
        frame = encode_frame(WalEntryEncoder.encode(sequence, kind, body))
        if self._active_size and self._active_size + len(frame) > self._segment_bytes:
            self._active_segment += 1
            self._active_size = 0
        self._backend.append(self._active_segment, frame)
        self.flush_count += 1
        self._active_size += len(frame)
        self._next_sequence += 1
        return sequence

    def append_many(self, entries: list[tuple[int, bytes]]) -> list[int]:
        """Append ``(kind, body)`` entries with coalesced frame flushes.

        The group-commit write: all frames destined for the same segment
        are encoded into one preallocated buffer
        (:func:`encode_entry_frames`) and handed to the backend in one
        ``append`` — one encode pass and one flush (fsync, for the file
        backend) amortized over the whole group instead of one
        ``struct.pack`` + append per entry.  Segment rollover still
        happens at the same byte boundaries as per-entry appends would
        produce, and the segment bytes are identical.
        """
        sequences: list[int] = []
        runs: list[tuple[int, list[tuple[int, int, bytes]]]] = []
        run: list[tuple[int, int, bytes]] = []
        stage = run.append
        frame_overhead = HEADER_SIZE + ENTRY_HEAD_SIZE
        active_size = self._active_size
        sequence = self._next_sequence
        for kind, body in entries:
            frame_size = frame_overhead + len(body)
            if active_size and active_size + frame_size > self._segment_bytes:
                if run:
                    runs.append((self._active_segment, run))
                    run = []
                    stage = run.append
                self._active_segment += 1
                active_size = 0
            stage((sequence, kind, body))
            active_size += frame_size
            sequences.append(sequence)
            sequence += 1
        if run:
            runs.append((self._active_segment, run))
        self._active_size = active_size
        self._next_sequence = sequence
        for segment_id, segment_entries in runs:
            self._backend.append(segment_id, encode_entry_frames(segment_entries))
            self.flush_count += 1
        return sequences

    def replay(self, from_sequence: int = 0) -> Iterator[WalEntry]:
        """Yield entries with ``sequence >= from_sequence`` in order."""
        for segment_id in self._backend.segments():
            for payload in iter_frames(self._backend.read(segment_id)):
                sequence, kind, body = WalEntryEncoder.decode(payload)
                if sequence >= from_sequence:
                    yield WalEntry(sequence, kind, body)

    def truncate_before(self, sequence: int) -> int:
        """Delete whole segments whose entries all precede ``sequence``.

        Returns the number of segments removed.  The active segment is
        never removed.
        """
        removed = 0
        for segment_id in self._backend.segments():
            if segment_id == self._active_segment:
                break
            max_seq = -1
            for payload in iter_frames(self._backend.read(segment_id)):
                max_seq = WalEntryEncoder.decode(payload)[0]
            if max_seq >= 0 and max_seq < sequence:
                self._backend.delete(segment_id)
                removed += 1
            else:
                break
        return removed

    def total_bytes(self) -> int:
        """Bytes across all live segments (storage-cost accounting)."""
        return sum(len(self._backend.read(s)) for s in self._backend.segments())
