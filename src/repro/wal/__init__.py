"""Write-ahead logging: framed records, segmented logs, replay."""

from repro.wal.log import (
    FileSegmentBackend,
    MemorySegmentBackend,
    WalEntry,
    WriteAheadLog,
)
from repro.wal.record import WalEntryEncoder, encode_frame, iter_frames

__all__ = [
    "FileSegmentBackend",
    "MemorySegmentBackend",
    "WalEntry",
    "WriteAheadLog",
    "WalEntryEncoder",
    "encode_frame",
    "iter_frames",
]
