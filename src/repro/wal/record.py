"""WAL record framing: length-prefixed, CRC-protected entries.

Frame layout::

    +-----------+----------+-------------------+
    | len: u32  | crc: u32 | payload (len)     |
    +-----------+----------+-------------------+

The CRC covers the payload only.  A torn tail (partial frame at the end
of a segment after a crash) is detected and treated as end-of-log during
replay, matching standard WAL semantics.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.common.errors import CorruptionError, WalError

_HEADER = struct.Struct("<II")
HEADER_SIZE = _HEADER.size
_ENTRY_HEAD = struct.Struct("<QB")
ENTRY_HEAD_SIZE = _ENTRY_HEAD.size


def encode_frame(payload: bytes) -> bytes:
    """Frame one payload for appending to a WAL segment."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(len(payload), crc) + payload


def entry_frame_size(body: bytes) -> int:
    """On-segment byte count of one framed ``(sequence, kind, body)`` entry."""
    return HEADER_SIZE + ENTRY_HEAD_SIZE + len(body)


def encode_entry_frames(entries: list[tuple[int, int, bytes]]) -> bytes:
    """Frame many ``(sequence, kind, body)`` entries into one buffer.

    The group-commit encode: all frame pieces are staged into one list
    and joined in a single C-level pass — one output buffer and one
    resulting backend append for the whole batch, instead of a
    ``struct.pack`` + bytes-concat + append per frame.  Byte-for-byte
    identical to concatenating per-entry
    ``encode_frame(WalEntryEncoder.encode(...))`` results.
    """
    pack_header = _HEADER.pack
    pack_head = _ENTRY_HEAD.pack
    crc32 = zlib.crc32
    parts: list[bytes] = []
    append = parts.append
    for sequence, kind, body in entries:
        if sequence < 0:
            raise WalError(f"negative WAL sequence {sequence}")
        head = pack_head(sequence, kind)
        # CRC over the whole payload (entry head + body) without
        # concatenating them: crc32 composes over a running state.
        append(pack_header(ENTRY_HEAD_SIZE + len(body), crc32(body, crc32(head)) & 0xFFFFFFFF))
        append(head)
        append(body)
    return b"".join(parts)


@dataclass(frozen=True)
class FrameResult:
    """Outcome of decoding one frame at an offset."""

    payload: bytes
    next_offset: int


def _contains_decodable_frame(data: bytes, start: int) -> bool:
    """True when an intact frame decodes anywhere in ``data[start:]``.

    Disambiguates a torn final frame from a corrupted *length* field: a
    bit-flipped length can make a mid-log frame appear to extend exactly
    to end-of-data, and tolerating that as a tear would silently discard
    the acknowledged frames after it.  Those later frames are untouched
    at their original offsets, so scanning the claimed payload region
    for any CRC-valid frame tells the two cases apart.  Zero-length
    candidates are skipped: any run of eight zero bytes decodes as an
    empty frame with a matching CRC, and no real entry is empty (the
    entry header alone is nine bytes).
    """
    for pos in range(start, len(data) - HEADER_SIZE + 1):
        length, crc = _HEADER.unpack_from(data, pos)
        if length == 0:
            continue
        payload_start = pos + HEADER_SIZE
        payload_end = payload_start + length
        if payload_end > len(data):
            continue
        if zlib.crc32(data[payload_start:payload_end]) & 0xFFFFFFFF == crc:
            return True
    return False


def decode_frame(
    data: bytes, offset: int, tolerate_torn_tail: bool = False
) -> FrameResult | None:
    """Decode the frame at ``offset``.

    Returns ``None`` for a clean end (offset at end of data) or a torn
    tail (not enough bytes for a complete frame).  Raises
    :class:`CorruptionError` for a CRC mismatch, which indicates damage
    *before* the tail and must not be silently skipped — unless
    ``tolerate_torn_tail`` is set, the damaged frame is the *final*
    frame of the data (it extends exactly to end-of-data), and no intact
    frame decodes inside its claimed payload: a crash can tear the last
    write's bytes without shortening them (e.g. a partial sector
    overwrite), and that frame was never acknowledged, so it is also
    treated as end-of-log.  An intact frame inside the claimed payload
    means the *length* was corrupted and acknowledged frames follow —
    that is mid-log damage and still raises.
    """
    if offset == len(data):
        return None
    if offset + HEADER_SIZE > len(data):
        return None  # torn header at tail
    length, crc = _HEADER.unpack_from(data, offset)
    start = offset + HEADER_SIZE
    end = start + length
    if end > len(data):
        return None  # torn payload at tail
    payload = data[start:end]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        if (
            tolerate_torn_tail
            and end == len(data)
            and not _contains_decodable_frame(data, start)
        ):
            return None  # corrupted final frame: torn tail, not mid-log damage
        raise CorruptionError(f"WAL CRC mismatch at offset {offset}")
    return FrameResult(payload=payload, next_offset=end)


def iter_frames(data: bytes, tolerate_torn_tail: bool = False):
    """Yield payloads of all complete frames; stops at a torn tail."""
    offset = 0
    while True:
        result = decode_frame(data, offset, tolerate_torn_tail=tolerate_torn_tail)
        if result is None:
            return
        yield result.payload
        offset = result.next_offset


def validate_segment(data: bytes) -> int:
    """Number of complete frames in a segment (raises on mid-log damage)."""
    count = 0
    for _ in iter_frames(data):
        count += 1
    return count


class WalEntryEncoder:
    """Encodes logical WAL entries: (sequence, kind, body)."""

    KIND_APPEND = 1
    KIND_SEAL = 2
    KIND_CHECKPOINT = 3

    @staticmethod
    def encode(sequence: int, kind: int, body: bytes) -> bytes:
        if sequence < 0:
            raise WalError(f"negative WAL sequence {sequence}")
        return _ENTRY_HEAD.pack(sequence, kind) + body

    @staticmethod
    def decode(payload: bytes) -> tuple[int, int, bytes]:
        if len(payload) < ENTRY_HEAD_SIZE:
            raise CorruptionError("WAL entry shorter than header")
        sequence, kind = _ENTRY_HEAD.unpack_from(payload)
        return sequence, kind, payload[ENTRY_HEAD_SIZE:]
