"""SQL-queryable ``_system`` tables.

Operators consume a database through SQL — including its introspection
surface.  The five read-only tables below are materialized on demand
from the obs layer and catalog (no storage, no snapshots kept), then
filtered/ordered/aggregated by the ordinary query machinery:

* ``_system.metrics``      — one row per registry child (live snapshot)
* ``_system.slow_queries`` — the slow-query log, incl. original SQL
* ``_system.events``       — the cluster event journal
* ``_system.alerts``       — alert history (active + resolved)
* ``_system.tenants``      — per-tenant usage, metering and SLO status

Auth scoping is enforced here, not in the planner: a non-admin session
passes its tenant scope and sees only rows belonging to that tenant —
rows without a tenant attribution (cluster-wide metrics, raft events)
are admin-only.
"""

from __future__ import annotations

from typing import Optional

SYSTEM_SCHEMA = "_system"
SYSTEM_TABLE_PREFIX = SYSTEM_SCHEMA + "."

# Fixed column orders: this is the `SELECT *` projection contract.
SYSTEM_TABLE_COLUMNS: dict[str, tuple[str, ...]] = {
    "_system.metrics": (
        "name",
        "kind",
        "labels",
        "tenant_id",
        "value",
        "count",
        "p99",
    ),
    "_system.slow_queries": (
        "at_s",
        "tenant_id",
        "statement",
        "latency_s",
        "rows_returned",
        "blocks_visited",
        "bytes_fetched",
    ),
    "_system.events": (
        "seq",
        "at_s",
        "kind",
        "target",
        "detail",
        "tenant_id",
        "trace_id",
    ),
    "_system.alerts": (
        "name",
        "state",
        "target",
        "tenant_id",
        "fired_at_s",
        "resolved_at_s",
        "value",
    ),
    "_system.tenants": (
        "tenant_id",
        "name",
        "blocks",
        "archived_bytes",
        "archived_rows",
        "retention_ttl",
        "cold_age",
        "hot_blocks",
        "cold_blocks",
        "expired_blocks_total",
        "bytes_ingested",
        "bytes_scanned",
        "oss_gets",
        "rows_ingested",
        "rows_returned",
        "cpu_cost_units",
        "p99_query_latency_s",
        "error_rate",
        "burn_rate",
        "slo_status",
    ),
}

SYSTEM_TABLES = tuple(sorted(SYSTEM_TABLE_COLUMNS))


def is_system_table(name: str) -> bool:
    return name.startswith(SYSTEM_TABLE_PREFIX)


def _labels_string(key) -> str:
    """Render a registry LabelKey as ``k=v,k=v`` (sorted, stable)."""
    return ",".join(f"{k}={v}" for k, v in key)


def _tenant_of(key) -> Optional[int]:
    for k, v in key:
        if k == "tenant" and isinstance(v, int):
            return v
    return None


def _metrics_rows(obs) -> list[dict]:
    snap = obs.registry.snapshot()
    rows: list[dict] = []
    for name in sorted(snap.counters):
        for key in sorted(snap.counters[name], key=str):
            rows.append(
                {
                    "name": name,
                    "kind": "counter",
                    "labels": _labels_string(key),
                    "tenant_id": _tenant_of(key),
                    "value": snap.counters[name][key],
                    "count": None,
                    "p99": None,
                }
            )
    for name in sorted(snap.gauges):
        for key in sorted(snap.gauges[name], key=str):
            rows.append(
                {
                    "name": name,
                    "kind": "gauge",
                    "labels": _labels_string(key),
                    "tenant_id": _tenant_of(key),
                    "value": snap.gauges[name][key],
                    "count": None,
                    "p99": None,
                }
            )
    for name in sorted(snap.histograms):
        for key in sorted(snap.histograms[name], key=str):
            hist = snap.histograms[name][key]
            rows.append(
                {
                    "name": name,
                    "kind": "histogram",
                    "labels": _labels_string(key),
                    "tenant_id": _tenant_of(key),
                    "value": hist.sum,
                    "count": hist.count,
                    "p99": hist.quantile(99),
                }
            )
    return rows


def _slow_query_rows(obs) -> list[dict]:
    return [
        {
            "at_s": entry.at_s,
            "tenant_id": entry.tenant_id,
            "statement": entry.statement or entry.query,
            "latency_s": entry.latency_s,
            "rows_returned": entry.rows_returned,
            "blocks_visited": entry.blocks_visited,
            "bytes_fetched": entry.bytes_fetched,
        }
        for entry in obs.slow_queries.entries()
    ]


def _event_rows(obs) -> list[dict]:
    return [
        {
            "seq": event.seq,
            "at_s": event.at_s,
            "kind": event.kind,
            "target": event.target,
            "detail": event.detail,
            "tenant_id": event.tenant_id,
            "trace_id": event.trace_id,
        }
        for event in obs.journal.events()
    ]


def _alert_rows(obs) -> list[dict]:
    if obs.alerts is None:
        return []
    return [
        {
            "name": alert.name,
            "state": alert.state,
            "target": alert.target,
            "tenant_id": alert.tenant_id,
            "fired_at_s": alert.fired_at_s,
            "resolved_at_s": alert.resolved_at_s,
            "value": alert.value,
        }
        for alert in obs.alerts.history()
    ]


def _tenant_rows(obs, catalog) -> list[dict]:
    infos = {info.tenant_id: info for info in catalog.tenants()} if catalog else {}
    tenant_ids = sorted(set(infos) | set(obs.meter.tenants()))
    rows: list[dict] = []
    from repro.lifecycle.policy import format_duration
    from repro.meta.catalog import TIER_COLD

    for tenant_id in tenant_ids:
        info = infos.get(tenant_id)
        usage = obs.meter.usage(tenant_id)
        status = obs.slo.evaluate(tenant_id)
        n_cold = (
            sum(1 for b in info.blocks if b.tier == TIER_COLD) if info else 0
        )
        n_blocks = len(info.blocks) if info else 0
        rows.append(
            {
                "tenant_id": tenant_id,
                "name": info.name if info else "",
                "blocks": n_blocks,
                "archived_bytes": info.total_bytes if info else 0,
                "archived_rows": info.total_rows if info else 0,
                "retention_ttl": (
                    format_duration(info.retention_s)
                    if info and info.retention_s is not None
                    else None
                ),
                "cold_age": (
                    format_duration(info.cold_age_s)
                    if info and info.cold_age_s is not None
                    else None
                ),
                "hot_blocks": n_blocks - n_cold,
                "cold_blocks": n_cold,
                "expired_blocks_total": info.expired_blocks_total if info else 0,
                "bytes_ingested": usage.bytes_ingested,
                "bytes_scanned": usage.bytes_scanned,
                "oss_gets": usage.oss_gets,
                "rows_ingested": usage.rows_ingested,
                "rows_returned": usage.rows_returned,
                "cpu_cost_units": usage.cpu_cost_units,
                "p99_query_latency_s": status.p99_query_latency_s,
                "error_rate": status.error_rate,
                "burn_rate": status.burn_rate,
                "slo_status": status.status,
            }
        )
    return rows


def system_table_rows(table: str, obs, catalog=None) -> list[dict]:
    """Materialize one ``_system`` table (unscoped; see scope_rows)."""
    if table == "_system.metrics":
        return _metrics_rows(obs)
    if table == "_system.slow_queries":
        return _slow_query_rows(obs)
    if table == "_system.events":
        return _event_rows(obs)
    if table == "_system.alerts":
        return _alert_rows(obs)
    if table == "_system.tenants":
        return _tenant_rows(obs, catalog)
    from repro.common.errors import QueryError

    raise QueryError(
        f"unknown system table {table!r} (expected one of {', '.join(SYSTEM_TABLES)})"
    )


def scope_rows(rows: list[dict], tenant_scope: Optional[int]) -> list[dict]:
    """Apply auth scoping: non-admin sees only its own tenant's rows.

    Rows with no tenant attribution (``tenant_id`` is None) describe
    cluster-wide state and are visible only to admin scope.
    """
    if tenant_scope is None:
        return rows
    return [row for row in rows if row.get("tenant_id") == tenant_scope]
