"""Slow-query log: queries whose virtual latency crossed a threshold.

The paper's operators watch for tenants whose queries degrade (§4.1);
the slow-query log is the first thing they pull.  Entries are recorded
by the broker after each query with the *virtual* latency, so the log
is deterministic under the simulated clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class SlowQueryEntry:
    """One over-threshold query."""

    at_s: float
    tenant_id: int
    query: str
    latency_s: float
    rows_returned: int
    blocks_visited: int = 0
    bytes_fetched: int = 0
    # The original SQL statement as typed by the session client, before
    # parameter binding / rewriting.  ``query`` may hold a normalized or
    # bound form; this is what operators grep `_system.slow_queries` for.
    statement: str = ""
    attrs: dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        shown = self.statement or self.query
        return (
            f"[t={self.at_s:.6f}] tenant={self.tenant_id} "
            f"latency={self.latency_s:.6f}s rows={self.rows_returned} "
            f"blocks={self.blocks_visited} bytes={self.bytes_fetched} "
            f"query={shown!r}"
        )


class SlowQueryLog:
    """Bounded ring of queries slower than ``threshold_s`` virtual
    seconds.  ``threshold_s=None`` disables logging entirely."""

    def __init__(self, threshold_s: float | None, max_entries: int = 128) -> None:
        if threshold_s is not None and threshold_s < 0:
            raise ValueError(f"slow-query threshold must be >= 0, got {threshold_s}")
        self.threshold_s = threshold_s
        self._entries: deque[SlowQueryEntry] = deque(maxlen=max_entries)
        self.total_logged = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def observe(self, entry: SlowQueryEntry) -> bool:
        """Record ``entry`` if it is over threshold; True if logged."""
        if self.threshold_s is None or entry.latency_s < self.threshold_s:
            return False
        self._entries.append(entry)
        self.total_logged += 1
        return True

    def entries(self) -> list[SlowQueryEntry]:
        return list(self._entries)

    def format(self) -> str:
        if not self._entries:
            return "slow-query log: empty"
        lines = [
            f"slow-query log ({self.total_logged} logged, "
            f"threshold {self.threshold_s:.3f}s):"
        ]
        lines.extend(entry.format() for entry in self._entries)
        return "\n".join(lines)

    def clear(self) -> None:
        self._entries.clear()
        self.total_logged = 0
