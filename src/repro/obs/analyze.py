"""EXPLAIN ANALYZE: the plan, plus what execution actually did.

Renders one executed query as the plan text (:func:`explain_plan`)
followed by per-stage virtual timings (from the ``broker.query`` trace),
the pushdown tier counts, pruning counters, cache hit rate and bytes
fetched.  Everything is driven by the virtual clock, so the output is
deterministic and golden-testable.
"""

from __future__ import annotations

from repro.obs.tracing import Span

# Stage spans the broker opens inside ``broker.query``.
STAGES = (
    ("broker.plan", "plan"),
    ("broker.archived_scan", "archived scan"),
    ("broker.realtime_scan", "realtime scan"),
    ("broker.merge", "merge/finalize"),
)


def render_explain_analyze(result, trace: Span | None, journal=None) -> str:
    """EXPLAIN ANALYZE text for one executed query.

    ``result`` is the broker's :class:`QueryResult`; ``trace`` is the
    query's ``broker.query`` root span (None when tracing is off, in
    which case the per-stage block is omitted but the work accounting
    still renders).  When an :class:`~repro.obs.events.EventJournal`
    is supplied, journal entries carrying this trace's id (seals,
    backpressure trips, elections that happened *during* the query)
    render as a final section — the trace-ID correlation join.
    """
    # Deferred import: the query package reads through the cache layer,
    # which itself imports the tracer — importing the planner at module
    # scope would close that cycle.
    from repro.query.planner import explain_plan

    stats = result.stats
    lines = [explain_plan(result.plan), ""]
    lines.append(f"== execution (virtual time: {result.latency_s:.6f}s) ==")
    if trace is not None:
        for span_name, label in STAGES:
            span = trace.find(span_name)
            if span is None:
                continue
            lines.append(f"  {label}: {span.duration_s:.6f}s")
    else:
        lines.append("  (tracing disabled: per-stage timings unavailable)")
    lines.append(
        f"rows returned: {len(result.rows)} "
        f"(archived {result.archived_rows}, realtime {result.realtime_rows})"
    )

    lines.append("== blocks ==")
    lines.append(f"  visited: {stats.blocks_visited}")
    lines.append(f"  pruned by LogBlock map: {result.plan.blocks_pruned_by_map}")
    lines.append(
        f"  pruned by SMA: {stats.prune.blocks_pruned}, "
        f"by Bloom: {stats.prune.blooms_pruned}"
    )
    lines.append(
        f"  scanned: {stats.prune.blocks_scanned}, "
        f"index lookups: {stats.prune.index_lookups}"
    )

    if result.plan.where is not None:
        lines.append("== vectorized scan ==")
        lines.append(
            f"  rows evaluated vectorized: {stats.rows_evaluated_vectorized} "
            f"(archived {stats.prune.rows_vectorized}, "
            f"realtime {stats.realtime_rows_vectorized})"
        )
        lines.append(
            f"  rows evaluated interpreted: {stats.rows_evaluated_interpreted} "
            f"(archived {stats.prune.rows_interpreted}, "
            f"realtime {stats.realtime_rows_interpreted})"
        )
        for reason, count in sorted(stats.vectorized_fallbacks.items()):
            lines.append(f"  fallback: {reason} (x{count})")

    pushdown = stats.pushdown
    if result.plan.query.is_aggregate:
        lines.append("== aggregate pushdown ==")
        lines.append(f"  tier 1 (catalog): {pushdown.agg_catalog_hits} blocks")
        lines.append(f"  tier 2 (SMA fold): {pushdown.agg_sma_blocks} blocks")
        lines.append(f"  tier 3 (columnar): {pushdown.agg_columnar_blocks} blocks")
        lines.append(f"  fallback (row): {pushdown.agg_row_blocks} blocks")

    lines.append("== I/O ==")
    lines.append(
        f"  oss requests: {result.oss_requests}, bytes fetched: {result.bytes_fetched}"
    )
    lines.append(
        f"  prefetch requests: {stats.prefetch_requests}, "
        f"bytes: {stats.prefetch_bytes}"
    )
    cache_total = result.cache_hits + result.cache_misses
    rate = result.cache_hits / cache_total if cache_total else 0.0
    lines.append(
        f"  cache: {result.cache_hits} hits, {result.cache_misses} misses "
        f"(hit rate {rate:.1%})"
    )
    trace_id = getattr(trace, "trace_id", None)
    if journal is not None and trace_id is not None:
        events = journal.events_for_trace(trace_id)
        if events:
            lines.append(f"== journal events (trace {trace_id}) ==")
            lines.extend(f"  {event.format()}" for event in events)
    return "\n".join(lines)
