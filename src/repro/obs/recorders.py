"""Registry-backed recorders: typed handles over metric families.

`WritePathStats` / `PushdownCounters` used to be mutable dataclasses
each subsystem threaded by hand and the broker merged manually.  They
are now **views**: the write path and executor record through registry
children (labeled per shard / per tier), and the dataclasses are
assembled from the registry on read.  One source of truth, no double
counting, and cluster-wide aggregation is just a snapshot merge.
"""

from __future__ import annotations

from repro.metrics.stats import Counter, Gauge, Histogram, PushdownCounters, WritePathStats
from repro.obs.registry import MetricsRegistry
from repro.obs.report import ENCODE_FALLBACKS, ENCODE_ROWS, SCAN_ROWS_EVALUATED

# Aggregate-pushdown tier labels, in descending-cheapness order.
PUSHDOWN_TIERS = ("catalog", "sma", "columnar", "row")

_TIER_FIELDS = {
    "catalog": "agg_catalog_hits",
    "sma": "agg_sma_blocks",
    "columnar": "agg_columnar_blocks",
    "row": "agg_row_blocks",
}


class WritePathRecorder:
    """Write-path accounting recorded straight into a registry.

    One recorder per shard (labeled ``shard=…``); the shard shares it
    between its `GroupCommitQueue` and `ReplicationPipeline` so group
    sizes, commit latency and row counts land in the same label set.
    ``view()`` assembles the classic `WritePathStats` dataclass —
    scalar fields frozen at read time, histograms as the *live*
    registry children (so ``len(stats.commit_latency)`` keeps working).
    """

    def __init__(self, registry: MetricsRegistry | None = None, **labels) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self.labels = dict(labels)
        self.groups_committed: Counter = registry.counter(
            "logstore_write_groups_total",
            "Raft proposals issued by group commit (one WAL flush each).",
            **labels,
        )
        self.batches_coalesced: Counter = registry.counter(
            "logstore_write_batches_coalesced_total",
            "Client batches folded into committed groups.",
            **labels,
        )
        self.rows_committed: Counter = registry.counter(
            "logstore_write_rows_committed_total",
            "Rows durably committed through the write path.",
            **labels,
        )
        self.bytes_committed: Counter = registry.counter(
            "logstore_write_bytes_committed_total",
            "Payload bytes durably committed.",
            **labels,
        )
        self.reproposals: Counter = registry.counter(
            "logstore_write_reproposals_total",
            "Groups re-proposed after leadership churn displaced them.",
            **labels,
        )
        self.inflight_peak: Gauge = registry.gauge(
            "logstore_write_inflight_peak",
            "Widest observed replication-pipeline window.",
            **labels,
        )
        self.group_sizes: Histogram = registry.histogram(
            "logstore_write_group_size",
            "Batches per committed group.",
            **labels,
        )
        self.commit_latency: Histogram = registry.histogram(
            "logstore_write_commit_latency_seconds",
            "Virtual seconds from proposal submit to the configured ack.",
            **labels,
        )

    def view(self) -> WritePathStats:
        return WritePathStats(
            groups_committed=self.groups_committed.value,
            batches_coalesced=self.batches_coalesced.value,
            rows_committed=self.rows_committed.value,
            bytes_committed=self.bytes_committed.value,
            reproposals=self.reproposals.value,
            inflight_peak=int(self.inflight_peak.value),
            group_sizes=self.group_sizes,
            commit_latency=self.commit_latency,
        )


class PushdownRecorder:
    """Per-tier aggregate-pushdown counters in a registry.

    The executor still keeps its per-query `PushdownCounters` (EXPLAIN
    ANALYZE needs per-query numbers); this recorder is the *cumulative*
    registry family the traffic monitor and metric dumps read.
    """

    def __init__(self, registry: MetricsRegistry | None = None, **labels) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._tiers: dict[str, Counter] = {
            tier: registry.counter(
                "logstore_agg_pushdown_blocks_total",
                "Blocks answered per aggregate-pushdown tier.",
                tier=tier,
                **labels,
            )
            for tier in PUSHDOWN_TIERS
        }

    def record(self, counters: PushdownCounters) -> None:
        """Fold one query's pushdown counters into the registry."""
        for tier, field_name in _TIER_FIELDS.items():
            amount = getattr(counters, field_name)
            if amount:
                self._tiers[tier].add(amount)

    def view(self) -> PushdownCounters:
        return PushdownCounters(
            **{
                field_name: self._tiers[tier].value
                for tier, field_name in _TIER_FIELDS.items()
            }
        )


# Scan-mode labels: how each row's predicate was evaluated.
SCAN_MODES = ("vectorized", "interpreted")


class ScanModeRecorder:
    """Rows evaluated vectorized vs interpreted, as registry counters.

    The executor keeps per-query counts (EXPLAIN ANALYZE reads those);
    this recorder is the cumulative ``mode=…``-labeled family the
    metrics report and dashboards read to see how much of the scan
    workload actually runs on the vector kernels.
    """

    def __init__(self, registry: MetricsRegistry | None = None, **labels) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._modes: dict[str, Counter] = {
            mode: registry.counter(
                SCAN_ROWS_EVALUATED,
                "Rows whose predicate was evaluated per scan mode.",
                mode=mode,
                **labels,
            )
            for mode in SCAN_MODES
        }

    def record(self, vectorized_rows: int, interpreted_rows: int) -> None:
        if vectorized_rows:
            self._modes["vectorized"].add(vectorized_rows)
        if interpreted_rows:
            self._modes["interpreted"].add(interpreted_rows)

    def view(self) -> dict[str, int]:
        return {mode: counter.value for mode, counter in self._modes.items()}


class EncodeModeRecorder:
    """Write-side twin of :class:`ScanModeRecorder`.

    Column values encoded through the vectorized kernels vs the
    interpreted reference encoder (``mode=…``-labeled family), plus a
    ``reason=…``-labeled fallback counter so dashboards can see *why*
    blocks fell off the fast path (plain-string blocks, NaN SMAs, …).
    The builder folds each writer's ``EncodeStats`` in serially after
    the parallel build stage, keeping registration deterministic.
    """

    def __init__(self, registry: MetricsRegistry | None = None, **labels) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._labels = dict(labels)
        self._modes: dict[str, Counter] = {
            mode: registry.counter(
                ENCODE_ROWS,
                "Column values encoded per encode mode.",
                mode=mode,
                **labels,
            )
            for mode in SCAN_MODES
        }
        self._fallbacks: dict[str, Counter] = {}

    def record(self, stats) -> None:
        """Fold one writer's ``EncodeStats`` into the registry."""
        if stats is None:
            return
        if stats.rows_vectorized:
            self._modes["vectorized"].add(stats.rows_vectorized)
        if stats.rows_interpreted:
            self._modes["interpreted"].add(stats.rows_interpreted)
        for reason, count in stats.fallbacks.items():
            counter = self._fallbacks.get(reason)
            if counter is None:
                counter = self.registry.counter(
                    ENCODE_FALLBACKS,
                    "Column blocks that fell back to the interpreted encoder.",
                    reason=reason,
                    **self._labels,
                )
                self._fallbacks[reason] = counter
            counter.add(count)

    def view(self) -> dict[str, int]:
        return {mode: counter.value for mode, counter in self._modes.items()}

    def fallback_view(self) -> dict[str, int]:
        return {reason: counter.value for reason, counter in self._fallbacks.items()}
