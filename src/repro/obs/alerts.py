"""Deterministic alert rules over registry snapshots and SLO windows.

Two rule shapes, both pure functions of state at a virtual-clock tick:

* :class:`ThresholdRule` — compare a metric family (optionally filtered
  by a label subset) against a threshold.  Counters and gauges are
  summed across matching children, so ``logstore_backpressure_total``
  works whether it has one child or one per shard.
* :class:`BurnRateRule` — per-tenant SLO error-budget burn rate from the
  :class:`~repro.obs.slo.SloTracker`; fires one alert per burning
  tenant.

The engine is edge-triggered: an alert fires once when its condition
becomes true, stays active while it holds, and resolves once when it
clears — both transitions land in the event journal, which is what
makes alert history replayable and byte-identical under the same seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.obs.events import EVENT_ALERT_FIRE, EVENT_ALERT_RESOLVE, EventJournal
from repro.obs.registry import RegistrySnapshot
from repro.obs.slo import SloTracker

ALERT_ACTIVE = "active"
ALERT_RESOLVED = "resolved"

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when a metric family's (filtered) sum crosses a threshold."""

    name: str
    metric: str
    threshold: float
    op: str = ">"
    labels: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown threshold op {self.op!r}")

    def value(self, snapshot: RegistrySnapshot) -> float:
        """Sum of matching children across counters and gauges."""
        want = set(self.labels.items())
        total = 0.0
        for table in (snapshot.counters, snapshot.gauges):
            for key, value in table.get(self.metric, {}).items():
                if want <= set(key):
                    total += value
        return total

    def evaluate(self, snapshot: RegistrySnapshot, slo: SloTracker | None):
        value = self.value(snapshot)
        if _OPS[self.op](value, self.threshold):
            target = self.metric
            if self.labels:
                inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
                target = f"{self.metric}{{{inner}}}"
            yield target, None, value


@dataclass(frozen=True)
class BurnRateRule:
    """Fire per tenant whose SLO burn rate exceeds ``max_burn_rate``."""

    name: str
    max_burn_rate: float = 1.0

    def evaluate(self, snapshot: RegistrySnapshot, slo: SloTracker | None):
        if slo is None:
            return
        for status in slo.evaluate_all():
            if status.burn_rate > self.max_burn_rate:
                yield f"tenant:{status.tenant_id}", status.tenant_id, status.burn_rate


def default_alert_rules() -> tuple:
    """The stock rule set wired in when config supplies none."""
    return (
        BurnRateRule(name="tenant-slo-burn", max_burn_rate=1.0),
        ThresholdRule(
            name="write-reproposals",
            metric="logstore_write_reproposals_total",
            threshold=0,
            op=">",
        ),
    )


@dataclass(frozen=True)
class Alert:
    """One fire→resolve lifecycle of one rule on one target."""

    name: str
    target: str
    tenant_id: Optional[int]
    fired_at_s: float
    value: float
    state: str = ALERT_ACTIVE
    resolved_at_s: Optional[float] = None


class AlertEngine:
    """Evaluate rules at virtual-clock ticks; journal the transitions."""

    def __init__(
        self,
        rules,
        clock=None,
        journal: EventJournal | None = None,
        slo: SloTracker | None = None,
        max_history: int = 256,
    ) -> None:
        self.rules = tuple(rules)
        self._clock = clock
        self._journal = journal
        self._slo = slo
        self._active: dict[tuple[str, str], Alert] = {}
        self._history: deque[Alert] = deque(maxlen=max_history)

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def evaluate(self, snapshot: RegistrySnapshot) -> list[Alert]:
        """One tick: fire newly-true conditions, resolve cleared ones.

        Returns the alerts that *transitioned* this tick (fired or
        resolved), in deterministic rule order.
        """
        now = self._now()
        transitions: list[Alert] = []
        seen: set[tuple[str, str]] = set()
        for rule in self.rules:
            for target, tenant_id, value in rule.evaluate(snapshot, self._slo):
                key = (rule.name, target)
                seen.add(key)
                if key in self._active:
                    continue
                alert = Alert(
                    name=rule.name,
                    target=target,
                    tenant_id=tenant_id,
                    fired_at_s=now,
                    value=value,
                )
                self._active[key] = alert
                self._history.append(alert)
                transitions.append(alert)
                if self._journal is not None:
                    self._journal.emit(
                        EVENT_ALERT_FIRE,
                        target,
                        detail=f"{rule.name} value={value:.6g}",
                        tenant_id=tenant_id,
                    )
        for key in sorted(self._active.keys() - seen):
            alert = self._active.pop(key)
            resolved = replace(alert, state=ALERT_RESOLVED, resolved_at_s=now)
            # Rewrite the history entry in place so one lifecycle is one row.
            for i, entry in enumerate(self._history):
                if entry is alert:
                    self._history[i] = resolved
                    break
            transitions.append(resolved)
            if self._journal is not None:
                self._journal.emit(
                    EVENT_ALERT_RESOLVE,
                    resolved.target,
                    detail=resolved.name,
                    tenant_id=resolved.tenant_id,
                )
        return transitions

    def active(self) -> list[Alert]:
        return [self._active[key] for key in sorted(self._active)]

    def history(self) -> list[Alert]:
        return list(self._history)
