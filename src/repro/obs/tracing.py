"""Virtual-clock tracer: hierarchical spans over the simulated time base.

A span records *where* a request spent its virtual time:

* ``broker.query → shard.scan → oss.get / cache.hit`` on the read path,
* ``broker.write → group_commit → raft.replicate → wal.flush`` on the
  quorum-acked write path,

with attributes (tenant, shard, block id, bytes) attached at each level.

Timing under the deferred-clock wave model
------------------------------------------
Components charge virtual time either by calling ``clock.sleep``
directly (the span sees it as ``end_s - start_s``) or inside a
``clock.deferred()`` block, where sleeps are *collected* without
advancing ``now()`` and charged once as a concurrent wave.  Spans that
wrap deferred work therefore carry an explicit ``charged_s`` credit —
instrumentation calls ``span.charge(charges.total)`` (or the wave
elapsed) after the block — and ``duration_s`` is wall delta plus
charges.  The tracer itself never touches the clock, so tracing adds
zero virtual time (the overhead benchmark asserts this).

Everything is deterministic under the virtual clock: ``format_trace``
output is stable across runs and usable as a golden test.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation, possibly with nested child spans."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float | None = None
    charged_s: float = 0.0
    children: list["Span"] = field(default_factory=list)
    events: list[tuple[str, dict[str, object]]] = field(default_factory=list)
    # Monotonic per-tracer id assigned to root spans and inherited by
    # children; journal events emitted while the trace is open carry it,
    # which is how explain_analyze joins journal entries to a query.
    trace_id: int | None = None

    @property
    def duration_s(self) -> float:
        """Virtual seconds spent in this span (wall delta + explicit
        charges from deferred-clock blocks)."""
        end = self.end_s if self.end_s is not None else self.start_s
        return (end - self.start_s) + self.charged_s

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def charge(self, seconds: float) -> None:
        """Credit virtual time that did not advance the clock (deferred
        wave charges)."""
        self.charged_s += seconds

    def event(self, name: str, **attrs) -> None:
        """A point-in-time annotation inside the span."""
        self.events.append((name, dict(attrs)))

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]


class _NoopSpan:
    """Stand-in when tracing is disabled: absorbs the span API."""

    __slots__ = ()

    name = ""
    attrs: dict[str, object] = {}
    children: list = []
    duration_s = 0.0
    trace_id = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def charge(self, seconds: float) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Builds hierarchical spans against a virtual clock.

    ``span()`` is a context manager; spans opened while another span is
    active nest under it.  Completed root spans are kept in a bounded
    ring (``max_traces``) for inspection — ``last_trace()``,
    ``find_spans()`` — and dumping via :func:`format_trace`.

    A disabled tracer hands out a shared no-op span so hot paths pay a
    single ``if`` and no allocations.
    """

    def __init__(self, clock=None, enabled: bool = True, max_traces: int = 256) -> None:
        self._clock = clock
        self.enabled = enabled and clock is not None
        self._stack: list[Span] = []
        self._traces: deque[Span] = deque(maxlen=max_traces)
        self.dropped_traces = 0
        self._trace_seq = 0

    @contextmanager
    def span(self, name: str, **attrs):
        if not self.enabled:
            yield NOOP_SPAN
            return
        span = Span(name=name, attrs=dict(attrs), start_s=self._clock.now())
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            self._trace_seq += 1
            span.trace_id = self._trace_seq
        else:
            span.trace_id = parent.trace_id
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self._clock.now()
            self._stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                if len(self._traces) == self._traces.maxlen:
                    self.dropped_traces += 1
                self._traces.append(span)

    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def current_trace_id(self) -> int | None:
        """Trace id of the open root span, or None outside any span."""
        return self._stack[-1].trace_id if self._stack else None

    def event(self, name: str, **attrs) -> None:
        """Attach an event to the current span (no-op outside spans)."""
        current = self.current()
        if current is not None:
            current.event(name, **attrs)

    def traces(self) -> list[Span]:
        """Completed root spans, oldest first."""
        return list(self._traces)

    def last_trace(self, name: str | None = None) -> Span | None:
        """Most recent completed root span (optionally by name)."""
        for span in reversed(self._traces):
            if name is None or span.name == name:
                return span
        return None

    def find_spans(self, name: str) -> list[Span]:
        """Every span with ``name`` across all retained traces."""
        found: list[Span] = []
        for root in self._traces:
            found.extend(root.find_all(name))
        return found

    def reset(self) -> None:
        self._traces.clear()
        self.dropped_traces = 0


def _format_attrs(attrs: dict[str, object]) -> str:
    if not attrs:
        return ""
    body = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f" [{body}]"


def format_trace(span: Span, indent: int = 0) -> str:
    """Deterministic indented dump of a span tree.

    ::

        broker.write 0.004500s [tenant=1]
          group_commit 0.000000s [shard=0]
            raft.replicate 0.004500s
              wal.flush 0.002000s
    """
    pad = "  " * indent
    lines = [f"{pad}{span.name} {span.duration_s:.6f}s{_format_attrs(span.attrs)}"]
    for name, attrs in span.events:
        lines.append(f"{pad}  @ {name}{_format_attrs(attrs)}")
    for child in span.children:
        lines.append(format_trace(child, indent + 1))
    return "\n".join(lines)


def span_chain(root: Span, names: list[str]) -> bool:
    """True if ``names`` appear as an ancestor chain inside ``root``
    (intermediate spans between the named levels are allowed)."""
    if not names:
        return True
    for span in root.walk():
        if span.name == names[0]:
            if len(names) == 1:
                return True
            if any(span_chain(child, names[1:]) for child in span.children):
                return True
    return False
