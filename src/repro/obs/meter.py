"""Per-tenant usage metering.

The registry already counts most of what a tenant does, but scattered
across families with mixed label sets (shard rows here, broker rows
there, OSS bytes globally).  `UsageMeter` is the single per-tenant
accounting surface ROADMAP items 2 (elastic scaling) and 5 (retention /
billing) need: every family below is labeled ``tenant=<id>`` and only
``tenant=<id>``, so a tenant's bill is one ``by_label`` read.

CPU cost is a unit-less work proxy, not seconds: rows whose predicate
was evaluated plus blocks visited, the two quantities the executor
already charges virtual time for.  It ranks tenants by scan work
without pretending to be a cycle counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry

METER_BYTES_INGESTED = "logstore_tenant_bytes_ingested_total"
METER_BYTES_SCANNED = "logstore_tenant_bytes_scanned_total"
METER_OSS_GETS = "logstore_tenant_oss_gets_total"
METER_ROWS_INGESTED = "logstore_tenant_rows_ingested_total"
METER_ROWS_RETURNED = "logstore_tenant_rows_returned_total"
METER_CPU_COST = "logstore_tenant_cpu_cost_units_total"

_FAMILIES = (
    (METER_BYTES_INGESTED, "Payload bytes ingested per tenant."),
    (METER_BYTES_SCANNED, "Bytes fetched from storage to answer a tenant's queries."),
    (METER_OSS_GETS, "Object-store GET requests issued for a tenant's queries."),
    (METER_ROWS_INGESTED, "Rows ingested per tenant."),
    (METER_ROWS_RETURNED, "Rows returned to a tenant by queries."),
    (METER_CPU_COST, "Unit-less scan-work proxy: rows evaluated + blocks visited."),
)


def approx_rows_bytes(rows) -> int:
    """Deterministic payload-size estimate for a batch of rows.

    Same accounting the memtable uses for seal thresholds (key length +
    string/bytes length, 8 bytes per scalar), so ingest metering and
    row-store sizing agree without encoding the batch twice.
    """
    total = 0
    for row in rows:
        for key, value in row.items():
            total += len(key)
            if isinstance(value, (str, bytes, bytearray)):
                total += len(value)
            else:
                total += 8
    return total


@dataclass(frozen=True)
class TenantUsage:
    """One tenant's cumulative usage, frozen at read time."""

    tenant_id: int
    bytes_ingested: int = 0
    bytes_scanned: int = 0
    oss_gets: int = 0
    rows_ingested: int = 0
    rows_returned: int = 0
    cpu_cost_units: float = 0.0


class UsageMeter:
    """Tenant-labeled counter families over a shared registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        # tenant -> dict[family name -> Counter]
        self._tenants: dict[int, dict] = {}

    def _family(self, tenant_id: int) -> dict:
        counters = self._tenants.get(tenant_id)
        if counters is None:
            counters = {
                name: self._registry.counter(name, help_text, tenant=tenant_id)
                for name, help_text in _FAMILIES
            }
            self._tenants[tenant_id] = counters
        return counters

    def record_ingest(self, tenant_id: int, rows: int, nbytes: int) -> None:
        counters = self._family(tenant_id)
        if rows:
            counters[METER_ROWS_INGESTED].add(rows)
        if nbytes:
            counters[METER_BYTES_INGESTED].add(nbytes)

    def record_query(
        self,
        tenant_id: int,
        rows_returned: int = 0,
        bytes_scanned: int = 0,
        oss_gets: int = 0,
        cpu_cost: float = 0.0,
    ) -> None:
        counters = self._family(tenant_id)
        if rows_returned:
            counters[METER_ROWS_RETURNED].add(rows_returned)
        if bytes_scanned:
            counters[METER_BYTES_SCANNED].add(bytes_scanned)
        if oss_gets:
            counters[METER_OSS_GETS].add(oss_gets)
        if cpu_cost:
            counters[METER_CPU_COST].add(cpu_cost)

    def usage(self, tenant_id: int) -> TenantUsage:
        counters = self._tenants.get(tenant_id)
        if counters is None:
            return TenantUsage(tenant_id=tenant_id)
        return TenantUsage(
            tenant_id=tenant_id,
            bytes_ingested=int(counters[METER_BYTES_INGESTED].value),
            bytes_scanned=int(counters[METER_BYTES_SCANNED].value),
            oss_gets=int(counters[METER_OSS_GETS].value),
            rows_ingested=int(counters[METER_ROWS_INGESTED].value),
            rows_returned=int(counters[METER_ROWS_RETURNED].value),
            cpu_cost_units=float(counters[METER_CPU_COST].value),
        )

    def tenants(self) -> list[int]:
        return sorted(self._tenants)

    def all_usage(self) -> list[TenantUsage]:
        return [self.usage(tenant_id) for tenant_id in self.tenants()]
