"""MetricsRegistry: labeled counters, gauges and histograms (§4.1.3).

The paper's traffic-control loop is driven by "runtime traffic or load
metrics of tenants, shards, and workers", and its whole evaluation is
metric readouts.  This registry is the single place those metrics live:

* every instrument is **labeled** (``tenant=…``, ``shard=…``,
  ``worker=…``), so per-tenant accounting — the thing a multi-tenant
  store lives or dies by — falls out of the label sets instead of
  per-subsystem dataclasses threaded by hand;
* a registry can be **snapshotted** into plain data and snapshots
  **merge**, which is how a broker aggregates worker-side registries
  without sharing mutable state;
* snapshots export as Prometheus-style text exposition and as JSON, so
  the same numbers feed the ``BENCH_*.json`` trajectory files and a
  human ``curl``-style dump.

Instruments are the primitives from :mod:`repro.metrics.stats`
(lock-guarded counters, bounded-reservoir histograms), so anything that
already holds a ``Counter`` can hold a registry child instead.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.common.utils import percentile
from repro.metrics.stats import DEFAULT_RESERVOIR, Counter, Gauge, Histogram

# A label set, normalized: ``(("shard", 3), ("tenant", 1))``.
LabelKey = tuple[tuple[str, object], ...]


def _sort_key(key: LabelKey) -> tuple:
    """Total order over label sets even when values mix types."""
    return tuple((name, str(value)) for name, value in key)

_KINDS = ("counter", "gauge", "histogram")
_QUANTILES = (50, 90, 99)


def label_key(labels: dict[str, object]) -> LabelKey:
    """Normalize a label dict into the registry's child key."""
    return tuple(sorted(labels.items()))


def _format_labels(key: LabelKey, extra: tuple[tuple[str, object], ...] = ()) -> str:
    items = [*key, *extra]
    if not items:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in items)
    return "{" + body + "}"


@dataclass
class _Family:
    """One metric name: a kind, a help string, and labeled children."""

    name: str
    kind: str
    help: str = ""
    children: dict[LabelKey, object] = field(default_factory=dict)


class MetricsRegistry:
    """Get-or-create registry of labeled instruments.

    ``counter``/``gauge``/``histogram`` return the *live* instrument for
    a (name, labels) pair, creating it on first use — callers keep the
    child and record on it directly (no per-record dict lookups on hot
    paths).  Re-registering a name with a different kind is an error.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name=name, kind=kind, help=help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, cannot reuse as {kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        with self._lock:
            family = self._family(name, "counter", help)
            key = label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Counter(name + _format_labels(key))
                family.children[key] = child
            return child  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        with self._lock:
            family = self._family(name, "gauge", help)
            key = label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Gauge(name + _format_labels(key))
                family.children[key] = child
            return child  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", reservoir: int = DEFAULT_RESERVOIR, **labels
    ) -> Histogram:
        with self._lock:
            family = self._family(name, "histogram", help)
            key = label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Histogram(name + _format_labels(key), reservoir=reservoir)
                family.children[key] = child
            return child  # type: ignore[return-value]

    # -- read access -------------------------------------------------------

    def children(self, name: str) -> dict[LabelKey, object]:
        """The live children of one family (empty dict if unknown)."""
        with self._lock:
            family = self._families.get(name)
            return dict(family.children) if family is not None else {}

    def counter_value(self, name: str, **labels) -> int:
        family = self._families.get(name)
        if family is None:
            return 0
        child = family.children.get(label_key(labels))
        return child.value if child is not None else 0  # type: ignore[union-attr]

    def snapshot(self) -> "RegistrySnapshot":
        """Freeze every instrument into plain, mergeable data."""
        snap = RegistrySnapshot()
        with self._lock:
            for family in self._families.values():
                if family.kind == "counter":
                    dest = snap.counters.setdefault(family.name, {})
                    for key, child in family.children.items():
                        dest[key] = child.value  # type: ignore[union-attr]
                elif family.kind == "gauge":
                    dest = snap.gauges.setdefault(family.name, {})
                    for key, child in family.children.items():
                        dest[key] = child.value  # type: ignore[union-attr]
                else:
                    hdest = snap.histograms.setdefault(family.name, {})
                    for key, child in family.children.items():
                        hdest[key] = HistogramSnapshot.of(child)  # type: ignore[arg-type]
                snap.help.setdefault(family.name, family.help)
                snap.kinds.setdefault(family.name, family.kind)
        return snap

    def render_prometheus(self) -> str:
        return self.snapshot().render_prometheus()

    def to_json(self) -> dict:
        return self.snapshot().to_json()


@dataclass
class HistogramSnapshot:
    """Frozen histogram: exact count/sum/max plus the retained sample."""

    count: int = 0
    sum: float = 0.0
    max: float | None = None
    sample: tuple[float, ...] = ()

    @classmethod
    def of(cls, histogram: Histogram) -> "HistogramSnapshot":
        return cls(
            count=histogram.count,
            sum=histogram.total,
            max=histogram.max_value,
            sample=tuple(histogram.values),
        )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Fold ``other`` in (in place).  Exact fields stay exact; the
        combined sample is deterministically decimated back under the
        reservoir bound.

        The combined sample is **sorted before decimation** so the
        survivors depend only on the multiset of values, not on which
        operand contributed them — ``a.merge(b)`` and ``b.merge(a)``
        keep identical samples, and therefore identical quantiles,
        regardless of merge order.  (Sorted every-2nd decimation is
        also a better quantile sketch than arrival-order decimation:
        it thins the distribution uniformly instead of dropping
        whichever shard happened to report first.)"""
        self.count += other.count
        self.sum += other.sum
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        sample = sorted(list(self.sample) + list(other.sample))
        while len(sample) > DEFAULT_RESERVOIR:
            sample = sample[::2]
        self.sample = tuple(sample)
        return self

    def quantile(self, q: float) -> float:
        if not self.sample:
            return 0.0
        return percentile(list(self.sample), q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p99": self.quantile(99),
        }


@dataclass
class RegistrySnapshot:
    """Plain-data view of a registry at one instant.

    Mergeable: counters and histogram counts/sums **add**, gauges add
    too (per-entity labels make gauge collisions across sources rare,
    and additive merge is what capacity/queue-depth style gauges want).
    This is the broker-side aggregation primitive: snapshot each
    worker's registry, merge, export once.
    """

    counters: dict[str, dict[LabelKey, int]] = field(default_factory=dict)
    gauges: dict[str, dict[LabelKey, float]] = field(default_factory=dict)
    histograms: dict[str, dict[LabelKey, HistogramSnapshot]] = field(
        default_factory=dict
    )
    help: dict[str, str] = field(default_factory=dict)
    kinds: dict[str, str] = field(default_factory=dict)

    # -- merge -------------------------------------------------------------

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Fold ``other`` into this snapshot (in place); returns self."""
        for name, children in other.counters.items():
            dest = self.counters.setdefault(name, {})
            for key, value in children.items():
                dest[key] = dest.get(key, 0) + value
        for name, children in other.gauges.items():
            gdest = self.gauges.setdefault(name, {})
            for key, value in children.items():
                gdest[key] = gdest.get(key, 0.0) + value
        for name, children in other.histograms.items():
            hdest = self.histograms.setdefault(name, {})
            for key, snap in children.items():
                if key in hdest:
                    hdest[key].merge(snap)
                else:
                    hdest[key] = HistogramSnapshot(
                        snap.count, snap.sum, snap.max, snap.sample
                    )
        for name, text in other.help.items():
            self.help.setdefault(name, text)
        for name, kind in other.kinds.items():
            self.kinds.setdefault(name, kind)
        return self

    # -- queries -----------------------------------------------------------

    def counter_value(self, name: str, **labels) -> int:
        return self.counters.get(name, {}).get(label_key(labels), 0)

    def counter_total(self, name: str) -> int:
        return sum(self.counters.get(name, {}).values())

    def by_label(self, name: str, label: str) -> dict[object, float]:
        """Sum a counter family grouped by one label's values.

        ``by_label("…_write_rows_total", "tenant")`` is the Figure 13/14
        per-tenant series.
        """
        out: dict[object, float] = {}
        for key, value in self.counters.get(name, {}).items():
            for k, v in key:
                if k == label:
                    out[v] = out.get(v, 0.0) + value
        return out

    def gauge_value(self, name: str, **labels) -> float:
        return self.gauges.get(name, {}).get(label_key(labels), 0.0)

    def histogram_snapshot(self, name: str, **labels) -> HistogramSnapshot | None:
        return self.histograms.get(name, {}).get(label_key(labels))

    # -- export ------------------------------------------------------------

    def _names(self) -> list[str]:
        return sorted([*self.counters, *self.gauges, *self.histograms])

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition (deterministic ordering)."""
        lines: list[str] = []
        for name in self._names():
            kind = self.kinds.get(name, "counter")
            help_text = self.help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            if kind == "histogram":
                lines.append(f"# TYPE {name} summary")
                for key in sorted(self.histograms[name], key=_sort_key):
                    snap = self.histograms[name][key]
                    for q in _QUANTILES:
                        quantile_label = (("quantile", f"0.{q:02d}".rstrip("0")),)
                        lines.append(
                            f"{name}{_format_labels(key, quantile_label)} "
                            f"{snap.quantile(q):.9g}"
                        )
                    lines.append(f"{name}_count{_format_labels(key)} {snap.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} {snap.sum:.9g}")
            else:
                lines.append(f"# TYPE {name} {kind}")
                children = self.counters.get(name) or self.gauges.get(name) or {}
                for key in sorted(children, key=_sort_key):
                    value = children[key]
                    rendered = f"{value:.9g}" if isinstance(value, float) else str(value)
                    lines.append(f"{name}{_format_labels(key)} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """JSON-safe dict (labels flattened to ``k=v,…`` strings)."""

        def flat(key: LabelKey) -> str:
            return ",".join(f"{k}={v}" for k, v in key)

        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, children in sorted(self.counters.items()):
            out["counters"][name] = {
                flat(k): children[k] for k in sorted(children, key=_sort_key)
            }
        for name, gchildren in sorted(self.gauges.items()):
            out["gauges"][name] = {
                flat(k): gchildren[k] for k in sorted(gchildren, key=_sort_key)
            }
        for name, hchildren in sorted(self.histograms.items()):
            out["histograms"][name] = {
                flat(k): hchildren[k].as_dict()
                for k in sorted(hchildren, key=_sort_key)
            }
        return out

    def to_json_text(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)
