"""Per-tenant SLO tracking over rolling virtual-time windows.

An SLO here is the standard error-budget formulation: a target says
"over any ``window_s`` of virtual time, at least ``slo_goal`` of a
tenant's operations must be *good*" — where an operation is bad if it
errored or ran over its latency target.  The tracker keeps a rolling
window of (timestamp, latency, errored) observations per tenant and
evaluates on demand:

    error budget   = 1 - slo_goal                (fraction allowed bad)
    bad fraction   = bad events / total events   (within the window)
    burn rate      = bad fraction / error budget

Burn rate 1.0 means the tenant is consuming budget exactly as fast as
the window replenishes it; above 1.0 the SLO is *burning* and the
tenant will exhaust its budget.  Everything is virtual-clock driven, so
the math is deterministic and golden-testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.common.utils import percentile

SLO_OK = "ok"
SLO_BURNING = "burning"


@dataclass(frozen=True)
class SloTarget:
    """What one tenant is promised.

    ``p99_query_latency_s`` / ``write_latency_s`` classify individual
    operations as good/bad; ``slo_goal`` is the promised good fraction
    over any ``window_s`` of virtual time.
    """

    p99_query_latency_s: float = 2.0
    write_latency_s: float = 0.5
    slo_goal: float = 0.99
    window_s: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.slo_goal < 1.0:
            raise ValueError("slo_goal must be in (0, 1)")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.p99_query_latency_s <= 0 or self.write_latency_s <= 0:
            raise ValueError("latency targets must be positive")


@dataclass(frozen=True)
class SloStatus:
    """One tenant's SLO evaluation at a point in virtual time."""

    tenant_id: int
    window_s: float
    query_count: int
    write_count: int
    p99_query_latency_s: float
    p99_write_latency_s: float
    error_rate: float
    bad_fraction: float
    error_budget: float
    burn_rate: float
    status: str


class SloTracker:
    """Rolling per-tenant SLO windows on the virtual clock.

    Recording is O(1) amortized (append + prune-from-left); evaluation
    sorts the window for percentiles.  With no clock attached (noop
    handles) the tracker is inert: records drop, evaluations are empty.
    """

    def __init__(
        self,
        clock=None,
        default_target: SloTarget | None = None,
        enabled: bool = True,
    ) -> None:
        self._clock = clock
        self.enabled = enabled and clock is not None
        self._default = default_target if default_target is not None else SloTarget()
        self._targets: dict[int, SloTarget] = {}
        # tenant -> deque[(at_s, latency_s, errored)]
        self._queries: dict[int, deque] = {}
        self._writes: dict[int, deque] = {}

    # -- targets -------------------------------------------------------

    def set_target(self, tenant_id: int, target: SloTarget) -> None:
        self._targets[tenant_id] = target

    def target(self, tenant_id: int) -> SloTarget:
        return self._targets.get(tenant_id, self._default)

    # -- recording -----------------------------------------------------

    def record_query(self, tenant_id: int, latency_s: float, error: bool = False) -> None:
        self._record(self._queries, tenant_id, latency_s, error)

    def record_write(self, tenant_id: int, latency_s: float, error: bool = False) -> None:
        self._record(self._writes, tenant_id, latency_s, error)

    def _record(self, table: dict, tenant_id: int, latency_s: float, error: bool) -> None:
        if not self.enabled:
            return
        window = table.get(tenant_id)
        if window is None:
            window = deque()
            table[tenant_id] = window
        now = self._clock.now()
        window.append((now, latency_s, error))
        self._prune(window, now, self.target(tenant_id).window_s)

    @staticmethod
    def _prune(window: deque, now: float, window_s: float) -> None:
        cutoff = now - window_s
        while window and window[0][0] < cutoff:
            window.popleft()

    # -- evaluation ----------------------------------------------------

    def tenants(self) -> list[int]:
        return sorted(set(self._queries) | set(self._writes))

    def evaluate(self, tenant_id: int) -> SloStatus:
        target = self.target(tenant_id)
        now = self._clock.now() if self._clock is not None else 0.0
        queries = self._queries.get(tenant_id, deque())
        writes = self._writes.get(tenant_id, deque())
        self._prune(queries, now, target.window_s)
        self._prune(writes, now, target.window_s)

        q_lat = [lat for _, lat, _ in queries]
        w_lat = [lat for _, lat, _ in writes]
        total = len(queries) + len(writes)
        errors = sum(1 for _, _, err in queries if err) + sum(
            1 for _, _, err in writes if err
        )
        bad = errors
        bad += sum(
            1 for _, lat, err in queries if not err and lat > target.p99_query_latency_s
        )
        bad += sum(
            1 for _, lat, err in writes if not err and lat > target.write_latency_s
        )

        error_budget = 1.0 - target.slo_goal
        bad_fraction = bad / total if total else 0.0
        error_rate = errors / total if total else 0.0
        burn_rate = bad_fraction / error_budget
        return SloStatus(
            tenant_id=tenant_id,
            window_s=target.window_s,
            query_count=len(queries),
            write_count=len(writes),
            p99_query_latency_s=percentile(q_lat, 99) if q_lat else 0.0,
            p99_write_latency_s=percentile(w_lat, 99) if w_lat else 0.0,
            error_rate=error_rate,
            bad_fraction=bad_fraction,
            error_budget=error_budget,
            burn_rate=burn_rate,
            status=SLO_BURNING if burn_rate > 1.0 else SLO_OK,
        )

    def evaluate_all(self) -> list[SloStatus]:
        return [self.evaluate(tenant_id) for tenant_id in self.tenants()]
