"""Cluster event journal: a bounded, deterministic operational log.

The registry answers *how much* (counters, histograms); the journal
answers *what happened, in what order*: leader elections, shard seals,
archives, compactions, backpressure trips, chaos fault injections and
heals, alert fires/resolves.  Every entry is stamped with the virtual
clock and a monotonic sequence number, so two runs of the same seeded
scenario produce byte-identical journals (``dump()``/``digest()`` are
the replay-equivalence check, mirroring ``chaos.events.EventTrace``).

Entries also carry the current trace ID (when emitted under an active
tracer span), which is what lets ``explain_analyze`` and chaos replays
join journal events back to the spans that caused them.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

# Kinds emitted by the core seams.  Free-form strings are fine too;
# these constants just keep the spellings aligned across subsystems.
EVENT_LEADER_ELECTED = "raft.leader_elected"
EVENT_RAFT_BACKPRESSURE = "raft.backpressure.trip"
EVENT_SHARD_SEAL = "shard.seal"
EVENT_SHARD_BACKPRESSURE = "shard.backpressure.trip"
EVENT_BUILDER_ARCHIVE = "builder.archive"
EVENT_COMPACTION = "compactor.compact"
EVENT_ALERT_FIRE = "alert.fire"
EVENT_ALERT_RESOLVE = "alert.resolve"


@dataclass(frozen=True)
class JournalEvent:
    """One journal entry.

    ``seq`` is global and monotonic (it keeps counting even after old
    entries fall off the bounded ring, so gaps reveal truncation).
    ``trace_id`` is the root-span trace active at emit time, or None.
    """

    seq: int
    at_s: float
    kind: str
    target: str
    detail: str = ""
    tenant_id: Optional[int] = None
    trace_id: Optional[int] = None

    def format(self) -> str:
        parts = [f"#{self.seq}", f"t={self.at_s:.9f}", self.kind, self.target]
        if self.tenant_id is not None:
            parts.append(f"tenant={self.tenant_id}")
        if self.trace_id is not None:
            parts.append(f"trace={self.trace_id}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class EventJournal:
    """Bounded ring of :class:`JournalEvent`, deterministic by design.

    Timestamps come from the virtual clock (0.0 when no clock is
    attached, e.g. a noop handle), sequence numbers from a process-local
    counter — no wall clock, no ids derived from object addresses.
    """

    def __init__(
        self,
        clock=None,
        tracer=None,
        max_events: int = 4096,
        enabled: bool = True,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._clock = clock
        self._tracer = tracer
        self.enabled = enabled
        self._events: deque[JournalEvent] = deque(maxlen=max_events)
        self._seq = 0

    def attach_tracer(self, tracer) -> None:
        """Late-bind the tracer (journal is built before the tracer)."""
        self._tracer = tracer

    def emit(
        self,
        kind: str,
        target: str,
        detail: str = "",
        tenant_id: Optional[int] = None,
    ) -> Optional[JournalEvent]:
        """Record one event; returns it, or None when disabled."""
        if not self.enabled:
            return None
        self._seq += 1
        trace_id = self._tracer.current_trace_id() if self._tracer else None
        event = JournalEvent(
            seq=self._seq,
            at_s=self._clock.now() if self._clock is not None else 0.0,
            kind=kind,
            target=target,
            detail=detail,
            tenant_id=tenant_id,
            trace_id=trace_id,
        )
        self._events.append(event)
        return event

    # -- reads ---------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> list[JournalEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def events_for_trace(self, trace_id: int) -> list[JournalEvent]:
        return [e for e in self._events if e.trace_id == trace_id]

    def kinds(self) -> dict[str, int]:
        """Retained event counts by kind (sorted for stable dumps)."""
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    @property
    def total_emitted(self) -> int:
        """Events emitted over the journal's lifetime (incl. dropped)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def to_lines(self) -> list[str]:
        return [event.format() for event in self._events]

    def dump(self) -> str:
        """The retained journal as one deterministic text blob."""
        return "\n".join(self.to_lines()) + ("\n" if self._events else "")

    def digest(self) -> str:
        """sha256 of :meth:`dump` — byte-identical across same-seed runs."""
        return hashlib.sha256(self.dump().encode()).hexdigest()

    def clear(self) -> None:
        self._events.clear()


def merge_journals(journals: Iterable[EventJournal]) -> list[JournalEvent]:
    """All retained events across journals, ordered by (time, seq)."""
    merged: list[JournalEvent] = []
    for journal in journals:
        merged.extend(journal.events())
    merged.sort(key=lambda e: (e.at_s, e.seq))
    return merged
