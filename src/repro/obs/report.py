"""MetricsReport: the cluster-wide metric readout (`LogStore.metrics_report`).

Wraps one merged :class:`~repro.obs.registry.RegistrySnapshot` and
exposes the derived views the paper's evaluation plots read off it —
per-tenant write/read row series (Figures 13/14 group by tenant and
take std-devs), per-shard write distribution, cache hit rates, OSS
traffic.  The hotspot loop's traffic sample and this report are fed by
the same registry families, so the monitor and the operator see one
set of numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.utils import stddev
from repro.obs.registry import RegistrySnapshot

# Family names shared by the wired subsystems.
TENANT_WRITE_ROWS = "logstore_tenant_write_rows_total"
TENANT_READ_ROWS = "logstore_tenant_read_rows_total"
SHARD_WRITE_ROWS = "logstore_shard_write_rows_total"
SHARD_ACCESSES = "logstore_shard_accesses_total"
WORKER_ACCESSES = "logstore_worker_accesses_total"
BROKER_QUERIES = "logstore_broker_queries_total"
BROKER_WRITE_ROWS = "logstore_broker_write_rows_total"
QUERY_LATENCY = "logstore_query_latency_seconds"
SEMANTIC_REWRITES = "logstore_semantic_rewrites_total"
SCAN_ROWS_EVALUATED = "logstore_scan_rows_evaluated_total"
ENCODE_ROWS = "logstore_encode_rows_total"
ENCODE_FALLBACKS = "logstore_encode_fallbacks_total"


@dataclass
class MetricsReport:
    """Read-only view over one registry snapshot."""

    snapshot: RegistrySnapshot

    # -- per-entity series (Figure 13/14 inputs) -------------------------

    def tenant_write_rows(self) -> dict[object, float]:
        return self.snapshot.by_label(TENANT_WRITE_ROWS, "tenant")

    def tenant_read_rows(self) -> dict[object, float]:
        return self.snapshot.by_label(TENANT_READ_ROWS, "tenant")

    def shard_write_rows(self) -> dict[object, float]:
        return self.snapshot.by_label(SHARD_WRITE_ROWS, "shard")

    def shard_accesses(self) -> dict[object, float]:
        return self.snapshot.by_label(SHARD_ACCESSES, "shard")

    def worker_accesses(self) -> dict[object, float]:
        return self.snapshot.by_label(WORKER_ACCESSES, "worker")

    def tenant_write_stddev(self) -> float:
        """Std-dev of per-tenant write volume (Figure 14 readout)."""
        values = list(self.tenant_write_rows().values())
        return stddev(values) if values else 0.0

    def shard_access_stddev(self) -> float:
        """Std-dev of per-shard accesses (Figure 13 readout)."""
        values = list(self.shard_accesses().values())
        return stddev(values) if values else 0.0

    def worker_access_stddev(self) -> float:
        values = list(self.worker_accesses().values())
        return stddev(values) if values else 0.0

    # -- totals ----------------------------------------------------------

    def total_write_rows(self) -> int:
        return self.snapshot.counter_total(TENANT_WRITE_ROWS)

    def total_read_rows(self) -> int:
        return self.snapshot.counter_total(TENANT_READ_ROWS)

    def queries_served(self) -> int:
        return self.snapshot.counter_total(BROKER_QUERIES)

    def cache_hit_rate(self) -> float:
        """Block+object cache hit rate across the cluster."""
        hits = self.snapshot.gauge_value("logstore_cache_hits")
        misses = self.snapshot.gauge_value("logstore_cache_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def oss_bytes_read(self) -> float:
        return self.snapshot.gauge_value("logstore_oss_bytes_read")

    def oss_bytes_written(self) -> float:
        return self.snapshot.gauge_value("logstore_oss_bytes_written")

    # -- export ----------------------------------------------------------

    def headline(self) -> dict:
        """The small JSON dict the BENCH trajectory files track."""
        return {
            "write_rows": self.total_write_rows(),
            "read_rows": self.total_read_rows(),
            "queries": self.queries_served(),
            "tenant_write_stddev": self.tenant_write_stddev(),
            "shard_access_stddev": self.shard_access_stddev(),
            "cache_hit_rate": self.cache_hit_rate(),
            "oss_bytes_read": self.oss_bytes_read(),
            "oss_bytes_written": self.oss_bytes_written(),
        }

    def render_prometheus(self) -> str:
        return self.snapshot.render_prometheus()

    def to_json(self) -> dict:
        return self.snapshot.to_json()
