"""Cluster-wide observability: metrics, tracing, events, SLOs, alerts."""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    BurnRateRule,
    ThresholdRule,
    default_alert_rules,
)
from repro.obs.analyze import render_explain_analyze
from repro.obs.context import DEFAULT_SLOW_QUERY_S, Observability
from repro.obs.events import EventJournal, JournalEvent, merge_journals
from repro.obs.meter import TenantUsage, UsageMeter
from repro.obs.recorders import PushdownRecorder, WritePathRecorder
from repro.obs.registry import (
    HistogramSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
    label_key,
)
from repro.obs.report import MetricsReport
from repro.obs.slo import SloStatus, SloTarget, SloTracker
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.systables import (
    SYSTEM_TABLES,
    is_system_table,
    scope_rows,
    system_table_rows,
)
from repro.obs.tracing import Span, Tracer, format_trace, span_chain

__all__ = [
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "DEFAULT_SLOW_QUERY_S",
    "EventJournal",
    "HistogramSnapshot",
    "JournalEvent",
    "MetricsRegistry",
    "MetricsReport",
    "Observability",
    "PushdownRecorder",
    "RegistrySnapshot",
    "SYSTEM_TABLES",
    "SloStatus",
    "SloTarget",
    "SloTracker",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "TenantUsage",
    "ThresholdRule",
    "Tracer",
    "UsageMeter",
    "WritePathRecorder",
    "default_alert_rules",
    "format_trace",
    "is_system_table",
    "label_key",
    "merge_journals",
    "render_explain_analyze",
    "scope_rows",
    "span_chain",
    "system_table_rows",
]
