"""Cluster-wide observability: metrics registry, tracing, EXPLAIN ANALYZE."""

from repro.obs.analyze import render_explain_analyze
from repro.obs.context import DEFAULT_SLOW_QUERY_S, Observability
from repro.obs.recorders import PushdownRecorder, WritePathRecorder
from repro.obs.registry import (
    HistogramSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
    label_key,
)
from repro.obs.report import MetricsReport
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.tracing import Span, Tracer, format_trace, span_chain

__all__ = [
    "DEFAULT_SLOW_QUERY_S",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsReport",
    "Observability",
    "PushdownRecorder",
    "RegistrySnapshot",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "WritePathRecorder",
    "format_trace",
    "label_key",
    "render_explain_analyze",
    "span_chain",
]
