"""Observability: one handle bundling the registry, tracer and slow log.

A `LogStore` builds exactly one of these and threads it through every
subsystem (brokers, workers, shards, the write pipeline, Raft nodes,
the builder, the metered OSS).  Components constructed standalone —
the unit-test pattern — default to a private, tracing-disabled handle,
so their metric recording still works without any shared state.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Tracer

DEFAULT_SLOW_QUERY_S = 2.0  # Figure 17: "99% of queries within 2 seconds"


class Observability:
    """Registry + tracer + slow-query log for one cluster."""

    def __init__(
        self,
        clock=None,
        tracing_enabled: bool = True,
        trace_max_traces: int = 256,
        slow_query_s: float | None = DEFAULT_SLOW_QUERY_S,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            clock, enabled=tracing_enabled, max_traces=trace_max_traces
        )
        self.slow_queries = SlowQueryLog(slow_query_s)

    @classmethod
    def noop(cls) -> "Observability":
        """A private handle with tracing off (standalone components)."""
        return cls(clock=None, tracing_enabled=False, slow_query_s=None)
