"""Observability: one handle bundling the whole obs layer.

A `LogStore` builds exactly one of these and threads it through every
subsystem (brokers, workers, shards, the write pipeline, Raft nodes,
the builder, the metered OSS).  Components constructed standalone —
the unit-test pattern — default to a private, tracing-disabled handle,
so their metric recording still works without any shared state.

The handle carries:

* ``registry``     — labeled metric families (counters/gauges/histograms)
* ``tracer``       — hierarchical virtual-clock spans
* ``slow_queries`` — bounded over-threshold query log
* ``journal``      — the cluster event journal (elections, seals,
  archives, compactions, backpressure, faults, alerts)
* ``meter``        — per-tenant usage accounting
* ``slo``          — per-tenant SLO windows / burn rates
* ``alerts``       — the alert rules engine (None until installed by
  the cluster facade via :meth:`install_alerts`)
"""

from __future__ import annotations

from repro.obs.events import EventJournal
from repro.obs.meter import UsageMeter
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloTarget, SloTracker
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Tracer

DEFAULT_SLOW_QUERY_S = 2.0  # Figure 17: "99% of queries within 2 seconds"


class Observability:
    """Registry + tracer + slow log + journal + meter + SLO tracker."""

    def __init__(
        self,
        clock=None,
        tracing_enabled: bool = True,
        trace_max_traces: int = 256,
        slow_query_s: float | None = DEFAULT_SLOW_QUERY_S,
        event_journal_enabled: bool = True,
        event_journal_max_events: int = 4096,
        slo_enabled: bool = True,
        slo_default_target: SloTarget | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            clock, enabled=tracing_enabled, max_traces=trace_max_traces
        )
        self.slow_queries = SlowQueryLog(slow_query_s)
        self.journal = EventJournal(
            clock,
            tracer=self.tracer,
            max_events=event_journal_max_events,
            enabled=event_journal_enabled,
        )
        self.meter = UsageMeter(self.registry)
        self.slo = SloTracker(
            clock, default_target=slo_default_target, enabled=slo_enabled
        )
        # Installed by the cluster facade once config-selected rules are
        # known; stays None for standalone components.
        self.alerts = None

    def install_alerts(self, engine) -> None:
        self.alerts = engine

    @classmethod
    def noop(cls) -> "Observability":
        """A private handle with tracing off (standalone components).

        The journal stays enabled (it is cheap and clockless emits
        stamp ``t=0``), so unit-tested components still journal; the
        SLO tracker is inert without a clock.
        """
        return cls(clock=None, tracing_enabled=False, slow_query_s=None)
