"""Worker-failure recovery (§3) and the live hotspot loop (§4.1.3)."""

import pytest

from repro.cluster.config import small_test_config
from repro.cluster.logstore import LogStore
from repro.common.errors import ClusterError, WorkerNotFound

from tests.conftest import BASE_TS, MICROS, make_rows


@pytest.fixture
def store():
    return LogStore.create(config=small_test_config())


class TestWorkerFailure:
    def test_shards_rehosted(self, store):
        victim = "worker-0"
        victim_shards = set(store.workers[victim].shards)
        moves = store.fail_worker(victim)
        assert set(moves) == victim_shards
        assert victim not in store.workers
        for shard_id, new_worker in moves.items():
            assert shard_id in store.workers[new_worker].shards

    def test_data_survives_failure(self, store):
        store.put(1, make_rows(200, tenant_id=1))
        # Find the worker holding tenant 1's data and fail it.
        shard_id = next(iter(store.controller.routing.rule_for(1).shards()))
        victim = store.controller.topology.shard_worker[shard_id]
        store.fail_worker(victim)
        result = store.query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1")
        assert result.rows == [{"COUNT(*)": 200}]

    def test_writes_continue_after_failure(self, store):
        store.put(1, make_rows(50, tenant_id=1))
        store.fail_worker("worker-1")
        store.put(1, make_rows(50, tenant_id=1, start_ts=BASE_TS + 100 * MICROS))
        result = store.query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1")
        assert result.rows == [{"COUNT(*)": 100}]

    def test_topology_reflects_failure(self, store):
        store.fail_worker("worker-2")
        topology = store.controller.topology
        assert "worker-2" not in topology.workers
        assert len(topology.shards) == 8  # all shards still placed
        assert set(topology.shard_worker.values()) <= set(store.workers)

    def test_rehosting_is_balanced(self, store):
        store.fail_worker("worker-0")
        shard_counts = [len(w.shards) for w in store.workers.values()]
        assert max(shard_counts) - min(shard_counts) <= 1

    def test_unknown_worker(self, store):
        with pytest.raises(WorkerNotFound):
            store.fail_worker("worker-99")

    def test_cannot_fail_last_worker(self):
        store = LogStore.create(config=small_test_config(n_workers=1))
        with pytest.raises(ClusterError):
            store.fail_worker("worker-0")

    def test_rebalance_works_after_failure(self, store):
        from repro.workload import tenant_traffic

        store.fail_worker("worker-3")
        capacity = store.controller.topology.total_worker_capacity()
        event = store.rebalance(tenant_traffic(20, 0.99, capacity * 0.6))
        assert event.rebalanced or not event.hot_shards


class TestHotspotLoop:
    def test_loop_fires_on_schedule(self, store):
        store.start_hotspot_loop()
        store.put(1, make_rows(100, tenant_id=1))
        interval = store.config.monitor_interval_s
        store.clock.advance(interval * 2.5)
        assert len(store.hotspot_loop.events) == 2

    def test_loop_uses_live_counters(self, store):
        store.start_hotspot_loop()
        # Hammer one tenant hard enough that its shard runs hot:
        # capacity is 10k rps/worker; 300s window → need >> 1.5k rps.
        interval = store.config.monitor_interval_s
        rows = make_rows(2000, tenant_id=1)
        for _ in range(3):
            store.put(1, rows)
        # The tracker turns counters into rates over the window.
        rates = store.traffic_tracker.window_rates(window_s=1.0)
        assert rates[1] == 6000
        # Counters reset per window.
        assert store.traffic_tracker.window_rates(window_s=1.0)[1] == 0

    def test_loop_rebalances_hot_tenant(self):
        # Short monitor window so a modest row count yields a hot rate:
        # worker capacity is 10k rps, shard ~3k rps; we write ~6k rps.
        config = small_test_config(monitor_interval_s=5.0)
        store = LogStore.create(config=config)
        store.start_hotspot_loop()
        interval = config.monitor_interval_s
        rows = make_rows(1500, tenant_id=1)
        steps = 20
        for _ in range(steps):
            store.put(1, rows)
            for row in rows:
                row["ts"] += MICROS  # keep timestamps advancing
            store.clock.advance(interval / steps * 0.999)
        store.clock.advance(interval * 0.01)
        assert store.hotspot_loop.events, "loop should have fired"
        event = store.hotspot_loop.events[0]
        assert event.hot_shards, "the tenant's shard should run hot"
        rule = store.controller.routing.rule_for(1)
        assert rule is not None and rule.route_count > 1

    def test_start_idempotent(self, store):
        store.start_hotspot_loop()
        store.start_hotspot_loop()
        store.clock.advance(store.config.monitor_interval_s * 1.5)
        assert len(store.hotspot_loop.events) == 1

    def test_stop(self, store):
        store.start_hotspot_loop()
        store.hotspot_loop.stop()
        store.clock.advance(store.config.monitor_interval_s * 3)
        assert store.hotspot_loop.events == []
